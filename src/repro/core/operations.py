"""Declarative registry of every HAM operation — the wire vocabulary.

The paper's HAM is "a transaction-based server" with a fixed operation
vocabulary (the Appendix).  This module states that vocabulary exactly
once: each :class:`Operation` records the operation's name (snake_case
and the Appendix's camelCase), its parameters with argument codecs, its
result codec, and whether it runs inside a transaction.  Three layers
derive their behaviour from the same table:

- the local :class:`~repro.core.ham.HAM` routes its public methods
  through a per-instance :class:`MiddlewareChain` (see
  :func:`install_local_dispatch`), so interceptors — per-operation
  counters, latency histograms (:mod:`repro.tools.metrics`), trace
  logs — observe in-process sessions exactly as they observe RPC ones;
- the server builds its entire request dispatcher from the table
  (:func:`build_server_dispatch`): argument decoding, transaction-id
  resolution, invocation, and result encoding are all derived, so
  ``server.py`` contains no per-operation handler bodies;
- the remote client generates its operation stubs from the table
  (:func:`make_client_stub`), including the stubs of the batching
  proxy behind ``RemoteHAM.batch()``.

A :class:`Codec` is a symmetric pair of translations between *local*
Python values (``LinkPt``, ``Protections``, ``EventKind``, delta
scripts, query results) and *wire* values (the ``None``/``bool``/
``int``/``str``/``bytes``/``list``/``dict`` vocabulary of
:mod:`repro.storage.serializer`).  The client applies ``to_wire`` to
arguments and ``from_wire`` to results; the server applies the same
codecs in the mirrored direction, which is what keeps the three layers
from drifting apart.
"""

from __future__ import annotations

import functools
import inspect
import threading
from typing import Callable, Iterator

from repro.core.demons import EventKind
from repro.core.types import CURRENT, LinkPt, Protections, Version
from repro.errors import NeptuneError, ProtocolError
from repro.query.graph_query import QueryResult
from repro.query.traversal import TraversalResult
from repro.storage.deltas import decode_script, encode_script
from repro.txn.manager import TxnStatus

__all__ = [
    "PROTOCOL_VERSION",
    "Codec",
    "Param",
    "Operation",
    "OperationRegistry",
    "REGISTRY",
    "MiddlewareChain",
    "install_local_dispatch",
    "build_server_dispatch",
    "make_client_stub",
    "operation_signature",
    "read_only_methods",
]

#: Version of the wire vocabulary.  Bump whenever an operation, codec,
#: or message shape changes incompatibly; ``ping`` carries it so client
#: and server can refuse a mismatched pairing up front.  Version 1 was
#: the hand-written protocol whose ``ping`` returned the bare string
#: ``"pong"``; version 2 introduced the registry-derived dispatch and
#: ``call_batch``; version 3 added ``explainQuery`` (plan rendering for
#: the cost-based query planner); version 4 added the replication
#: vocabulary (``replSubscribe``/``replStatus``/``replSnapshot``/
#: ``replPromote``) and changed ``commit`` to return the transaction's
#: commit LSN (None for read-only transactions) so sessions can carry
#: read-your-writes watermarks.  Version 5 gave ``replSnapshot`` a
#: ``have`` parameter (content digests the caller already holds) and a
#: manifest-form reply that ships only the missing blobs.  Version 6 added
#: ``linksFrom``/``linksTo`` (O(degree) adjacency traversal over the
#: columnar graph core).  Version 7 added change-feed subscriptions
#: (``subscribe``/``unsubscribe``/``subscription_status``) and with them
#: *unsolicited push frames*: a server may now interleave id-less
#: ``{"push": ...}`` messages between responses on any session that
#: subscribed (clients that never subscribe never see one).
PROTOCOL_VERSION = 7


class _Required:
    """Sentinel: the parameter has no default and must be supplied."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<required>"


REQUIRED = _Required()


# ======================================================================
# Codecs

class Codec:
    """Symmetric local-value ↔ wire-value translation."""

    __slots__ = ("name", "to_wire", "from_wire")

    def __init__(self, name: str,
                 to_wire: Callable[[object], object] | None = None,
                 from_wire: Callable[[object], object] | None = None):
        self.name = name
        self.to_wire = to_wire if to_wire is not None else _identity
        self.from_wire = from_wire if from_wire is not None else _identity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Codec {self.name}>"


def _identity(value: object) -> object:
    return value


def _open_node_to_wire(result) -> list:
    contents, link_points, values, current = result
    return [contents,
            [[index, end, pt.to_record()] for index, end, pt in link_points],
            list(values), current]


def _open_node_from_wire(wire) -> tuple:
    contents, link_points, values, current = wire
    return (contents,
            [(index, end, LinkPt.from_record(record))
             for index, end, record in link_points],
            list(values), current)


def _versions_to_wire(result) -> list:
    major, minor = result
    return [[v.to_record() for v in major], [v.to_record() for v in minor]]


def _versions_from_wire(wire) -> tuple:
    major, minor = wire
    return ([Version.from_record(record) for record in major],
            [Version.from_record(record) for record in minor])


def _result_set_to_wire(result) -> list:
    return [[[index, list(values)] for index, values in result.nodes],
            [[index, list(values)] for index, values in result.links]]


def _result_set_from_wire(wire, factory):
    nodes, links = wire
    return factory(
        tuple((index, tuple(values)) for index, values in nodes),
        tuple((index, tuple(values)) for index, values in links))


def _attachments_to_wire(value):
    return None if value is None else [list(entry) for entry in value]


def _attachments_from_wire(value):
    return None if value is None else [tuple(entry) for entry in value]


#: Wire-native values (ints, strings, bytes, bools, None, plain lists).
IDENTITY = Codec("identity")
#: Node contents: any buffer on the way in, ``bytes`` on the wire.
CONTENTS = Codec("contents", to_wire=bytes)
#: A sequence sent as a plain list (attribute-index vectors).
INDEX_SEQ = Codec("index-seq", to_wire=list, from_wire=list)
#: ``(index, time)``-style pair results.
INT_PAIR = Codec("int-pair", to_wire=list, from_wire=tuple)
#: A single link endpoint.
LINK_PT = Codec("link-pt", to_wire=lambda pt: pt.to_record(),
                from_wire=LinkPt.from_record)
#: Protection flags travel as their integer bitmask.
PROTECTION_BITS = Codec("protections",
                        to_wire=lambda p: Protections(p).value,
                        from_wire=Protections)
#: Demon event kinds travel as their string value.
EVENT_KIND = Codec("event-kind", to_wire=lambda e: EventKind(e).value,
                   from_wire=EventKind)
#: An optional event-kind set (subscription filters): None = all.
EVENT_KIND_SEQ = Codec(
    "event-kind-seq",
    to_wire=lambda kinds: (None if kinds is None else
                           [EventKind(k).value for k in kinds]),
    from_wire=lambda kinds: (None if kinds is None else
                             [EventKind(k) for k in kinds]))
#: ``modifyNode`` attachment moves: optional list of (link, end, pos).
ATTACHMENT_SEQ = Codec("attachments", to_wire=_attachments_to_wire,
                       from_wire=_attachments_from_wire)
#: Lists of tuples (attribute tables) as lists of lists on the wire.
TUPLE_ROWS = Codec("tuple-rows",
                   to_wire=lambda rows: [list(row) for row in rows],
                   from_wire=lambda rows: [tuple(row) for row in rows])
#: ``getNodeVersions``: (major, minor) Version histories.
VERSION_HISTORIES = Codec("versions", to_wire=_versions_to_wire,
                          from_wire=_versions_from_wire)
#: ``getNodeDifferences``: a delta script.
DELTA_SCRIPT = Codec("delta-script", to_wire=encode_script,
                     from_wire=decode_script)
#: ``openNode``: (contents, link points, values, current time).
OPEN_NODE_RESULT = Codec("open-node", to_wire=_open_node_to_wire,
                         from_wire=_open_node_from_wire)
#: Demon tables: (EventKind, demon name) pairs.
DEMON_BINDINGS = Codec(
    "demon-bindings",
    to_wire=lambda rows: [[EventKind(event).value, name]
                          for event, name in rows],
    from_wire=lambda rows: [(EventKind(event), name)
                            for event, name in rows])
#: ``linearizeGraph`` result.
TRAVERSAL = Codec(
    "traversal", to_wire=_result_set_to_wire,
    from_wire=lambda wire: _result_set_from_wire(wire, TraversalResult))
#: ``getGraphQuery`` result.
QUERY = Codec(
    "query", to_wire=_result_set_to_wire,
    from_wire=lambda wire: _result_set_from_wire(wire, QueryResult))


# ======================================================================
# Operation specifications

class Param:
    """One declared parameter of an operation."""

    __slots__ = ("name", "codec", "default", "kw_only", "is_txn")

    def __init__(self, name: str, codec: Codec = IDENTITY,
                 default: object = REQUIRED, kw_only: bool = False):
        self.name = name
        self.codec = codec
        self.default = default
        self.kw_only = kw_only
        #: The transaction operand: resolved against the session's open
        #: transaction table server-side, sent as its id client-side.
        self.is_txn = name == "txn"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Param {self.name}:{self.codec.name}>"


def _txn_param(kw_only: bool = False) -> Param:
    return Param("txn", IDENTITY, default=None, kw_only=kw_only)


class Operation:
    """One HAM operation, declared once for all three layers.

    ``kind`` selects how the server invokes it:

    - ``"ham"`` — a method on the session's bound HAM;
    - ``"ham_property"`` — a read-only property on the bound HAM;
    - ``"session"`` — session-level state (transaction table, liveness),
      executed by ``session_invoke(session, **kwargs)``.
    """

    __slots__ = ("name", "appendix_name", "params", "result", "mutates",
                 "events", "kind", "doc", "session_invoke", "idempotent",
                 "read_only")

    def __init__(self, name: str, params: tuple | list = (),
                 result: Codec = IDENTITY, *, appendix_name: str | None = None,
                 mutates: bool = False, events: tuple = (),
                 kind: str = "ham", doc: str = "",
                 session_invoke: Callable | None = None,
                 idempotent: bool | None = None,
                 read_only: bool | None = None):
        if kind not in ("ham", "ham_property", "session"):
            raise ValueError(f"unknown operation kind {kind!r}")
        if kind == "session" and session_invoke is None:
            raise ValueError(f"{name}: session operations need an invoker")
        self.name = name
        self.appendix_name = appendix_name
        self.params = tuple(params)
        self.result = result
        self.mutates = mutates
        self.events = tuple(events)
        self.kind = kind
        self.doc = doc or (f"``{appendix_name}`` on the server."
                           if appendix_name else "")
        self.session_invoke = session_invoke
        #: Safe to re-issue when the outcome of a send is unknown.  Reads
        #: are; mutations and session-state calls are not, unless
        #: declared so explicitly (``ping``; ``begin``, whose orphaned
        #: transaction dies with its session).
        if idempotent is None:
            idempotent = not mutates and kind != "session"
        self.idempotent = idempotent
        #: Safe to execute concurrently with other read-only operations
        #: of the same session (the pipelined server runs such requests
        #: in parallel on MVCC snapshots).  Session-state operations
        #: (begin/commit/abort) and mutations are *ordered*: the server
        #: lets them run only alone, in arrival order.
        if read_only is None:
            read_only = not mutates and kind in ("ham", "ham_property")
        self.read_only = read_only

    @property
    def transactional(self) -> bool:
        """True when the operation accepts the ``txn`` operand."""
        return any(p.is_txn for p in self.params)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Operation {self.name}>"


class OperationRegistry:
    """Name-indexed, iteration-ordered set of :class:`Operation`."""

    def __init__(self):
        self._operations: dict[str, Operation] = {}

    def register(self, operation: Operation) -> Operation:
        if operation.name in self._operations:
            raise ValueError(f"operation {operation.name!r} already "
                             "registered")
        self._operations[operation.name] = operation
        return operation

    def get(self, name: str) -> Operation | None:
        return self._operations.get(name)

    def names(self) -> list[str]:
        return list(self._operations)

    def ham_operations(self) -> list[Operation]:
        """Operations dispatched to HAM methods (local wrap targets)."""
        return [op for op in self._operations.values() if op.kind == "ham"]

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._operations.values())

    def __len__(self) -> int:
        return len(self._operations)

    def __contains__(self, name: str) -> bool:
        return name in self._operations


# ======================================================================
# Session-level operations (transaction table, liveness)

def _session_ping(session) -> dict:
    """Liveness probe carrying the protocol version handshake."""
    return {"pong": True, "protocol": PROTOCOL_VERSION}


def _session_begin(session, read_only: bool = False) -> int:
    transaction = session.ham.begin(read_only=read_only)
    session.register_txn(transaction)
    return transaction.txn_id


def _session_commit(session, txn: int) -> int | None:
    transaction = session.resolve_txn(txn)
    try:
        # The commit LSN travels back to the client: replication-aware
        # sessions carry it as their read-your-writes watermark.
        return transaction.commit()
    finally:
        # Drop the table entry even when commit() raises — otherwise the
        # dead transaction lingers in the session table (and its locks
        # with it); release_txn aborts anything still ACTIVE.
        session.release_txn(txn)


def _session_abort(session, txn: int) -> None:
    transaction = session.resolve_txn(txn)
    try:
        transaction.abort()
    finally:
        session.release_txn(txn)


def _session_subscribe(session, events=None, predicate=None,
                       from_lsn=None) -> dict:
    return session.subscribe_feed(events=events, predicate=predicate,
                                  from_lsn=from_lsn)


def _session_unsubscribe(session, sub: int) -> bool:
    return session.unsubscribe_feed(sub)


def _session_subscription_status(session) -> dict:
    return session.subscription_feed_status()


# ======================================================================
# The vocabulary: every Appendix operation plus session/liveness calls.

REGISTRY = OperationRegistry()

_register = REGISTRY.register

# --- session / transactions ------------------------------------------
_register(Operation("ping", (), IDENTITY, kind="session",
                    session_invoke=_session_ping, idempotent=True,
                    read_only=True,
                    doc="Round-trip liveness and protocol handshake."))
_register(Operation("begin", (Param("read_only", default=False),),
                    IDENTITY, kind="session",
                    session_invoke=_session_begin, idempotent=True,
                    doc="Open a transaction on the server."))
_register(Operation("commit", (Param("txn"),), IDENTITY, kind="session",
                    session_invoke=_session_commit,
                    doc="Commit a transaction open on this session."))
_register(Operation("abort", (Param("txn"),), IDENTITY, kind="session",
                    session_invoke=_session_abort,
                    doc="Abort a transaction open on this session."))

# --- graph state ------------------------------------------------------
_register(Operation("project_id", (), IDENTITY, kind="ham_property",
                    doc="The served graph's ProjectId."))
_register(Operation("now", (), IDENTITY, kind="ham_property",
                    doc="The served graph's current logical time."))
_register(Operation("checkpoint", (), IDENTITY, mutates=True,
                    doc="Ask the server to snapshot and truncate its "
                        "log."))

# --- node / link lifecycle -------------------------------------------
_register(Operation(
    "add_node",
    (_txn_param(), Param("keep_history", default=True)),
    INT_PAIR, appendix_name="addNode", mutates=True,
    events=(EventKind.ADD_NODE,)))
_register(Operation(
    "delete_node",
    (_txn_param(), Param("node", kw_only=True)),
    IDENTITY, appendix_name="deleteNode", mutates=True,
    events=(EventKind.DELETE_NODE,)))
_register(Operation(
    "add_link",
    (_txn_param(), Param("from_pt", LINK_PT, kw_only=True),
     Param("to_pt", LINK_PT, kw_only=True)),
    INT_PAIR, appendix_name="addLink", mutates=True,
    events=(EventKind.ADD_LINK,)))
_register(Operation(
    "copy_link",
    (_txn_param(), Param("link", kw_only=True),
     Param("time", default=CURRENT, kw_only=True),
     Param("keep_source", default=True, kw_only=True),
     Param("other_pt", LINK_PT, kw_only=True)),
    INT_PAIR, appendix_name="copyLink", mutates=True,
    events=(EventKind.COPY_LINK,)))
_register(Operation(
    "delete_link",
    (_txn_param(), Param("link", kw_only=True)),
    IDENTITY, appendix_name="deleteLink", mutates=True,
    events=(EventKind.DELETE_LINK,)))

# --- node operations --------------------------------------------------
_register(Operation(
    "open_node",
    (Param("node"), Param("time", default=CURRENT),
     Param("attributes", INDEX_SEQ, default=()), _txn_param()),
    OPEN_NODE_RESULT, appendix_name="openNode",
    events=(EventKind.OPEN_NODE,)))
_register(Operation(
    "modify_node",
    (_txn_param(), Param("node", kw_only=True),
     Param("expected_time", kw_only=True),
     Param("contents", CONTENTS, kw_only=True),
     Param("attachments", ATTACHMENT_SEQ, default=None, kw_only=True),
     Param("explanation", default="", kw_only=True)),
    IDENTITY, appendix_name="modifyNode", mutates=True,
    events=(EventKind.MODIFY_NODE,)))
_register(Operation(
    "get_node_timestamp", (Param("node"), _txn_param()), IDENTITY,
    appendix_name="getNodeTimeStamp"))
_register(Operation(
    "change_node_protection",
    (_txn_param(), Param("node", kw_only=True),
     Param("protections", PROTECTION_BITS, kw_only=True)),
    IDENTITY, appendix_name="changeNodeProtection", mutates=True))
_register(Operation(
    "get_node_versions", (Param("node"),), VERSION_HISTORIES,
    appendix_name="getNodeVersions"))
_register(Operation(
    "get_node_differences",
    (Param("node"), Param("time1"), Param("time2")),
    DELTA_SCRIPT, appendix_name="getNodeDifferences"))

# --- link operations --------------------------------------------------
_register(Operation(
    "get_to_node", (Param("link"), Param("time", default=CURRENT)),
    INT_PAIR, appendix_name="getToNode"))
_register(Operation(
    "get_from_node", (Param("link"), Param("time", default=CURRENT)),
    INT_PAIR, appendix_name="getFromNode"))
# Not Appendix operations — columnar-core extensions, so they carry no
# appendix_name (the conformance suite pins that set to the paper).
_register(Operation(
    "links_from",
    (Param("node"), Param("time", default=CURRENT), _txn_param()),
    IDENTITY,
    doc="Indexes of links leaving ``node`` at ``time``, ascending; "
        "O(degree) via the link table's adjacency runs."))
_register(Operation(
    "links_to",
    (Param("node"), Param("time", default=CURRENT), _txn_param()),
    IDENTITY,
    doc="Indexes of links entering ``node`` at ``time``, ascending; "
        "O(degree) via the link table's adjacency runs."))

# --- attribute operations --------------------------------------------
_register(Operation(
    "get_attributes", (Param("time", default=CURRENT),), TUPLE_ROWS,
    appendix_name="getAttributes"))
_register(Operation(
    "get_attribute_index", (Param("name"), _txn_param()), IDENTITY,
    appendix_name="getAttributeIndex", mutates=True))
_register(Operation(
    "get_attribute_values",
    (Param("attribute"), Param("time", default=CURRENT)), IDENTITY,
    appendix_name="getAttributeValues"))
_register(Operation(
    "set_node_attribute_value",
    (_txn_param(), Param("node", kw_only=True),
     Param("attribute", kw_only=True), Param("value", kw_only=True)),
    IDENTITY, appendix_name="setNodeAttributeValue", mutates=True,
    events=(EventKind.SET_ATTRIBUTE,)))
_register(Operation(
    "delete_node_attribute",
    (_txn_param(), Param("node", kw_only=True),
     Param("attribute", kw_only=True)),
    IDENTITY, appendix_name="deleteNodeAttribute", mutates=True,
    events=(EventKind.DELETE_ATTRIBUTE,)))
_register(Operation(
    "get_node_attribute_value",
    (Param("node"), Param("attribute"), Param("time", default=CURRENT),
     _txn_param()),
    IDENTITY, appendix_name="getNodeAttributeValue"))
_register(Operation(
    "get_node_attributes",
    (Param("node"), Param("time", default=CURRENT)), TUPLE_ROWS,
    appendix_name="getNodeAttributes"))
_register(Operation(
    "set_link_attribute_value",
    (_txn_param(), Param("link", kw_only=True),
     Param("attribute", kw_only=True), Param("value", kw_only=True)),
    IDENTITY, appendix_name="setLinkAttributeValue", mutates=True))
_register(Operation(
    "delete_link_attribute",
    (_txn_param(), Param("link", kw_only=True),
     Param("attribute", kw_only=True)),
    IDENTITY, appendix_name="deleteLinkAttribute", mutates=True))
_register(Operation(
    "get_link_attribute_value",
    (Param("link"), Param("attribute"), Param("time", default=CURRENT)),
    IDENTITY, appendix_name="getLinkAttributeValue"))
_register(Operation(
    "get_link_attributes",
    (Param("link"), Param("time", default=CURRENT)), TUPLE_ROWS,
    appendix_name="getLinkAttributes"))

# --- demon operations -------------------------------------------------
_register(Operation(
    "set_graph_demon_value",
    (_txn_param(), Param("event", EVENT_KIND, kw_only=True),
     Param("demon", kw_only=True)),
    IDENTITY, appendix_name="setGraphDemonValue", mutates=True))
_register(Operation(
    "get_graph_demons", (Param("time", default=CURRENT),),
    DEMON_BINDINGS, appendix_name="getGraphDemons"))
_register(Operation(
    "set_node_demon",
    (_txn_param(), Param("node", kw_only=True),
     Param("event", EVENT_KIND, kw_only=True), Param("demon", kw_only=True)),
    IDENTITY, appendix_name="setNodeDemon", mutates=True))
_register(Operation(
    "get_node_demons",
    (Param("node"), Param("time", default=CURRENT)),
    DEMON_BINDINGS, appendix_name="getNodeDemons"))

# --- queries ----------------------------------------------------------
_register(Operation(
    "linearize_graph",
    (Param("start"), Param("time", default=CURRENT),
     Param("node_predicate", default=None),
     Param("link_predicate", default=None),
     Param("node_attributes", INDEX_SEQ, default=()),
     Param("link_attributes", INDEX_SEQ, default=()), _txn_param()),
    TRAVERSAL, appendix_name="linearizeGraph"))
_register(Operation(
    "get_graph_query",
    (Param("time", default=CURRENT),
     Param("node_predicate", default=None),
     Param("link_predicate", default=None),
     Param("node_attributes", INDEX_SEQ, default=()),
     Param("link_attributes", INDEX_SEQ, default=()), _txn_param()),
    QUERY, appendix_name="getGraphQuery"))
# Not an Appendix operation — a planner-era extension, so it carries no
# appendix_name (the conformance suite pins that set to the paper).
_register(Operation(
    "explain_query",
    (Param("time", default=CURRENT),
     Param("node_predicate", default=None),
     Param("link_predicate", default=None), _txn_param()),
    IDENTITY,
    doc="Render the access plan ``getGraphQuery`` would use."))

# --- replication ------------------------------------------------------
# Extension operations (no appendix_name): the log-shipping vocabulary
# of :mod:`repro.replication`.  All four ride the ordinary protocol, so
# a replica is just another client of the primary.
_register(Operation(
    "repl_status", (), IDENTITY,
    doc="This graph's replication role, LSN watermarks, and epoch."))
_register(Operation(
    "repl_subscribe",
    (Param("from_lsn"), Param("epoch"),
     Param("max_bytes", default=1 << 20),
     Param("wait", default=0.0),
     Param("ack", default=None),
     Param("subscriber", default=None)),
    IDENTITY,
    doc="Fetch durable log bytes from ``from_lsn`` (long-poll up to "
        "``wait`` seconds when caught up); ``ack`` reports the "
        "subscriber's replayed LSN back to the primary."))
_register(Operation(
    "repl_snapshot", (Param("have", default=None),), IDENTITY,
    doc="Bootstrap payload: an encoded store snapshot plus the LSN and "
        "epoch it covers.  Pass ``have`` (a list of content digests the "
        "caller already holds) to receive the manifest form: a stripped "
        "snapshot plus only the blobs missing from ``have``."))
_register(Operation(
    "repl_promote", (), IDENTITY, mutates=True, idempotent=True,
    doc="Promote this replica to primary (idempotent; a no-op on a "
        "graph that already accepts writes)."))

# --- change feeds -----------------------------------------------------
# Extension operations (no appendix_name): server-side subscriptions
# over the demon mechanism (see :mod:`repro.subscriptions`).  These are
# session operations — a subscription lives and dies with the session
# that registered it, and its push frames ride that session's socket.
_register(Operation(
    "subscribe",
    (Param("events", EVENT_KIND_SEQ, default=None),
     Param("predicate", default=None),
     Param("from_lsn", default=None)),
    IDENTITY, kind="session", session_invoke=_session_subscribe,
    doc="Register a change-feed watch on this session: matching "
        "committed events arrive as unsolicited push frames.  "
        "``from_lsn`` asks for replay of retained commits above it "
        "(resubscribe-after-reconnect); the reply says whether the "
        "stream is gap-free from there (``resync`` False) or not.  "
        "Not idempotent — a blind retry would double-subscribe."))
_register(Operation(
    "unsubscribe", (Param("sub"),), IDENTITY, kind="session",
    session_invoke=_session_unsubscribe, idempotent=True,
    doc="Cancel a change-feed watch; True when it was still attached."))
_register(Operation(
    "subscription_status", (), IDENTITY, kind="session",
    session_invoke=_session_subscription_status, idempotent=True,
    read_only=True,
    doc="Hub and per-session subscription counters and queue depths."))


# ======================================================================
# Middleware

class MiddlewareChain:
    """An ordered stack of interceptors around operation dispatch.

    A middleware is any callable ``middleware(operation, call_next)``
    where ``operation`` is the operation name and ``call_next`` is a
    zero-argument callable running the rest of the chain (ultimately the
    operation itself) and returning its result.  Middlewares time,
    count, log, or veto operations; they run in registration order.

    An empty chain is falsy, which is the fast path: dispatch wrappers
    skip the chain machinery entirely when no middleware is installed,
    keeping instrumentation off the hot path until it is asked for.
    """

    __slots__ = ("_stack", "_lock")

    def __init__(self):
        self._stack: list[Callable] = []
        self._lock = threading.Lock()

    def add(self, middleware: Callable) -> Callable:
        """Append ``middleware`` to the chain; returns it for chaining."""
        with self._lock:
            self._stack = self._stack + [middleware]
        return middleware

    def remove(self, middleware: Callable) -> None:
        """Remove a previously added middleware."""
        with self._lock:
            stack = list(self._stack)
            stack.remove(middleware)
            self._stack = stack

    def clear(self) -> None:
        with self._lock:
            self._stack = []

    def __bool__(self) -> bool:
        return bool(self._stack)

    def __len__(self) -> int:
        return len(self._stack)

    def __iter__(self) -> Iterator[Callable]:
        return iter(self._stack)

    def run(self, operation: str, thunk: Callable[[], object]) -> object:
        """Run ``thunk`` through the chain under ``operation``'s name."""
        call = thunk
        for middleware in reversed(self._stack):
            call = functools.partial(middleware, operation, call)
        return call()


def _local_wrapper(operation_name: str, impl: Callable) -> Callable:
    @functools.wraps(impl)
    def wrapper(self, *args, **kwargs):
        chain = self.middleware
        if not chain:
            return impl(self, *args, **kwargs)
        return chain.run(operation_name,
                         lambda: impl(self, *args, **kwargs))

    wrapper.__ham_operation__ = operation_name
    return wrapper


def install_local_dispatch(cls, registry: OperationRegistry | None = None,
                           ) -> None:
    """Route ``cls``'s operation methods through its middleware chain.

    For every ``"ham"``-kind operation, the method named after the
    operation (and its Appendix camelCase alias, when one exists) is
    rebound to a wrapper that consults ``self.middleware`` — a
    :class:`MiddlewareChain` the class must provide.  Idempotent:
    already-wrapped methods are left alone.
    """
    registry = REGISTRY if registry is None else registry
    for operation in registry.ham_operations():
        impl = inspect.getattr_static(cls, operation.name, None)
        if impl is None:
            raise TypeError(
                f"{cls.__name__} does not implement {operation.name}")
        if getattr(impl, "__ham_operation__", None) == operation.name:
            continue  # already dispatching
        wrapper = _local_wrapper(operation.name, impl)
        setattr(cls, operation.name, wrapper)
        if operation.appendix_name:
            setattr(cls, operation.appendix_name, wrapper)


# ======================================================================
# Server-side: table-driven dispatch derived from the registry

def _param_decoder(operation: Operation) -> Callable:
    """Build the wire-params → local-kwargs decoder for one operation."""
    params = operation.params
    allowed = frozenset(p.name for p in params)
    resolve_txn_ids = operation.kind != "session"

    def decode(session, wire_params: dict) -> dict:
        unknown = set(wire_params) - allowed
        if unknown:
            raise ProtocolError(
                f"{operation.name}: unknown parameter(s) "
                f"{sorted(unknown)}")
        kwargs = {}
        for param in params:
            if param.is_txn and resolve_txn_ids:
                kwargs["txn"] = session.resolve_txn(wire_params.get("txn"))
                continue
            if param.name in wire_params:
                kwargs[param.name] = param.codec.from_wire(
                    wire_params[param.name])
            elif param.default is REQUIRED:
                raise ProtocolError(
                    f"{operation.name}: missing required parameter "
                    f"{param.name!r}")
        return kwargs

    return decode


def _server_handler(operation: Operation) -> Callable:
    """Build ``handler(session, wire_params) -> wire_result``."""
    encode_result = operation.result.to_wire
    if operation.kind == "ham_property":
        name = operation.name

        def property_handler(session, wire_params: dict):
            if wire_params:
                raise ProtocolError(f"{name} takes no parameters")
            return encode_result(getattr(session.ham, name))

        return property_handler

    decode = _param_decoder(operation)
    if operation.kind == "session":
        invoke = operation.session_invoke

        def session_handler(session, wire_params: dict):
            return encode_result(invoke(session, **decode(session,
                                                          wire_params)))

        return session_handler

    method_name = operation.name

    def ham_handler(session, wire_params: dict):
        kwargs = decode(session, wire_params)
        return encode_result(getattr(session.ham, method_name)(**kwargs))

    return ham_handler


def build_server_dispatch(registry: OperationRegistry | None = None,
                          ) -> dict[str, Callable]:
    """Derive the server's complete ``{method: handler}`` table."""
    registry = REGISTRY if registry is None else registry
    return {operation.name: _server_handler(operation)
            for operation in registry}


def read_only_methods(registry: OperationRegistry | None = None,
                      ) -> frozenset[str]:
    """Names of the operations a session may run concurrently.

    Everything else — mutations, session-state operations, ``call_batch``,
    and the host methods (which are not in the registry at all) — is
    ordered: the server runs it alone, in arrival order, per session.
    """
    registry = REGISTRY if registry is None else registry
    return frozenset(operation.name for operation in registry
                     if operation.read_only)


# ======================================================================
# Client-side: stubs derived from the registry

def operation_signature(operation: Operation,
                        include_self: bool = False) -> inspect.Signature:
    """The Python signature an operation's stub exposes."""
    parameters = []
    if include_self:
        parameters.append(inspect.Parameter(
            "self", inspect.Parameter.POSITIONAL_OR_KEYWORD))
    for param in operation.params:
        kind = (inspect.Parameter.KEYWORD_ONLY if param.kw_only
                else inspect.Parameter.POSITIONAL_OR_KEYWORD)
        default = (inspect.Parameter.empty
                   if param.default is REQUIRED else param.default)
        parameters.append(inspect.Parameter(param.name, kind,
                                            default=default))
    return inspect.Signature(parameters)


def make_client_stub(operation: Operation, invoke: Callable) -> Callable:
    """Build a stub method for ``operation``.

    ``invoke(self, operation, wire_params)`` performs (or queues) the
    call and returns the value the stub should return; the stub itself
    only binds arguments against the declared signature and applies the
    argument codecs — there is no per-operation marshalling code.
    """
    signature = operation_signature(operation)
    params = operation.params

    def stub(self, *args, **kwargs):
        bound = signature.bind(*args, **kwargs)
        bound.apply_defaults()
        arguments = bound.arguments
        wire_params = {}
        for param in params:
            value = arguments[param.name]
            if param.is_txn:
                wire_params["txn"] = (None if value is None
                                      else value.txn_id)
            else:
                wire_params[param.name] = param.codec.to_wire(value)
        return invoke(self, operation, wire_params)

    stub.__name__ = operation.name
    stub.__doc__ = operation.doc
    stub.__signature__ = operation_signature(operation, include_self=True)
    stub.__ham_operation__ = operation.name
    return stub


def release_active(transaction) -> None:
    """Abort a transaction that is still ACTIVE (best effort).

    Shared by session cleanup paths: a transaction being dropped from a
    session table must not keep its locks.
    """
    if transaction is not None and transaction.status is TxnStatus.ACTIVE:
        try:
            transaction.abort()
        except NeptuneError:
            pass
