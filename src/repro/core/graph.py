"""The hypergraph object store and its on-disk representation.

A :class:`GraphStore` is the in-memory primary copy of one hyperdocument
graph: node records, link records, the attribute registry, demon tables,
and the logical clock.  It knows how to snapshot itself to an encodable
record and rebuild from one.

On disk a graph is a directory (the Appendix's ``Directory`` operand)
holding:

- ``neptune.meta`` — project id, creation time, pointer to the latest
  snapshot record (rewritten atomically);
- ``snapshots.heap`` — a :class:`repro.storage.heap.RecordHeap` of full
  graph snapshots (old snapshots remain addressable — cheap insurance and
  a natural fit for a versioning system);
- ``wal.log`` — the write-ahead log of updates since the last snapshot.
"""

from __future__ import annotations

import os

from repro.core.attributes import AttributeRegistry
from repro.core.clock import LogicalClock
from repro.core.demons import DemonTable
from repro.core.link import LinkRecord
from repro.core.node import NodeRecord
from repro.core.table import LinkTable, NodeTable
from repro.core.types import LinkIndex, NodeIndex, ProjectId, Time
from repro.errors import (
    GraphExistsError,
    GraphNotFoundError,
    LinkNotFoundError,
    NodeNotFoundError,
    StorageError,
)
from repro.storage.cas import BlobCatalog
from repro.storage.heap import RecordHeap
from repro.storage.log import MARK_SUFFIX
from repro.storage.serializer import decode_value, encode_value
from repro.tools.metrics import GRAPH

__all__ = ["GraphStore", "GraphDirectory"]

_META_NAME = "neptune.meta"
_SNAPSHOTS_NAME = "snapshots.heap"
_WAL_NAME = "wal.log"


class GraphStore:
    """In-memory hypergraph state for one graph."""

    def __init__(self, project_id: ProjectId, created_at: Time = 1):
        self.project_id = project_id
        self.created_at = created_at
        self.clock = LogicalClock(start=created_at)
        # Slotted struct-of-arrays tables (see repro.core.table): rows
        # append in strictly increasing index order, point lookups stay
        # O(1) through the position map, and the link table maintains
        # CSR-style per-node adjacency runs so traversal is O(degree).
        # Both keep the read-side dict protocol the rest of the system
        # was written against.
        self.nodes: NodeTable = NodeTable()
        self.links: LinkTable = LinkTable()
        self.registry = AttributeRegistry()
        self.graph_demons = DemonTable()
        self.node_demons: dict[NodeIndex, DemonTable] = {}
        self.next_node_index: NodeIndex = 1
        self.next_link_index: LinkIndex = 1
        #: Content-addressed intern pool for every payload this graph's
        #: version chains retain whole (see :mod:`repro.storage.cas`).
        self.catalog = BlobCatalog()

    # ------------------------------------------------------------------
    # lookups

    def node(self, index: NodeIndex) -> NodeRecord:
        """The node record for ``index``; raises if it never existed."""
        try:
            return self.nodes[index]
        except KeyError:
            raise NodeNotFoundError(f"node {index} does not exist") from None

    def link(self, index: LinkIndex) -> LinkRecord:
        """The link record for ``index``; raises if it never existed."""
        try:
            return self.links[index]
        except KeyError:
            raise LinkNotFoundError(f"link {index} does not exist") from None

    def live_nodes(self, time: Time) -> list[NodeRecord]:
        """All nodes alive at ``time`` (0 = now), by index order.

        The node table stores rows in index order (strictly increasing
        inserts, enforced), so this is a single filtered column scan —
        no copy-and-sort.  Lock-free readers are safe: the table
        publishes each row with GIL-atomic appends and bumps its row
        count last, so a concurrent commit is seen as a consistent
        prefix.
        """
        GRAPH.increment("column_scans")
        return self.nodes.live_records(time)

    def live_links(self, time: Time) -> list[LinkRecord]:
        """All links alive at ``time`` (0 = now), by index order."""
        GRAPH.increment("column_scans")
        return self.links.live_records(time)

    def links_from(self, node: NodeIndex, time: Time) -> list[LinkRecord]:
        """Links alive at ``time`` leaving ``node``, by index order.

        O(degree): reads the link table's per-node adjacency run instead
        of scanning every live link.
        """
        GRAPH.increment("adjacency_hits")
        return self.links.live_from(node, time)

    def links_to(self, node: NodeIndex, time: Time) -> list[LinkRecord]:
        """Links alive at ``time`` entering ``node``, by index order."""
        GRAPH.increment("adjacency_hits")
        return self.links.live_to(node, time)

    def demon_table_for_node(self, index: NodeIndex) -> DemonTable | None:
        """The node's demon table, or ``None`` if none was registered.

        Read-side probes must not allocate: persisting an empty
        ``DemonTable`` for every node a probe touches bloats snapshots
        and node-demon iteration.  Registration goes through
        :meth:`demon_table_for_write`, which creates on first use.
        """
        return self.node_demons.get(index)

    # ------------------------------------------------------------------
    # write access
    #
    # The operation-apply functions (repro.core.ham._APPLY) address the
    # records they mutate through these accessors.  On a plain store they
    # are the plain lookups — recovery replays against exactly the state
    # it reads.  On a transaction's write-set overlay
    # (repro.txn.writeset.WriteSet) they copy the record into the
    # transaction's private view first, so concurrent snapshot readers
    # never see a record mutated underneath them.

    def node_for_write(self, index: NodeIndex) -> NodeRecord:
        """The node record ``index``, writable in place."""
        return self.node(index)

    def link_for_write(self, index: LinkIndex) -> LinkRecord:
        """The link record ``index``, writable in place."""
        return self.link(index)

    def registry_for_write(self) -> AttributeRegistry:
        """The attribute registry, writable in place."""
        return self.registry

    def graph_demons_for_write(self) -> DemonTable:
        """The graph-level demon table, writable in place."""
        return self.graph_demons

    def demon_table_for_write(self, index: NodeIndex) -> DemonTable:
        """The node's demon table, created on first registration."""
        table = self.node_demons.get(index)
        if table is None:
            table = DemonTable()
            self.node_demons[index] = table
        return table

    # ------------------------------------------------------------------
    # snapshots

    def to_snapshot(self) -> dict:
        """Full encodable snapshot of the graph state."""
        return {
            "project": self.project_id,
            "created": self.created_at,
            "now": self.clock.now,
            "next_node": self.next_node_index,
            "next_link": self.next_link_index,
            # Table iteration is already in index order (the sorted
            # invariant), so the snapshot stays byte-identical to the
            # old sorted-dict encoding without a sort.
            "nodes": [node.to_record() for node in self.nodes.values()],
            "links": [link.to_record() for link in self.links.values()],
            "registry": self.registry.to_record(),
            "graph_demons": self.graph_demons.to_record(),
            "node_demons": {
                str(index): table.to_record()
                for index, table in self.node_demons.items()
            },
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "GraphStore":
        """Rebuild a store from :meth:`to_snapshot` output."""
        store = cls(snapshot["project"], snapshot["created"])
        store.clock.advance_to(snapshot["now"])
        store.next_node_index = snapshot["next_node"]
        store.next_link_index = snapshot["next_link"]
        for record in snapshot["nodes"]:
            node = NodeRecord.from_record(record)
            # Re-intern the retained payloads: the rebuilt store's
            # catalog recovers its refcounts (and its dedup) from the
            # records themselves.
            node.attach_catalog(store.catalog)
            store.nodes[node.index] = node
        for record in snapshot["links"]:
            link = LinkRecord.from_record(record)
            store.links[link.index] = link
        store.registry = AttributeRegistry.from_record(snapshot["registry"])
        store.graph_demons = DemonTable.from_record(snapshot["graph_demons"])
        store.node_demons = {
            int(index): DemonTable.from_record(record)
            for index, record in snapshot["node_demons"].items()
        }
        return store


class GraphDirectory:
    """The on-disk home of one graph: meta file, snapshot heap, WAL."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = os.fspath(directory)

    # paths ------------------------------------------------------------

    @property
    def meta_path(self) -> str:
        return os.path.join(self.directory, _META_NAME)

    @property
    def snapshots_path(self) -> str:
        return os.path.join(self.directory, _SNAPSHOTS_NAME)

    @property
    def wal_path(self) -> str:
        return os.path.join(self.directory, _WAL_NAME)

    def exists(self) -> bool:
        """True when the directory already holds a graph."""
        return os.path.exists(self.meta_path)

    # meta ---------------------------------------------------------------

    def write_meta(self, meta: dict) -> None:
        """Atomically rewrite the meta file (write temp + rename)."""
        payload = encode_value(meta)
        temp_path = self.meta_path + ".tmp"
        with open(temp_path, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.meta_path)

    def read_meta(self) -> dict:
        """Read and decode the meta file."""
        if not self.exists():
            raise GraphNotFoundError(
                f"{self.directory} does not contain a Neptune graph")
        with open(self.meta_path, "rb") as handle:
            meta = decode_value(handle.read())
        if not isinstance(meta, dict):
            raise StorageError(f"{self.meta_path}: malformed meta file")
        return meta

    # creation -----------------------------------------------------------

    def initialize(self, project_id: ProjectId, protections: int,
                   created_at: Time) -> None:
        """Create the directory structure for a brand-new graph."""
        if self.exists():
            raise GraphExistsError(
                f"{self.directory} already contains a Neptune graph")
        os.makedirs(self.directory, exist_ok=True)
        store = GraphStore(project_id, created_at)
        snapshot_id = self.append_snapshot(store)
        self.write_meta({
            "project": project_id,
            "created": created_at,
            "protections": protections,
            "snapshot": snapshot_id,
        })

    def destroy(self, project_id: ProjectId) -> None:
        """Remove the graph's files (``destroyGraph``)."""
        meta = self.read_meta()
        if meta["project"] != project_id:
            raise GraphNotFoundError(
                f"{self.directory}: ProjectId does not match "
                f"(given {project_id}, stored {meta['project']})")
        for path in (self.meta_path, self.snapshots_path, self.wal_path,
                     self.wal_path + MARK_SUFFIX):
            if os.path.exists(path):
                os.remove(path)

    # snapshots ----------------------------------------------------------

    def _open_heap(self) -> RecordHeap:
        # Aligned: a new snapshot never dirties a page holding an older
        # committed snapshot's bytes, so a crash mid-append cannot
        # corrupt the snapshot recovery falls back to.  Rescued: a torn
        # header page re-derives its cursor instead of failing the open.
        return RecordHeap(self.snapshots_path, align_records=True,
                          rescue_header=True)

    def append_snapshot(self, store: GraphStore) -> int:
        """Append a full snapshot to the heap; returns its record id."""
        with self._open_heap() as heap:
            record_id = heap.append(encode_value(store.to_snapshot()))
            heap.sync()
        return record_id

    def load_snapshot_record(self, record_id: int) -> dict:
        """The raw (decoded, unhydrated) snapshot dict at ``record_id``.

        Replica bootstrap harvests blob payloads from this without
        paying for a full :class:`GraphStore` rebuild.
        """
        with self._open_heap() as heap:
            snapshot = decode_value(heap.read(record_id))
        if not isinstance(snapshot, dict):
            raise StorageError(
                f"{self.snapshots_path}: malformed snapshot record")
        return snapshot

    def load_snapshot(self, record_id: int) -> GraphStore:
        """Load the snapshot stored at ``record_id``."""
        return GraphStore.from_snapshot(self.load_snapshot_record(record_id))
