"""The Hypertext Abstract Machine (HAM) — the paper's core contribution.

- :mod:`repro.core.types` — the Appendix's atomic and compound domains
  (``NodeIndex``, ``LinkIndex``, ``LinkPt``, ``Version``, ``Protections``…).
- :mod:`repro.core.clock` — the per-graph logical ``Time`` source.
- :mod:`repro.core.attributes` — versioned attribute/value tables.
- :mod:`repro.core.node` / :mod:`repro.core.link` — node and link records.
- :mod:`repro.core.demons` — demon registry and events (with the paper's
  §5 parameterized-demon extension).
- :mod:`repro.core.graph` — the hypergraph object store.
- :mod:`repro.core.contexts` — multiple version threads (§5 extension).
- :mod:`repro.core.ham` — the public HAM facade implementing every
  Appendix operation.
"""

from repro.core.types import (
    NodeIndex,
    LinkIndex,
    AttributeIndex,
    ContextId,
    ProjectId,
    Time,
    CURRENT,
    LinkPt,
    Version,
    Protections,
    NodeKind,
)
from repro.core.clock import LogicalClock
from repro.core.demons import DemonEvent, EventKind, DemonRegistry
from repro.core.ham import HAM
from repro.core.contexts import ContextManager, MergeReport

__all__ = [
    "NodeIndex",
    "LinkIndex",
    "AttributeIndex",
    "ContextId",
    "ProjectId",
    "Time",
    "CURRENT",
    "LinkPt",
    "Version",
    "Protections",
    "NodeKind",
    "LogicalClock",
    "DemonEvent",
    "EventKind",
    "DemonRegistry",
    "HAM",
    "ContextManager",
    "MergeReport",
]
