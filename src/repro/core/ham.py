"""The Hypertext Abstract Machine: every operation of the Appendix.

One :class:`HAM` instance is an opened graph — the Appendix's ``Context``
operand becomes ``self``.  All mutating operations run inside a
transaction (begin one with :meth:`HAM.begin` or let the operation open a
single-op transaction itself).  Writers take exclusive locks and stage
every mutation in a private write-set that publishes into the shared
store only at commit, after the logical redo records are durable; a
crashed process therefore recovers to exactly the committed state on
the next ``openGraph``.  Read-only transactions pin a commit watermark
at ``begin`` and read **with no locks at all** — versioned records
resolve ``CURRENT`` to the watermark, so a pinned reader sees a frozen,
internally consistent graph while commits land around it (see DESIGN.md
"Isolation and visibility").

Operation naming: Pythonic ``snake_case`` is primary; every operation
also has the Appendix's original camelCase name as an alias
(``ham.linearizeGraph is ham.linearize_graph``), so code can be read
side-by-side with the paper.

Typical use::

    project_id, _ = HAM.create_graph("/tmp/mygraph")
    ham = HAM.open_graph(project_id, "/tmp/mygraph")
    with ham.begin() as txn:
        node, t = ham.add_node(txn, keep_history=True)
        ham.modify_node(txn, node, t, b"Section 1\\n")
    ham.close()
"""

from __future__ import annotations

import os
import secrets
import threading
from typing import Callable, Iterable, Sequence

from repro.core.demons import (MUTATION_EVENTS, DemonEvent, DemonRegistry,
                               EventKind)
from repro.core.graph import GraphDirectory, GraphStore
from repro.core.operations import MiddlewareChain, install_local_dispatch
from repro.core.link import LinkEnd, LinkRecord
from repro.core.node import NodeRecord
from repro.core.types import (
    CURRENT,
    AttributeIndex,
    LinkIndex,
    LinkPt,
    NodeIndex,
    NodeKind,
    ProjectId,
    Protections,
    Time,
    Version,
)
from repro.errors import (
    GraphNotFoundError,
    NeptuneError,
    NotPrimaryError,
    RecoveryError,
    StorageError,
    TransactionError,
    VersionError,
)
from repro.query.graph_query import QueryResult, get_graph_query
from repro.query.index import AttributeValueIndex
from repro.query.parser import parse_predicate
from repro.query.planner import compile_predicate, plan_query
from repro.query.predicate import Predicate
from repro.query.stats import AttributeStatistics
from repro.query.traversal import TraversalResult, linearize_graph
from repro.storage.diff import Difference, diff_bytes
from repro.storage.log import WalStats, WriteAheadLog
from repro.tools.metrics import PLANNER
from repro.txn.locks import LockManager, LockMode
from repro.txn.manager import Transaction, TransactionManager
from repro.txn.recovery import replay_log
from repro.txn.writeset import WriteSet

__all__ = ["HAM"]

_GRAPH_RESOURCE = ("graph",)


class _NullLog:
    """Log stand-in for ephemeral (memory-only) graphs."""

    base_lsn = 0
    epoch = 0

    def append(self, record) -> int:  # noqa: D401 - trivial
        return 0

    def append_many(self, records) -> int:
        return 0

    def append_raw(self, data) -> int:
        return 0

    def force(self) -> None:
        pass

    def force_up_to(self, lsn: int) -> bool:
        return False

    def durable_end(self) -> int:
        return 0

    def read_durable(self, from_lsn: int, max_bytes: int = 0) -> bytes:
        return b""

    def stats(self) -> WalStats:
        return WalStats()

    def truncate(self) -> None:
        pass

    def rebase(self, base_lsn: int, epoch: int = 0) -> None:
        pass

    def scan(self):
        return iter(())

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# Logical redo: one apply function per operation.  The live path, crash
# recovery, and commit-time publication share these, so replay is the
# same code that ran first.  Records are addressed through the
# ``*_for_write`` accessors: on a plain GraphStore (recovery) those are
# the records themselves; on a transaction's WriteSet overlay they are
# private copy-on-write clones, so the shared store is never mutated
# before commit.

_APPLY: dict[str, Callable[[GraphStore, dict], object]] = {}


def _applies(name: str):
    def decorator(fn):
        _APPLY[name] = fn
        return fn
    return decorator


@_applies("add_node")
def _apply_add_node(store: GraphStore, args: dict) -> NodeRecord:
    index, time = args["index"], args["time"]
    # On a plain store the catalog is the graph's BlobCatalog; on a
    # write-set overlay it is the transaction's CatalogJournal, so the
    # refs a new node takes are released again if the txn aborts.
    node = NodeRecord(index, NodeKind(args["kind"]), time,
                      catalog=getattr(store, "catalog", None))
    store.nodes[index] = node
    store.next_node_index = max(store.next_node_index, index + 1)
    store.clock.advance_to(time)
    return node


@_applies("delete_node")
def _apply_delete_node(store: GraphStore, args: dict) -> list[LinkIndex]:
    node = store.node_for_write(args["index"])
    time = args["time"]
    node.tombstone(time)
    cascaded = []
    for link_index in sorted(node.out_links | node.in_links):
        if store.link(link_index).alive_at(CURRENT):
            store.link_for_write(link_index).tombstone(time)
            cascaded.append(link_index)
    store.clock.advance_to(time)
    return cascaded


@_applies("add_link")
def _apply_add_link(store: GraphStore, args: dict) -> LinkRecord:
    index, time = args["index"], args["time"]
    from_pt = LinkPt.from_record(args["from"])
    to_pt = LinkPt.from_record(args["to"])
    link = LinkRecord(index, from_pt, to_pt, time)
    store.links[index] = link
    store.next_link_index = max(store.next_link_index, index + 1)
    from_node = store.node_for_write(from_pt.node)
    to_node = store.node_for_write(to_pt.node)
    from_node.out_links.add(index)
    to_node.in_links.add(index)
    from_node.record_minor_event(time, f"link {index} attached (out)")
    if to_node is not from_node:
        to_node.record_minor_event(time, f"link {index} attached (in)")
    store.clock.advance_to(time)
    return link


@_applies("delete_link")
def _apply_delete_link(store: GraphStore, args: dict) -> None:
    link = store.link_for_write(args["index"])
    time = args["time"]
    link.tombstone(time)
    from_node = store.node_for_write(link.from_node)
    to_node = store.node_for_write(link.to_node)
    from_node.record_minor_event(time, f"link {link.index} removed (out)")
    if to_node is not from_node:
        to_node.record_minor_event(time, f"link {link.index} removed (in)")
    store.clock.advance_to(time)


@_applies("modify_node")
def _apply_modify_node(store: GraphStore, args: dict) -> list:
    node = store.node_for_write(args["index"])
    time = args["time"]
    node.modify(args["contents"], args["expected"], time,
                args.get("explanation", ""))
    moved = []
    for link_index, end_value, position in args.get("moves", []):
        link = store.link_for_write(link_index)
        end = LinkEnd(end_value)
        link.move_attachment(end, position, time)
        moved.append((link_index, end))
    store.clock.advance_to(time)
    return moved


@_applies("intern_attribute")
def _apply_intern_attribute(store: GraphStore, args: dict) -> bool:
    name, index, time = args["name"], args["index"], args["time"]
    created = store.registry.lookup(name) is None
    store.registry_for_write().intern_exact(name, index, time)
    store.clock.advance_to(time)
    return created


@_applies("set_node_attribute")
def _apply_set_node_attribute(store: GraphStore, args: dict) -> None:
    node = store.node_for_write(args["node"])
    time = args["time"]
    node.attributes.set(args["attribute"], args["value"], time)
    name = store.registry.name_of(args["attribute"])
    node.record_minor_event(time, f"attribute {name} set")
    store.clock.advance_to(time)


@_applies("delete_node_attribute")
def _apply_delete_node_attribute(store: GraphStore, args: dict) -> None:
    node = store.node_for_write(args["node"])
    time = args["time"]
    node.attributes.delete(args["attribute"], time)
    name = store.registry.name_of(args["attribute"])
    node.record_minor_event(time, f"attribute {name} deleted")
    store.clock.advance_to(time)


@_applies("set_link_attribute")
def _apply_set_link_attribute(store: GraphStore, args: dict) -> None:
    link = store.link_for_write(args["link"])
    time = args["time"]
    link.attributes.set(args["attribute"], args["value"], time)
    store.clock.advance_to(time)


@_applies("delete_link_attribute")
def _apply_delete_link_attribute(store: GraphStore, args: dict) -> None:
    link = store.link_for_write(args["link"])
    time = args["time"]
    link.attributes.delete(args["attribute"], time)
    store.clock.advance_to(time)


@_applies("set_graph_demon")
def _apply_set_graph_demon(store: GraphStore, args: dict) -> None:
    time = args["time"]
    store.graph_demons_for_write().set(EventKind(args["event"]),
                                       args["demon"], time)
    store.clock.advance_to(time)


@_applies("set_node_demon")
def _apply_set_node_demon(store: GraphStore, args: dict) -> None:
    time = args["time"]
    table = store.demon_table_for_write(args["node"])
    table.set(EventKind(args["event"]), args["demon"], time)
    store.clock.advance_to(time)


@_applies("change_node_protection")
def _apply_change_node_protection(store: GraphStore, args: dict) -> None:
    node = store.node_for_write(args["node"])
    node.protections = Protections(args["protections"])
    return None


class _TxnScope:
    """Run one operation in a caller's transaction or a fresh auto one.

    Module-level (not a closure inside :meth:`HAM._in_txn`) because this
    sits on every operation's path — defining the class per call would
    cost more than the transaction bookkeeping itself.
    """

    __slots__ = ("_ham", "_txn", "_read_only", "owned", "txn")

    def __init__(self, ham: "HAM", txn, read_only: bool):
        self._ham = ham
        self._txn = txn
        self._read_only = read_only

    def __enter__(self):
        self.owned = self._txn is None
        if self.owned:
            self.txn = self._ham._begin_auto(self._read_only)
        else:
            self.txn = self._txn
        return self.txn

    def __exit__(self, exc_type, exc, tb):
        if self.owned:
            if exc_type is None:
                self.txn.commit()
            else:
                self.txn.abort()


class HAM:
    """An opened hypergraph: the paper's Hypertext Abstract Machine."""

    def __init__(self, store: GraphStore,
                 directory: GraphDirectory | None,
                 log: WriteAheadLog | _NullLog,
                 demons: DemonRegistry | None = None,
                 synchronous: bool = True,
                 use_attribute_index: bool = True,
                 lock_timeout: float = 10.0):
        self._store = store
        self._directory = directory
        self._log = log
        self._txns = TransactionManager(log,
                                        LockManager(timeout=lock_timeout),
                                        synchronous=synchronous,
                                        clock=store.clock)
        self.demons = demons if demons is not None else DemonRegistry()
        #: Interceptors around every Appendix operation (see
        #: :mod:`repro.core.operations`).  Empty by default, which keeps
        #: dispatch on the unwrapped fast path; add e.g. an
        #: :class:`repro.tools.metrics.OperationMetrics` to observe
        #: per-operation counts and latency.
        self.middleware = MiddlewareChain()
        self._closed = False
        self._state_lock = threading.RLock()
        #: False on a replica: mutating ``begin`` raises
        #: :class:`~repro.errors.NotPrimaryError` until promotion.
        self._accept_writes = True
        #: Primary-side log shipper, created lazily on the first
        #: ``repl_subscribe`` (see :mod:`repro.replication.hub`).
        self._repl_hub = None
        #: Replica-side applier, attached by
        #: :class:`repro.replication.replica.Replica`.
        self._repl_applier = None
        #: Change-feed fan-out point, created lazily on the first
        #: ``subscribe``/``watch`` (see :mod:`repro.subscriptions`).
        #: While None, the commit path collects nothing — subscriptions
        #: cost zero until someone actually watches.
        self._subscriptions = None
        self._index: AttributeValueIndex | None = (
            AttributeValueIndex() if use_attribute_index else None)
        #: Planner statistics ride with the index: both are maintained
        #: from the same committed mutation stream, and both are only
        #: trustworthy under the same seqlock validation.
        self._stats: AttributeStatistics | None = (
            AttributeStatistics() if use_attribute_index else None)
        if self._index is not None:
            self._rebuild_index()

    # ==================================================================
    # Graph operations (Appendix A.1)

    @classmethod
    def create_graph(cls, directory: str | os.PathLike,
                     protections: Protections = Protections.READ_WRITE,
                     ) -> tuple[ProjectId, Time]:
        """``createGraph``: make a new empty graph in ``directory``.

        Returns the new graph's ``ProjectId`` (needed to open or destroy
        it later) and its creation ``Time``.
        """
        project_id = secrets.randbits(63)
        created_at = 1
        GraphDirectory(directory).initialize(
            project_id, protections.value, created_at)
        return project_id, created_at

    @classmethod
    def destroy_graph(cls, project_id: ProjectId,
                      directory: str | os.PathLike) -> None:
        """``destroyGraph``: remove the graph's files.

        ``project_id`` must match the value ``createGraph`` returned — the
        Appendix's safeguard against destroying the wrong directory.
        """
        GraphDirectory(directory).destroy(project_id)

    @classmethod
    def open_graph(cls, project_id: ProjectId,
                   directory: str | os.PathLike,
                   machine: str | None = None,
                   demons: DemonRegistry | None = None,
                   synchronous: bool = True,
                   use_attribute_index: bool = True,
                   lock_timeout: float = 10.0,
                   group_commit_window: float = 0.0,
                   cache_bytes: int | None = None) -> "HAM":
        """``openGraph``: open an existing graph, recovering if needed.

        Loads the last durable checkpoint snapshot, replays the
        committed suffix of the write-ahead log, and fires the graph's
        OPEN_GRAPH demon.  When the newest snapshot is unreadable
        (crash or corruption mid-checkpoint), recovery falls back to an
        earlier snapshot the log can still be replayed onto (see
        :meth:`_recover`).  ``machine`` is accepted for Appendix
        fidelity; remote access goes through :mod:`repro.server`.

        ``group_commit_window`` (seconds) lets a commit's group-flush
        leader linger before fsyncing so concurrent committers pile onto
        the same flush; 0.0 flushes immediately (see
        :meth:`repro.storage.log.WriteAheadLog.force_up_to`).

        ``cache_bytes`` resizes the *process-wide* materialization
        cache (:mod:`repro.storage.blockcache`) — it is shared by every
        open graph and session, so the last configuration wins; None
        leaves the current size alone.
        """
        if cache_bytes is not None:
            from repro.storage import blockcache
            blockcache.configure(cache_bytes)
        graph_dir = GraphDirectory(directory)
        meta = graph_dir.read_meta()
        if meta["project"] != project_id:
            raise GraphNotFoundError(
                f"{directory}: ProjectId does not match "
                f"(given {project_id}, stored {meta['project']})")
        log = WriteAheadLog(graph_dir.wal_path,
                            group_commit_window=group_commit_window)
        try:
            store, recovered, snapshot_id = cls._recover(graph_dir, meta,
                                                         log)
        except BaseException:
            log.close()
            raise
        if meta.get("snapshot") != snapshot_id:
            # A crash interrupted a checkpoint between forcing its log
            # marker and rewriting the meta pointer; repair the pointer
            # (best-effort — recovery re-derives it anyway).
            meta["previous"] = meta.get("snapshot")
            meta["snapshot"] = snapshot_id
            try:
                graph_dir.write_meta(meta)
            except OSError:
                pass
        ham = cls(store, graph_dir, log, demons=demons,
                  synchronous=synchronous,
                  use_attribute_index=use_attribute_index,
                  lock_timeout=lock_timeout)
        ham._txns.resume_after(recovered.max_txn_id)
        ham._fire_demons(EventKind.OPEN_GRAPH, time=store.clock.now)
        return ham

    @staticmethod
    def _recover(graph_dir: GraphDirectory, meta: dict,
                 log: WriteAheadLog):
        """Pick a loadable snapshot + replayable log suffix.

        Candidates, best first: the newest CHECKPOINT marker in the log
        (it was forced before the meta pointer moved), then the meta
        pointer, then the previous meta pointer.  A fallback candidate
        is only usable when the log carries its CHECKPOINT marker (so an
        anchored replay yields the right suffix) or carries no
        checkpoint at all.
        """
        recovered = replay_log(log)
        candidates = []
        if recovered.saw_checkpoint and recovered.checkpoint_marker is not None:
            candidates.append(recovered.checkpoint_marker)
        for key in ("snapshot", "previous"):
            snapshot_id = meta.get(key)
            if snapshot_id is not None and snapshot_id not in candidates:
                candidates.append(snapshot_id)
        failures = []
        for snapshot_id in candidates:
            if recovered.saw_checkpoint \
                    and snapshot_id == recovered.checkpoint_marker:
                state = recovered
            elif snapshot_id in recovered.markers:
                state = replay_log(log, anchor=snapshot_id)
            elif not recovered.markers:
                state = recovered
            else:
                failures.append(
                    f"{snapshot_id}: log does not cover this snapshot")
                continue
            try:
                store = graph_dir.load_snapshot(snapshot_id)
                for __, operation, op_args in state.updates:
                    _APPLY[operation](store, op_args)
            except NeptuneError as exc:
                failures.append(f"{snapshot_id}: {exc}")
                continue
            return store, state, snapshot_id
        raise RecoveryError(
            f"{graph_dir.directory}: no recoverable snapshot "
            f"(tried {'; '.join(failures) or 'none'})")

    @classmethod
    def ephemeral(cls, demons: DemonRegistry | None = None,
                  use_attribute_index: bool = True,
                  lock_timeout: float = 10.0,
                  cache_bytes: int | None = None) -> "HAM":
        """A memory-only graph (extension; handy for tests and browsers)."""
        if cache_bytes is not None:
            from repro.storage import blockcache
            blockcache.configure(cache_bytes)
        store = GraphStore(project_id=secrets.randbits(63), created_at=1)
        return cls(store, directory=None, log=_NullLog(), demons=demons,
                   use_attribute_index=use_attribute_index,
                   lock_timeout=lock_timeout)

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def project_id(self) -> ProjectId:
        """The graph's unique identification from ``createGraph``."""
        return self._store.project_id

    @property
    def now(self) -> Time:
        """The graph's current logical time."""
        return self._store.clock.now

    @property
    def store(self) -> GraphStore:
        """The underlying object store (read-only use by browsers/query)."""
        return self._store

    def close(self) -> None:
        """Checkpoint (when persistent) and release the log."""
        with self._state_lock:
            if self._closed:
                return
            if (self._directory is not None
                    and self._txns.active_count == 0
                    and not self._txns.poisoned):
                self.checkpoint()
            self._log.close()
            self._closed = True

    def __enter__(self) -> "HAM":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def checkpoint(self) -> None:
        """Persist a full snapshot and truncate the redo log.

        Crash-safe ordering: (1) append the snapshot, (2) force a
        CHECKPOINT intent marker into the *old* log, (3) flip the meta
        pointer, (4) truncate the log and write the fresh marker.  A
        crash in any window leaves either the old snapshot with a
        replayable log or the new snapshot with an empty suffix —
        recovery (see :meth:`_recover`) lands on a consistent state
        either way, and falls back to ``meta["previous"]`` if the new
        snapshot record itself was torn.
        """
        if self._directory is None:
            return
        with self._state_lock:
            snapshot_id = self._directory.append_snapshot(self._store)
            self._txns.checkpoint_mark(snapshot_id)
            meta = self._directory.read_meta()
            meta["previous"] = meta.get("snapshot")
            meta["snapshot"] = snapshot_id
            self._directory.write_meta(meta)
            self._txns.checkpoint(snapshot_marker=snapshot_id)

    # ------------------------------------------------------------------
    # replication (extension operations; see :mod:`repro.replication`)

    @property
    def accepts_writes(self) -> bool:
        """False while this graph is a replica (mutations are refused)."""
        return self._accept_writes

    def _replication_hub(self):
        """The primary-side log shipper, created on first use."""
        with self._state_lock:
            if self._repl_hub is None:
                from repro.replication.hub import ReplicationHub
                self._repl_hub = ReplicationHub(self)
            return self._repl_hub

    def repl_status(self) -> dict:
        """``replStatus``: role, LSN watermarks, lag, and log epoch."""
        applier = self._repl_applier
        if applier is not None:
            return applier.status()
        log = self._log
        durable = log.durable_end()
        status = {
            "role": "primary" if self._accept_writes else "replica",
            "epoch": log.epoch,
            "base_lsn": log.base_lsn,
            "end_lsn": self.end_lsn,
            "durable_lsn": durable,
            # A primary trivially "replays" its own log as it commits.
            "replayed_lsn": durable,
            "lag_bytes": 0,
            "watermark": self._txns.watermark,
        }
        hub = self._repl_hub
        if hub is not None:
            status["subscribers"] = hub.subscriber_acks()
        return status

    # ------------------------------------------------------------------
    # change feeds (extension operations; see :mod:`repro.subscriptions`)

    def subscription_hub(self):
        """The change-feed fan-out point, created on first use.

        Creation installs the hub as the transaction manager's
        ``event_feed``, which switches the commit path into
        collect-and-stage mode; until then subscriptions cost nothing.
        """
        with self._state_lock:
            if self._subscriptions is None:
                from repro.subscriptions import SubscriptionHub
                hub = SubscriptionHub(self._store)
                # Publish the feed only after the hub is fully built:
                # committers read ``event_feed`` without the state lock.
                self._txns.event_feed = hub
                self._subscriptions = hub
            return self._subscriptions

    def compile_watch_predicate(self, predicate):
        """Compile a watch predicate against this graph's registry."""
        if predicate is None:
            return None
        return compile_predicate(parse_predicate(predicate),
                                 self._store.registry, self._stats)

    def watch(self, events=None, predicate=None, max_events: int = 1024):
        """Open an in-process change feed (a ``LocalWatch``).

        ``events`` limits the feed to specific :class:`EventKind`
        values (None = every mutation kind); ``predicate`` is a query
        predicate evaluated against the event's node at the event's
        time.  Events arrive only after their commit is durable and
        published, stamped with the commit LSN — the same stream a
        remote subscriber sees, minus the network.
        """
        from repro.subscriptions import LocalWatch
        return LocalWatch(self.subscription_hub(), events=events,
                          predicate=self.compile_watch_predicate(predicate),
                          max_events=max_events)

    def subscription_status(self) -> dict:
        """``subscriptionStatus``: hub queue depths and counters."""
        hub = self._subscriptions
        if hub is None:
            return {"active": 0, "staged": 0, "last_emitted_lsn": 0,
                    "replay_depth": 0, "replay_floor": 0}
        return hub.status()

    @property
    def end_lsn(self) -> int:
        """Global LSN one past this graph's last appended log byte."""
        return (self._log.end_lsn if hasattr(self._log, "end_lsn")
                else 0)

    def repl_subscribe(self, from_lsn: int, epoch: int,
                       max_bytes: int = 1 << 20, wait: float = 0.0,
                       ack: int | None = None,
                       subscriber: str | None = None) -> dict:
        """``replSubscribe``: fetch durable log bytes for a replica.

        Long-polls up to ``wait`` seconds when the subscriber is caught
        up.  ``ack`` reports the subscriber's replayed LSN back to the
        primary (the semi-sync gate and the lag counters feed on it).
        An ``epoch`` mismatch, or a cursor outside the durable region,
        answers ``resync=True``: the subscriber must bootstrap again
        from :meth:`repl_snapshot`.
        """
        return self._replication_hub().fetch(
            from_lsn, epoch, max_bytes=max_bytes, wait=wait, ack=ack,
            subscriber=subscriber)

    def repl_snapshot(self, have: list | None = None) -> dict:
        """``replSnapshot``: the bootstrap payload for a new replica.

        Serves the snapshot that anchors byte 0 of the current log
        epoch, so a subscriber that loads it and replays the shipped
        stream from ``lsn`` reconstructs exactly the primary's durable
        state — the same contract crash recovery relies on.

        ``have`` (a list of content digests the subscriber already
        holds — from its previous on-disk snapshot, or its live blob
        catalog on a resync) switches the reply to manifest form: the
        snapshot ships *stripped* (payload sites replaced by hash
        references; see :mod:`repro.storage.cas`), ``manifest`` lists
        every digest the snapshot needs, and ``blobs`` carries only
        ``[digest, payload]`` pairs missing from ``have``.  A replica
        that kept its catalog re-bootstraps on a near-empty diff;
        ``have=None`` keeps the original whole-snapshot reply.
        """
        if self._directory is None:
            raise StorageError(
                "ephemeral graphs cannot be replicated (no durable log)")
        with self._state_lock:  # excludes a concurrent checkpoint
            log = self._log
            anchor = self._epoch_anchor()
            store = self._directory.load_snapshot(anchor)
            meta = self._directory.read_meta()
            from repro.storage.serializer import encode_value
            reply = {
                "lsn": log.base_lsn,
                "epoch": log.epoch,
                "project": self._store.project_id,
                "protections": meta.get("protections"),
            }
            snapshot = store.to_snapshot()
            if have is None:
                reply["snapshot"] = encode_value(snapshot)
                return reply
            from repro.storage.cas import strip_snapshot_blobs
            blobs = strip_snapshot_blobs(snapshot)
            held = {bytes(digest) for digest in have}
            reply["snapshot"] = encode_value(snapshot)
            reply["manifest"] = sorted(blobs)
            reply["blobs"] = [[digest, payload]
                              for digest, payload in sorted(blobs.items())
                              if digest not in held]
            return reply

    def _epoch_anchor(self):
        """Snapshot id anchoring byte 0 of the current log.

        A truncated log opens with the CHECKPOINT record naming its
        snapshot.  Without one, no checkpoint has truncated this log:
        the meta pointer still names the anchor — unless the log carries
        a checkpoint *intent* marker (crash between mark and truncate),
        in which case recovery may have repaired the meta pointer
        forward and ``previous`` names the byte-0 anchor.
        """
        from repro.storage.log import LogRecordKind
        saw_intent = False
        for record in self._log.scan():
            if record.kind is LogRecordKind.CHECKPOINT:
                if record.lsn == 0:
                    return record.payload
                saw_intent = True
        meta = self._directory.read_meta()
        if saw_intent and meta.get("previous") is not None:
            return meta["previous"]
        return meta.get("snapshot")

    def repl_promote(self) -> dict:
        """``replPromote``: make this graph accept writes.

        Idempotent: promoting a primary is a no-op.  On a replica the
        attached applier drains what it has already fetched, detaches,
        and the graph starts accepting mutations at the LSN its replay
        reached — the shipped byte stream guarantees that state equals
        the dead primary's acknowledged history.
        """
        applier = self._repl_applier
        if applier is not None:
            applier.promote()
        with self._state_lock:
            self._accept_writes = True
            if self._index is None:
                # Replicas maintain their index from the shipped stream;
                # a graph promoted without one rebuilds it now so the
                # indexed query path works for its new writers.
                self._index = AttributeValueIndex()
                self._stats = AttributeStatistics()
                self._rebuild_index()
        return self.repl_status()

    # ------------------------------------------------------------------
    # transactions

    def begin(self, read_only: bool = False) -> Transaction:
        """Start a transaction (commit/abort via the Transaction).

        Writers get a private :class:`~repro.txn.writeset.WriteSet`
        overlay; read-only transactions pin the commit watermark instead
        and take no locks for the rest of their life.
        """
        if self._closed:
            raise TransactionError("HAM is closed")
        if not read_only and not self._accept_writes:
            raise NotPrimaryError(
                "this graph is a replica: it applies shipped log records "
                "only; route mutations to the primary")
        txn = self._txns.begin(read_only=read_only)
        if not read_only:
            txn.writeset = WriteSet(self._store, self._index, self._stats)
        return txn

    transaction = begin  # alias: ``with ham.transaction() as txn:``

    def _begin_auto(self, read_only: bool) -> Transaction:
        """A single-operation transaction (latest-committed reads)."""
        if self._closed:
            raise TransactionError("HAM is closed")
        if not read_only and not self._accept_writes:
            raise NotPrimaryError(
                "this graph is a replica: it applies shipped log records "
                "only; route mutations to the primary")
        txn = self._txns.begin(read_only=read_only, auto=True)
        if not read_only:
            txn.writeset = WriteSet(self._store, self._index, self._stats)
        return txn

    def _in_txn(self, txn: Transaction | None, read_only: bool = False):
        """Run an operation in ``txn``, or a fresh single-op transaction.

        Returns a context manager yielding the transaction; when it had
        to create one, it commits on success / aborts on error.  A
        transaction opened here is marked ``auto``: single-op reads
        answer from latest-committed state (still lock-free) rather
        than pinning a snapshot — a plain ``open_node()`` call should
        see the newest contents, and on file nodes a pinned historical
        read could not answer at all.
        """
        return _TxnScope(self, txn, read_only)

    # ------------------------------------------------------------------
    # journaled mutation helper

    def _mutate(self, txn: Transaction, operation: str, args: dict):
        """Apply + journal one logical operation inside ``txn``.

        The apply function runs against the transaction's write-set
        overlay: the shared store is untouched until commit, and abort
        is simply dropping the overlay.
        """
        if txn.writeset is None:  # externally-created transaction
            txn.writeset = WriteSet(self._store, self._index, self._stats)
        result = _APPLY[operation](txn.writeset, args)
        txn.log_update(operation, args)
        return result

    def _store_for(self, txn: Transaction | None):
        """The store a read inside ``txn`` should answer from.

        A writer reads through its write-set overlay (its own
        uncommitted effects are visible to it); everything else reads
        the shared store.
        """
        if txn is not None and txn.writeset is not None:
            return txn.writeset
        return self._store

    def _snapshot_time(self, txn: Transaction | None) -> Time | None:
        """Pinned watermark for an explicit read-only transaction.

        Returns None when the read should see latest-committed state:
        writer transactions (they read their own overlay), auto
        single-op transactions, and everything once
        ``snapshot_reads`` is switched off.
        """
        if (txn is not None and txn.read_only and not txn.auto
                and self._txns.snapshot_reads):
            return txn.watermark
        return None

    def _fire_demons(self, kind: EventKind, time: Time,
                     node: NodeIndex | None = None,
                     link: LinkIndex | None = None,
                     txn: Transaction | None = None,
                     detail: dict | None = None) -> None:
        store = self._store_for(txn)
        # Probe for bindings before materializing the event: most
        # operations fire into a graph with no demons at all, and this
        # is on the per-request hot path of a pipelined read.
        names = []
        graph_demon = store.graph_demons.demon_at(kind)
        if graph_demon is not None:
            names.append(graph_demon)
        if node is not None:
            table = store.node_demons.get(node)
            if table is not None:
                node_demon = table.demon_at(kind)
                if node_demon is not None:
                    names.append(node_demon)
        # Change-feed collection is independent of demon bindings: a
        # subscriber needs no demon registered.  Only mutation kinds
        # are collected (read events publish nothing at commit), and
        # only once a hub exists.  Demons themselves still fire inline
        # below — a raising demon vetoes the transaction, and then the
        # buffered events abort with the write-set.
        collect = (self._subscriptions is not None and txn is not None
                   and txn.writeset is not None and kind in MUTATION_EVENTS)
        if not names and not collect:
            return
        event = DemonEvent(
            kind=kind, time=time, project=self._store.project_id,
            node=node, link=link,
            transaction=txn.txn_id if txn is not None else None,
            detail=detail or {}, txn_handle=txn)
        if collect:
            txn.writeset.record_event(event)
        for name in names:
            self.demons.fire(name, event)

    # ==================================================================
    # Node lifecycle (Appendix A.1 continued)

    def add_node(self, txn: Transaction | None = None,
                 keep_history: bool = True) -> tuple[NodeIndex, Time]:
        """``addNode``: create an empty node; returns (index, time).

        ``keep_history=True`` creates an *archive* (full version history);
        ``False`` creates a *file* (current version only).
        """
        with self._in_txn(txn) as t:
            t.lock(_GRAPH_RESOURCE, LockMode.EXCLUSIVE)
            index = self._store_for(t).next_node_index
            time = self._txns.assign_time(t)
            kind = NodeKind.ARCHIVE if keep_history else NodeKind.FILE
            args = {"index": index, "kind": kind.value, "time": time}
            self._mutate(t, "add_node", args)
            self._fire_demons(EventKind.ADD_NODE, time, node=index, txn=t)
            return index, time

    def delete_node(self, txn: Transaction | None = None, *,
                    node: NodeIndex) -> None:
        """``deleteNode``: tombstone a node and every attached link."""
        with self._in_txn(txn) as t:
            t.lock(_GRAPH_RESOURCE, LockMode.EXCLUSIVE)
            t.lock(("node", node), LockMode.EXCLUSIVE)
            record = self._store_for(t).node(node)
            record.require_alive()
            time = self._txns.assign_time(t)
            args = {"index": node, "time": time}
            self._mutate(t, "delete_node", args)
            t.writeset.queue_index("drop", node)
            self._fire_demons(EventKind.DELETE_NODE, time, node=node, txn=t)

    # ==================================================================
    # Link lifecycle

    def add_link(self, txn: Transaction | None = None, *,
                 from_pt: LinkPt, to_pt: LinkPt) -> tuple[LinkIndex, Time]:
        """``addLink``: create a link between two endpoints.

        "The from and to nodes must exist at their respective times."
        A zero endpoint time means the link tracks the current version.
        """
        with self._in_txn(txn) as t:
            t.lock(_GRAPH_RESOURCE, LockMode.EXCLUSIVE)
            store = self._store_for(t)
            for pt in (from_pt, to_pt):
                t.lock(("node", pt.node), LockMode.EXCLUSIVE)
                node = store.node(pt.node)
                node.require_alive(pt.time)
                if pt.pinned:
                    # The pinned version must actually exist.
                    node.contents_at(pt.time)
            index = store.next_link_index
            time = self._txns.assign_time(t)
            args = {"index": index, "from": from_pt.to_record(),
                    "to": to_pt.to_record(), "time": time}
            self._mutate(t, "add_link", args)
            self._fire_demons(EventKind.ADD_LINK, time, link=index, txn=t)
            return index, time

    def copy_link(self, txn: Transaction | None = None, *,
                  link: LinkIndex, time: Time = CURRENT,
                  keep_source: bool = True,
                  other_pt: LinkPt) -> tuple[LinkIndex, Time]:
        """``copyLink``: new link sharing one endpoint of an existing link.

        ``keep_source=True`` copies the source endpoint of ``link`` (as of
        ``time``) and uses ``other_pt`` as destination; ``False`` copies
        the destination and uses ``other_pt`` as source.
        """
        with self._in_txn(txn) as t:
            t.lock(("link", link), LockMode.SHARED)
            record = self._store_for(t).link(link)
            record.require_alive(time)
            end = LinkEnd.FROM if keep_source else LinkEnd.TO
            shared_pt = record.resolved_endpoint(end, time)
            if keep_source:
                from_pt, to_pt = shared_pt, other_pt
            else:
                from_pt, to_pt = other_pt, shared_pt
            new_index, new_time = self.add_link(
                t, from_pt=from_pt, to_pt=to_pt)
            self._fire_demons(EventKind.COPY_LINK, new_time, link=new_index,
                              txn=t, detail={"copied_from": link})
            return new_index, new_time

    def delete_link(self, txn: Transaction | None = None, *,
                    link: LinkIndex) -> None:
        """``deleteLink``: tombstone a link."""
        with self._in_txn(txn) as t:
            t.lock(("link", link), LockMode.EXCLUSIVE)
            record = self._store_for(t).link(link)
            record.require_alive()
            t.lock(("node", record.from_node), LockMode.EXCLUSIVE)
            t.lock(("node", record.to_node), LockMode.EXCLUSIVE)
            time = self._txns.assign_time(t)
            args = {"index": link, "time": time}
            self._mutate(t, "delete_link", args)
            self._fire_demons(EventKind.DELETE_LINK, time, link=link, txn=t)

    # ==================================================================
    # Queries (Appendix A.1 continued)

    def linearize_graph(self, start: NodeIndex, time: Time = CURRENT,
                        node_predicate: str | Predicate | None = None,
                        link_predicate: str | Predicate | None = None,
                        node_attributes: Sequence[AttributeIndex] = (),
                        link_attributes: Sequence[AttributeIndex] = (),
                        txn: Transaction | None = None) -> TraversalResult:
        """``linearizeGraph``: offset-ordered DFS from ``start``.

        Predicates are compiled (:mod:`repro.query.planner`) before the
        walk, so per-node filtering shares the planned query path's
        registry-resolved evaluation and stats-driven conjunct order.
        """
        with self._in_txn(txn, read_only=True) as t:
            t.lock(_GRAPH_RESOURCE, LockMode.SHARED)
            pinned = self._snapshot_time(t)
            if pinned is not None and time == CURRENT:
                time = pinned
            store = self._store_for(t)
            node_pred = compile_predicate(
                parse_predicate(node_predicate), store.registry, self._stats)
            link_pred = compile_predicate(
                parse_predicate(link_predicate), store.registry, self._stats)
            PLANNER.increment("compiled_traversals")
            return linearize_graph(
                store, start, time, node_pred, link_pred,
                list(node_attributes), list(link_attributes))

    def get_graph_query(self, time: Time = CURRENT,
                        node_predicate: str | Predicate | None = None,
                        link_predicate: str | Predicate | None = None,
                        node_attributes: Sequence[AttributeIndex] = (),
                        link_attributes: Sequence[AttributeIndex] = (),
                        txn: Transaction | None = None) -> QueryResult:
        """``getGraphQuery``: associative access by attribute predicates."""
        with self._in_txn(txn, read_only=True) as t:
            t.lock(_GRAPH_RESOURCE, LockMode.SHARED)
            node_pred = parse_predicate(node_predicate)
            link_pred = parse_predicate(link_predicate)
            projection = (list(node_attributes), list(link_attributes))
            if t.writeset is not None and t.writeset.dirty:
                # A writer queries through its own overlay; the index
                # only reflects committed state, so it cannot be used.
                return get_graph_query(
                    t.writeset, time, node_pred, link_pred,
                    *projection, index=None, stats=self._stats)
            pinned = self._snapshot_time(t)
            if pinned is None:
                return get_graph_query(
                    self._store, time, node_pred, link_pred,
                    *projection, index=self._index, stats=self._stats)
            if time == CURRENT:
                # Optimistic indexed path: if no commit has published
                # since this snapshot was pinned (apply seqlock even
                # and unchanged before *and* after the query) and no
                # earlier commit published *above* the watermark (a
                # committer racing an older in-flight writer leaves
                # applied effects the pin must not see), the live store
                # IS the snapshot and the index answer is valid.
                if (t.snapshot_seq % 2 == 0
                        and self._txns.apply_seq == t.snapshot_seq
                        and self._txns.applied_high <= t.watermark):
                    result = get_graph_query(
                        self._store, CURRENT, node_pred, link_pred,
                        *projection, index=self._index, stats=self._stats)
                    if self._txns.apply_seq == t.snapshot_seq:
                        return result
                # The seqlock proved the live index stale relative to
                # this snapshot — fall back to the pinned-time scan.
                PLANNER.increment("fallbacks")
                time = pinned
            # As-of-time scan (the query layer ignores the index for
            # historical times anyway).
            return get_graph_query(
                self._store, time, node_pred, link_pred,
                *projection, index=self._index, stats=self._stats)

    def explain_query(self, time: Time = CURRENT,
                      node_predicate: str | Predicate | None = None,
                      link_predicate: str | Predicate | None = None,
                      txn: Transaction | None = None) -> str:
        """Render the plan ``getGraphQuery`` would execute, without
        executing it.

        Shows the normalized residual predicate, the chosen access path
        (probes, intersections, unions, or the full scan) and the
        stats-driven selectivity estimate.  The plan reflects this
        moment's statistics; a concurrent commit may shift estimates,
        never results.
        """
        with self._in_txn(txn, read_only=True) as t:
            t.lock(_GRAPH_RESOURCE, LockMode.SHARED)
            store = self._store_for(t)
            writer_overlay = t.writeset is not None and t.writeset.dirty
            indexed = (self._index is not None and time == CURRENT
                       and not writer_overlay)
            plan = plan_query(
                parse_predicate(node_predicate), store.registry,
                stats=self._stats, indexed=indexed,
                link_predicate=parse_predicate(link_predicate))
            PLANNER.increment("explains")
            return plan.explain()

    # ==================================================================
    # Node operations (Appendix A.2)

    def open_node(self, node: NodeIndex, time: Time = CURRENT,
                  attributes: Sequence[AttributeIndex] = (),
                  txn: Transaction | None = None,
                  ) -> tuple[bytes, list[tuple[LinkIndex, str, LinkPt]],
                             list[str | None], Time]:
        """``openNode``: contents + attachments + values + current time.

        Returns ``(contents, link_points, attribute_values, current_time)``
        where ``link_points`` holds ``(link index, 'from'|'to', LinkPt)``
        for every link attached to the requested version of the node.
        """
        with self._in_txn(txn, read_only=True) as t:
            t.lock(("node", node), LockMode.SHARED)
            store = self._store_for(t)
            pinned = self._snapshot_time(t)
            if pinned is not None and time == CURRENT:
                time = pinned
            record = store.node(node)
            record.require_alive(time)
            contents = record.contents_at(time)
            link_points: list[tuple[LinkIndex, str, LinkPt]] = []
            for link_index in sorted(record.out_links | record.in_links):
                link = store.link(link_index)
                if not link.alive_at(time):
                    continue
                for end in link.ends_attached_to(node):
                    try:
                        resolved = link.resolved_endpoint(end, time)
                    except VersionError:
                        continue
                    link_points.append((link_index, end.value, resolved))
            if attributes:
                attached = record.attributes.all_at(time)
                values = [attached.get(index) for index in attributes]
            else:
                values = []
            # A pinned reader reports the version in effect at its
            # watermark, not whatever a later commit checked in.
            current = (record.version_time_at(time) if pinned is not None
                       else record.current_time)
            self._fire_demons(EventKind.OPEN_NODE, self._store.clock.now,
                              node=node, txn=t)
            return contents, link_points, values, current

    def modify_node(self, txn: Transaction | None = None, *,
                    node: NodeIndex, expected_time: Time, contents: bytes,
                    attachments: Iterable[tuple[LinkIndex, str, int]] | None
                    = None,
                    explanation: str = "") -> Time:
        """``modifyNode``: check in new contents.

        ``expected_time`` must equal the node's current version time (the
        optimistic check the Appendix mandates).  ``attachments`` supplies
        the new offset for each tracking link endpoint attached to the
        node — "there must be a LinkPt for each link associated with the
        current version"; pass ``None`` to keep every offset unchanged.
        Returns the new version time.
        """
        with self._in_txn(txn) as t:
            t.lock(("node", node), LockMode.EXCLUSIVE)
            store = self._store_for(t)
            record = store.node(node)
            record.require_alive()

            tracking = self._tracking_endpoints(store, record)
            moves: list[list] = []
            if attachments is not None:
                supplied = {
                    (link_index, LinkEnd(end_value)): position
                    for link_index, end_value, position in attachments
                }
                missing = set(tracking) - set(supplied)
                unknown = set(supplied) - set(tracking)
                if missing or unknown:
                    raise VersionError(
                        f"modifyNode attachments mismatch: missing "
                        f"{sorted(missing)}, unknown {sorted(unknown)}")
                for (link_index, end), position in sorted(supplied.items(),
                                                          key=lambda kv:
                                                          (kv[0][0],
                                                           kv[0][1].value)):
                    current = store.link(link_index).position_at(end)
                    if position != current:
                        moves.append([link_index, end.value, position])
            for link_index, __ in tracking:
                t.lock(("link", link_index), LockMode.EXCLUSIVE)

            time = self._txns.assign_time(t)
            args = {"index": node, "expected": expected_time,
                    "contents": bytes(contents), "time": time,
                    "explanation": explanation, "moves": moves}
            self._mutate(t, "modify_node", args)
            self._fire_demons(EventKind.MODIFY_NODE, time, node=node, txn=t)
            return time

    @staticmethod
    def _tracking_endpoints(store, record: NodeRecord,
                            ) -> list[tuple[LinkIndex, LinkEnd]]:
        """Live tracking endpoints attached to ``record``."""
        found = []
        for link_index in sorted(record.out_links | record.in_links):
            link = store.link(link_index)
            if not link.alive_at(CURRENT):
                continue
            for end in link.ends_attached_to(record.index):
                if link.endpoint(end).track_current:
                    found.append((link_index, end))
        return found

    def get_node_timestamp(self, node: NodeIndex,
                           txn: Transaction | None = None) -> Time:
        """``getNodeTimeStamp``: current version time of ``node``.

        Inside a write transaction, pass ``txn`` to see the version the
        transaction itself checked in; a pinned read-only transaction
        answers with the version in effect at its watermark.
        """
        pinned = self._snapshot_time(txn)
        record = self._store_for(txn).node(node)
        if pinned is not None:
            record.require_alive(pinned)
            return record.version_time_at(pinned)
        record.require_alive()
        return record.current_time

    def change_node_protection(self, txn: Transaction | None = None, *,
                               node: NodeIndex,
                               protections: Protections) -> None:
        """``changeNodeProtection``: set the node's protection mode."""
        with self._in_txn(txn) as t:
            t.lock(("node", node), LockMode.EXCLUSIVE)
            record = self._store_for(t).node(node)
            record.require_alive()
            args = {"node": node, "protections": protections.value}
            self._mutate(t, "change_node_protection", args)

    def get_node_versions(self, node: NodeIndex,
                          ) -> tuple[list[Version], list[Version]]:
        """``getNodeVersions``: (major versions, minor versions)."""
        record = self._store.node(node)
        return record.major_versions(), record.minor_versions()

    def get_node_differences(self, node: NodeIndex, time1: Time,
                             time2: Time) -> list[Difference]:
        """``getNodeDifferences``: diff between two versions of a node."""
        record = self._store.node(node)
        old = record.contents_at(time1)
        new = record.contents_at(time2)
        return diff_bytes(old, new)

    # ==================================================================
    # Link operations (Appendix A.3)

    def get_to_node(self, link: LinkIndex, time: Time = CURRENT,
                    ) -> tuple[NodeIndex, Time]:
        """``getToNode``: destination (node, version time) of ``link``."""
        return self._link_end_node(link, LinkEnd.TO, time)

    def get_from_node(self, link: LinkIndex, time: Time = CURRENT,
                      ) -> tuple[NodeIndex, Time]:
        """``getFromNode``: source (node, version time) of ``link``."""
        return self._link_end_node(link, LinkEnd.FROM, time)

    def _link_end_node(self, link: LinkIndex, end: LinkEnd,
                       time: Time) -> tuple[NodeIndex, Time]:
        record = self._store.link(link)
        record.require_alive(time)
        pt = record.endpoint(end)
        node = self._store.node(pt.node)
        if pt.pinned:
            return pt.node, pt.time
        if time == CURRENT:
            return pt.node, node.current_time
        # Version of the node in effect at the requested time.
        stamps = [s for s in node.content_version_times() if s <= time]
        if not stamps:
            raise VersionError(
                f"node {pt.node} had no version at time {time}")
        return pt.node, stamps[-1]

    def links_from(self, node: NodeIndex, time: Time = CURRENT,
                   txn: Transaction | None = None) -> list[LinkIndex]:
        """``linksFrom``: indexes of links leaving ``node`` at ``time``.

        O(degree): answered from the link table's per-node adjacency
        run (or, inside a writer transaction, the overlay's endpoint
        sets) — never a scan over every link in the graph.  Results are
        ascending by link index.
        """
        with self._in_txn(txn, read_only=True) as t:
            t.lock(("node", node), LockMode.SHARED)
            store = self._store_for(t)
            pinned = self._snapshot_time(t)
            if pinned is not None and time == CURRENT:
                time = pinned
            store.node(node).require_alive(time)
            return [link.index for link in store.links_from(node, time)]

    def links_to(self, node: NodeIndex, time: Time = CURRENT,
                 txn: Transaction | None = None) -> list[LinkIndex]:
        """``linksTo``: indexes of links entering ``node`` at ``time``.

        The mirror of :meth:`links_from`, served from the incoming
        adjacency run.
        """
        with self._in_txn(txn, read_only=True) as t:
            t.lock(("node", node), LockMode.SHARED)
            store = self._store_for(t)
            pinned = self._snapshot_time(t)
            if pinned is not None and time == CURRENT:
                time = pinned
            store.node(node).require_alive(time)
            return [link.index for link in store.links_to(node, time)]

    # ==================================================================
    # Attribute operations (Appendix A.4)

    def get_attributes(self, time: Time = CURRENT,
                       ) -> list[tuple[str, AttributeIndex]]:
        """``getAttributes``: every (name, index) existing at ``time``."""
        return self._store.registry.all_at(time)

    def get_attribute_index(self, name: str,
                            txn: Transaction | None = None) -> AttributeIndex:
        """``getAttributeIndex``: look up ``name``, creating it if new."""
        existing = self._store_for(txn).registry.lookup(name)
        if existing is not None:
            return existing
        with self._in_txn(txn) as t:
            t.lock(_GRAPH_RESOURCE, LockMode.EXCLUSIVE)
            store = self._store_for(t)
            existing = store.registry.lookup(name)
            if existing is not None:
                return existing
            index = store.registry.peek_next()
            time = self._txns.assign_time(t)
            args = {"name": name, "index": index, "time": time}
            self._mutate(t, "intern_attribute", args)
            return index

    def get_attribute_values(self, attribute: AttributeIndex,
                             time: Time = CURRENT) -> list[str]:
        """``getAttributeValues``: all values of an attribute at ``time``.

        Aggregated across every node and link alive at ``time``.
        """
        values: set[str] = set()
        for node in self._store.live_nodes(time):
            value = node.attributes.value_at(attribute, time, default=None)
            if value is not None:
                values.add(value)
        for link in self._store.live_links(time):
            value = link.attributes.value_at(attribute, time, default=None)
            if value is not None:
                values.add(value)
        return sorted(values)

    # --- node attributes ---------------------------------------------

    def set_node_attribute_value(self, txn: Transaction | None = None, *,
                                 node: NodeIndex, attribute: AttributeIndex,
                                 value: str) -> None:
        """``setNodeAttributeValue``: set (versioned on archives)."""
        with self._in_txn(txn) as t:
            t.lock(("node", node), LockMode.EXCLUSIVE)
            store = self._store_for(t)
            record = store.node(node)
            record.require_alive()
            name = store.registry.name_of(attribute)
            time = self._txns.assign_time(t)
            args = {"node": node, "attribute": attribute, "value": value,
                    "time": time}
            self._mutate(t, "set_node_attribute", args)
            t.writeset.queue_index("set", node, name, value)
            self._fire_demons(EventKind.SET_ATTRIBUTE, time, node=node,
                              txn=t, detail={"attribute": name,
                                             "value": value})

    def delete_node_attribute(self, txn: Transaction | None = None, *,
                              node: NodeIndex,
                              attribute: AttributeIndex) -> None:
        """``deleteNodeAttribute``: detach an attribute from a node."""
        with self._in_txn(txn) as t:
            t.lock(("node", node), LockMode.EXCLUSIVE)
            store = self._store_for(t)
            record = store.node(node)
            record.require_alive()
            name = store.registry.name_of(attribute)
            time = self._txns.assign_time(t)
            args = {"node": node, "attribute": attribute, "time": time}
            self._mutate(t, "delete_node_attribute", args)
            t.writeset.queue_index("delete", node, name)
            self._fire_demons(EventKind.DELETE_ATTRIBUTE, time, node=node,
                              txn=t, detail={"attribute": name})

    def get_node_attribute_value(self, node: NodeIndex,
                                 attribute: AttributeIndex,
                                 time: Time = CURRENT,
                                 txn: Transaction | None = None) -> str:
        """``getNodeAttributeValue``: one attribute value as of ``time``.

        Inside a write transaction, pass ``txn`` to see the
        transaction's own uncommitted value; a pinned read-only
        transaction resolves ``CURRENT`` to its watermark.
        """
        pinned = self._snapshot_time(txn)
        if pinned is not None and time == CURRENT:
            time = pinned
        record = self._store_for(txn).node(node)
        return record.attributes.value_at(attribute, time)

    def get_node_attributes(self, node: NodeIndex, time: Time = CURRENT,
                            ) -> list[tuple[str, AttributeIndex, str]]:
        """``getNodeAttributes``: every (name, index, value) at ``time``."""
        record = self._store.node(node)
        return sorted(
            (self._store.registry.name_of(index), index, value)
            for index, value in record.attributes.all_at(time).items()
        )

    # --- link attributes -----------------------------------------------

    def set_link_attribute_value(self, txn: Transaction | None = None, *,
                                 link: LinkIndex, attribute: AttributeIndex,
                                 value: str) -> None:
        """``setLinkAttributeValue``: set (versioned) on a link."""
        with self._in_txn(txn) as t:
            t.lock(("link", link), LockMode.EXCLUSIVE)
            store = self._store_for(t)
            record = store.link(link)
            record.require_alive()
            store.registry.name_of(attribute)  # must exist
            time = self._txns.assign_time(t)
            args = {"link": link, "attribute": attribute, "value": value,
                    "time": time}
            self._mutate(t, "set_link_attribute", args)

    def delete_link_attribute(self, txn: Transaction | None = None, *,
                              link: LinkIndex,
                              attribute: AttributeIndex) -> None:
        """``deleteLinkAttribute``: detach an attribute from a link."""
        with self._in_txn(txn) as t:
            t.lock(("link", link), LockMode.EXCLUSIVE)
            record = self._store_for(t).link(link)
            record.require_alive()
            time = self._txns.assign_time(t)
            args = {"link": link, "attribute": attribute, "time": time}
            self._mutate(t, "delete_link_attribute", args)

    def get_link_attribute_value(self, link: LinkIndex,
                                 attribute: AttributeIndex,
                                 time: Time = CURRENT) -> str:
        """``getLinkAttributeValue``: one attribute value as of ``time``."""
        record = self._store.link(link)
        return record.attributes.value_at(attribute, time)

    def get_link_attributes(self, link: LinkIndex, time: Time = CURRENT,
                            ) -> list[tuple[str, AttributeIndex, str]]:
        """``getLinkAttributes``: every (name, index, value) at ``time``."""
        record = self._store.link(link)
        return sorted(
            (self._store.registry.name_of(index), index, value)
            for index, value in record.attributes.all_at(time).items()
        )

    # ==================================================================
    # Demon operations (Appendix A.5)

    def set_graph_demon_value(self, txn: Transaction | None = None, *,
                              event: EventKind,
                              demon: str | None) -> None:
        """``setGraphDemonValue``: (versioned) graph-level demon binding.

        ``demon=None`` disables the demon for ``event``.
        """
        with self._in_txn(txn) as t:
            t.lock(_GRAPH_RESOURCE, LockMode.EXCLUSIVE)
            time = self._txns.assign_time(t)
            args = {"event": event.value, "demon": demon, "time": time}
            self._mutate(t, "set_graph_demon", args)

    def get_graph_demons(self, time: Time = CURRENT,
                         ) -> list[tuple[EventKind, str]]:
        """``getGraphDemons``: active (event, demon) pairs at ``time``."""
        return self._store.graph_demons.demons_at(time)

    def set_node_demon(self, txn: Transaction | None = None, *,
                       node: NodeIndex, event: EventKind,
                       demon: str | None) -> None:
        """``setNodeDemon``: (versioned) node-level demon binding."""
        with self._in_txn(txn) as t:
            t.lock(("node", node), LockMode.EXCLUSIVE)
            self._store_for(t).node(node).require_alive()
            time = self._txns.assign_time(t)
            args = {"node": node, "event": event.value, "demon": demon,
                    "time": time}
            self._mutate(t, "set_node_demon", args)

    def get_node_demons(self, node: NodeIndex, time: Time = CURRENT,
                        ) -> list[tuple[EventKind, str]]:
        """``getNodeDemons``: active (event, demon) pairs at ``time``."""
        table = self._store.node_demons.get(node)
        if table is None:
            return []
        return table.demons_at(time)

    # ==================================================================
    # attribute index upkeep

    def _rebuild_index(self) -> None:
        assert self._index is not None
        registry = self._store.registry
        for node in self._store.live_nodes(CURRENT):
            for index, value in node.attributes.all_at(CURRENT).items():
                name = registry.name_of(index)
                self._index.set_value(node.index, name, value)
                if self._stats is not None:
                    self._stats.set_value(node.index, name, value)

    # ==================================================================
    # Appendix-style camelCase aliases

    createGraph = create_graph
    destroyGraph = destroy_graph
    openGraph = open_graph
    addNode = add_node
    deleteNode = delete_node
    addLink = add_link
    copyLink = copy_link
    deleteLink = delete_link
    linearizeGraph = linearize_graph
    getGraphQuery = get_graph_query
    explainQuery = explain_query
    openNode = open_node
    modifyNode = modify_node
    getNodeTimeStamp = get_node_timestamp
    changeNodeProtection = change_node_protection
    getNodeVersions = get_node_versions
    getNodeDifferences = get_node_differences
    getToNode = get_to_node
    getFromNode = get_from_node
    linksFrom = links_from
    linksTo = links_to
    getAttributes = get_attributes
    getAttributeValues = get_attribute_values
    getAttributeIndex = get_attribute_index
    setNodeAttributeValue = set_node_attribute_value
    deleteNodeAttribute = delete_node_attribute
    getNodeAttributeValue = get_node_attribute_value
    getNodeAttributes = get_node_attributes
    setLinkAttributeValue = set_link_attribute_value
    deleteLinkAttribute = delete_link_attribute
    getLinkAttributeValue = get_link_attribute_value
    getLinkAttributes = get_link_attributes
    setGraphDemonValue = set_graph_demon_value
    getGraphDemons = get_graph_demons
    setNodeDemon = set_node_demon
    getNodeDemons = get_node_demons


# Route every Appendix operation (snake_case and camelCase alias alike)
# through the instance's middleware chain.  With an empty chain the
# wrappers fall straight through to the implementation.
install_local_dispatch(HAM)
