"""Application layers built on the HAM (paper §4).

"Typically, one or more application layers are built on top of the HAM
and a user interface layer is built on top of the application layers."

- :mod:`repro.apps.documents` — the generic documentation application:
  hierarchical documents, the bundled *annotate* command, cross
  references (§4.1 conventions).
- :mod:`repro.apps.case` — the CASE application for a Modula-2-style
  software project, using the attribute conventions of §4.2
  (``contentType``, ``codeType``, ``relation``).
- :mod:`repro.apps.compiler` — a toy incremental compiler wired to the
  HAM through demons: modifying a procedure node recompiles just that
  procedure (§4.2's "unit of incrementality").
- :mod:`repro.apps.publishing` — hardcopy extraction: ``linearizeGraph``
  flattens a document hierarchy to numbered text.
"""

from repro.apps.documents import DocumentApplication, DocumentHandle
from repro.apps.case import CaseApplication, ModuleKind
from repro.apps.compiler import IncrementalCompiler, CompilationResult
from repro.apps.publishing import render_hardcopy, HardcopyOptions
from repro.apps.trails import Trail, TrailRecorder
from repro.apps.configurations import ConfigurationManager

__all__ = [
    "ConfigurationManager",
    "DocumentApplication",
    "DocumentHandle",
    "CaseApplication",
    "ModuleKind",
    "IncrementalCompiler",
    "CompilationResult",
    "render_hardcopy",
    "HardcopyOptions",
    "Trail",
    "TrailRecorder",
]
