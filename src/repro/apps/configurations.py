"""Configuration management over pinned links (paper §3 and §5).

§3: a link attachment "may refer to a particular version of a node …
The former mechanism is a useful primitive for building a configuration
manager."  §5 adds that contexts serve "for configuration management"
too.  This module builds that manager:

A *configuration* is a named, frozen snapshot of a set of nodes at
specific versions — a release, a baseline, a tape that went to
manufacturing.  It is represented **in the hypertext** as a
configuration node whose out-links are *pinned* (``LinkPt.time`` set,
``track_current=False``) to the member versions, exactly the primitive
the paper names.  Because the configuration is ordinary hypertext, it
versions, queries, and browses like everything else.

Operations:

- :meth:`ConfigurationManager.freeze` — pin the current (or any) version
  of each member under a new configuration node;
- :meth:`ConfigurationManager.members` — resolve a configuration back to
  ``(node, pinned time)`` pairs;
- :meth:`ConfigurationManager.checkout` — read every member's contents
  *as configured*, regardless of later edits;
- :meth:`ConfigurationManager.diff` — what changed between two
  configurations (members added/removed/repinned);
- :meth:`ConfigurationManager.drift` — members whose current version has
  moved past the configured pin (the "what changed since the release"
  question).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps._txn import in_txn
from repro.core.ham import HAM
from repro.core.types import LinkPt, NodeIndex, Time
from repro.errors import NeptuneError

__all__ = ["ConfigurationManager", "ConfigurationDiff"]

#: contentType value marking configuration nodes.
CONFIGURATION_CONTENT_TYPE = "configuration"
#: relation value on pinned membership links.
MEMBER_RELATION = "configures"


@dataclass(frozen=True)
class ConfigurationDiff:
    """Membership changes between two configurations."""

    added: tuple[NodeIndex, ...]
    removed: tuple[NodeIndex, ...]
    #: (node, old pinned time, new pinned time)
    repinned: tuple[tuple[NodeIndex, Time, Time], ...]

    @property
    def identical(self) -> bool:
        """True when the two configurations pin exactly the same set."""
        return not (self.added or self.removed or self.repinned)


class ConfigurationManager:
    """Creates and resolves frozen configurations in a HAM graph."""

    def __init__(self, ham: HAM):
        self.ham = ham

    # ------------------------------------------------------------------
    # creation

    def freeze(self, name: str,
               members: list[NodeIndex] | dict[NodeIndex, Time],
               description: str = "", txn=None) -> NodeIndex:
        """Create a configuration pinning ``members``.

        A list pins every member at its *current* version; a dict pins
        each at the given time.  Returns the configuration node.
        """
        if isinstance(members, dict):
            pins = dict(members)
        else:
            pins = {node: self.ham.get_node_timestamp(node)
                    for node in members}
        if not pins:
            raise NeptuneError("a configuration needs at least one member")
        with in_txn(self.ham, txn) as t:
            config, time = self.ham.add_node(t)
            body = (f"configuration {name}\n{description}\n").encode()
            self.ham.modify_node(t, node=config, expected_time=time,
                                 contents=body,
                                 explanation=f"configuration {name!r}")
            content_type = self.ham.get_attribute_index("contentType", t)
            icon = self.ham.get_attribute_index("icon", t)
            relation = self.ham.get_attribute_index("relation", t)
            self.ham.set_node_attribute_value(
                t, node=config, attribute=content_type,
                value=CONFIGURATION_CONTENT_TYPE)
            self.ham.set_node_attribute_value(
                t, node=config, attribute=icon, value=name)
            for position, (node, pin_time) in enumerate(
                    sorted(pins.items())):
                link, __ = self.ham.add_link(
                    t, from_pt=LinkPt(config, position=position),
                    to_pt=LinkPt(node, position=0, time=pin_time,
                                 track_current=False))
                self.ham.set_link_attribute_value(
                    t, link=link, attribute=relation,
                    value=MEMBER_RELATION)
            # Record when the configuration was complete, so membership
            # resolves as-of this time even if members (and their
            # cascading links) are deleted later — the frozen set is
            # immutable by definition.
            frozen_at = self.ham.get_attribute_index("frozenAt", t)
            self.ham.set_node_attribute_value(
                t, node=config, attribute=frozen_at,
                value=str(self.ham.now))
            return config

    # ------------------------------------------------------------------
    # resolution

    def configurations(self) -> list[NodeIndex]:
        """Every configuration node in the graph."""
        return self.ham.get_graph_query(
            node_predicate=(
                f"contentType = {CONFIGURATION_CONTENT_TYPE}")
        ).node_indexes

    def name_of(self, config: NodeIndex) -> str:
        """The configuration's icon name."""
        icon = self.ham.get_attribute_index("icon")
        return self.ham.get_node_attribute_value(config, icon)

    def members(self, config: NodeIndex) -> dict[NodeIndex, Time]:
        """``node → pinned version time`` for a configuration.

        Resolved as of the freeze time, so later deletion of a member
        (which cascades to its links, per ``deleteNode``) cannot mutate
        the frozen set.
        """
        self._require_configuration(config)
        frozen_attr = self.ham.get_attribute_index("frozenAt")
        frozen_at = int(self.ham.get_node_attribute_value(
            config, frozen_attr))
        __, link_points, ___, ____ = self.ham.open_node(
            config, time=frozen_at)
        pins: dict[NodeIndex, Time] = {}
        for link_index, end, __ in link_points:
            if end != "from":
                continue
            attrs = {name: value for name, ___, value
                     in self.ham.get_link_attributes(link_index,
                                                     frozen_at)}
            if attrs.get("relation") != MEMBER_RELATION:
                continue
            node, pin_time = self.ham.get_to_node(link_index, frozen_at)
            pins[node] = pin_time
        return pins

    def checkout(self, config: NodeIndex) -> dict[NodeIndex, bytes]:
        """Every member's contents at its pinned version."""
        return {
            node: self.ham.open_node(node, time=pin_time)[0]
            for node, pin_time in self.members(config).items()
        }

    # ------------------------------------------------------------------
    # comparison

    def diff(self, old: NodeIndex, new: NodeIndex) -> ConfigurationDiff:
        """Membership/pin changes from ``old`` to ``new``."""
        old_pins = self.members(old)
        new_pins = self.members(new)
        added = tuple(sorted(set(new_pins) - set(old_pins)))
        removed = tuple(sorted(set(old_pins) - set(new_pins)))
        repinned = tuple(
            (node, old_pins[node], new_pins[node])
            for node in sorted(set(old_pins) & set(new_pins))
            if old_pins[node] != new_pins[node]
        )
        return ConfigurationDiff(added, removed, repinned)

    def drift(self, config: NodeIndex) -> list[tuple[NodeIndex, Time, Time]]:
        """Members whose current version moved past the pin:
        ``(node, pinned time, current time)`` rows."""
        drifted = []
        for node, pin_time in sorted(self.members(config).items()):
            current = self.ham.get_node_timestamp(node)
            if current != pin_time:
                drifted.append((node, pin_time, current))
        return drifted

    def _require_configuration(self, config: NodeIndex) -> None:
        content_type = self.ham.get_attribute_index("contentType")
        attrs = {name: value for name, __, value
                 in self.ham.get_node_attributes(config)}
        if attrs.get("contentType") != CONFIGURATION_CONTENT_TYPE:
            raise NeptuneError(
                f"node {config} is not a configuration node")
