"""A toy incremental Modula-2 compiler driven by demons (paper §4.2/§5).

§5's demon use cases include "invoking an incremental compiler when a
node which contains code is modified"; §4.2: "a compiler may be able to
recompile a changed procedure individually, that is without recompiling
the entire module that contains the procedure … the unit of
incrementality of the compiler should be used to determine what syntactic
code fragment the source code nodes represent."

The "compiler" here is deliberately simple but real enough to measure:
it tokenizes the source, builds a symbol table of declared identifiers
(PROCEDURE/VAR/CONST declarations), and emits deterministic "object
code" (a stack-machine-ish listing plus a content digest).  What matters
for the reproduction is the *shape*: incremental recompilation touches
one procedure node; full recompilation touches every source node of the
module — benchmark B9 measures the gap.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass

from repro.apps.case import CaseApplication, ModuleHandle
from repro.core.demons import DemonEvent, EventKind
from repro.core.ham import HAM
from repro.core.types import NodeIndex

__all__ = ["IncrementalCompiler", "CompilationResult", "compile_source"]

_IDENT = re.compile(r"\b(PROCEDURE|VAR|CONST)\s+([A-Za-z][A-Za-z0-9_]*)")
_CALL = re.compile(r"\b([A-Za-z][A-Za-z0-9_]*)\s*\(")


@dataclass(frozen=True)
class CompilationResult:
    """Output of compiling one source fragment."""

    object_code: bytes
    symbol_table: bytes
    symbols: tuple[str, ...]
    calls: tuple[str, ...]


def compile_source(source: bytes) -> CompilationResult:
    """Deterministically "compile" a source fragment."""
    text = source.decode("utf-8", errors="replace")
    symbols = tuple(name for __, name in _IDENT.findall(text))
    calls = tuple(sorted({name for name in _CALL.findall(text)
                          if name not in symbols}))
    digest = hashlib.sha256(source).hexdigest()[:16]
    listing = "\n".join(
        [f"; object code {digest}"]
        + [f"DEF {name}" for name in symbols]
        + [f"CALL {name}" for name in calls]
    ).encode() + b"\n"
    table = "\n".join(
        f"{name} PROC" for name in symbols).encode() + b"\n"
    return CompilationResult(listing, table, symbols, calls)


@dataclass
class CompileLogEntry:
    """One recompilation event (for tests and benchmarks)."""

    node: NodeIndex
    incremental: bool


class IncrementalCompiler:
    """Watches source nodes through demons and recompiles on change."""

    def __init__(self, case: CaseApplication, incremental: bool = True):
        self.case = case
        self.ham: HAM = case.ham
        #: When False, a change recompiles the whole module (baseline).
        self.incremental = incremental
        self.log: list[CompileLogEntry] = []
        self._module_of: dict[NodeIndex, NodeIndex] = {}
        self._suspended = False

    # ------------------------------------------------------------------
    # wiring

    def demon_name(self) -> str:
        """The demon name this compiler registers under."""
        return f"incremental-compiler-{id(self)}"

    def watch_module(self, module: ModuleHandle) -> None:
        """Register demons on the module and its current procedures."""
        name = self.demon_name()
        if not self.ham.demons.registered(name):
            self.ham.demons.register(name, self._on_event)
        with self.ham.begin() as txn:
            self.ham.set_node_demon(
                txn, node=module.node, event=EventKind.MODIFY_NODE,
                demon=name)
            self._module_of[module.node] = module.node
            for procedure in self.case.procedures(module.node):
                self.ham.set_node_demon(
                    txn, node=procedure, event=EventKind.MODIFY_NODE,
                    demon=name)
                self._module_of[procedure] = module.node

    # ------------------------------------------------------------------
    # demon body

    def _on_event(self, event: DemonEvent) -> None:
        if self._suspended or event.node is None:
            return
        if event.node not in self._module_of:
            return
        # Recompiling modifies output nodes, which fires MODIFY_NODE
        # demons again; suppress re-entry for the duration.
        self._suspended = True
        txn = event.txn_handle  # join the event's transaction (see DemonEvent)
        try:
            if self.incremental:
                self._recompile_node(event.node, incremental=True, txn=txn)
            else:
                module = self._module_of[event.node]
                self._recompile_node(module, incremental=False, txn=txn)
                for procedure in self.case.procedures(module, txn=txn):
                    self._recompile_node(procedure, incremental=False,
                                         txn=txn)
        finally:
            self._suspended = False

    def _recompile_node(self, node: NodeIndex, incremental: bool,
                        txn=None) -> None:
        contents, __, ___, ____ = self.ham.open_node(node, txn=txn)
        result = compile_source(contents)
        self.case.attach_object_code(
            node, result.object_code, result.symbol_table, txn=txn)
        self.log.append(CompileLogEntry(node, incremental))

    # ------------------------------------------------------------------
    # direct invocation (initial build)

    def build_module(self, module: ModuleHandle) -> int:
        """Compile the module and all procedures; returns fragment count."""
        self._suspended = True
        try:
            fragments = [module.node] + self.case.procedures(module.node)
            for node in fragments:
                self._recompile_node(node, incremental=False)
            return len(fragments)
        finally:
            self._suspended = False

    @property
    def recompilations(self) -> int:
        """Total fragments compiled so far."""
        return len(self.log)
