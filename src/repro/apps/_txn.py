"""Transaction scoping helper shared by the application layers.

Applications accept an optional caller transaction (so several commands
can be bundled into one unit, like the paper's *annotate*); when none is
given they open, commit, and on error abort their own.  Works with both
the in-process :class:`repro.core.ham.HAM` and the RPC
:class:`repro.server.client.RemoteHAM`, which share begin/commit/abort.
"""

from __future__ import annotations

from contextlib import contextmanager

__all__ = ["in_txn"]


@contextmanager
def in_txn(ham, txn=None, read_only: bool = False):
    """Yield ``txn`` if given, else a fresh transaction managed here."""
    if txn is not None:
        yield txn
        return
    owned = ham.begin(read_only=read_only)
    try:
        yield owned
    except BaseException:
        owned.abort()
        raise
    else:
        owned.commit()
