"""The generic documentation application layer (paper §4.1).

Conventions (all plain HAM attributes — the application owns the
semantics, exactly as §3 prescribes):

- node ``icon`` — the display name browsers use for the node;
- node ``document`` — which document the node belongs to;
- node ``contentType`` — ``text`` unless the caller says otherwise;
- link ``relation`` — ``isPartOf`` for structure, ``annotates`` for
  annotations, ``references`` for cross references.

Structure links run parent → child with the *from* endpoint's offset
placing the child within the parent ("This structure can be directly
expressed in hypertext by using a node to represent each section …with
links connecting each node to its immediate descendent sections").
Because ``linearizeGraph`` orders out-links by offset, children linearize
in offset order — which is how the whole document prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps._txn import in_txn
from repro.core.ham import HAM
from repro.core.types import CURRENT, LinkIndex, LinkPt, NodeIndex, Time
from repro.txn.manager import Transaction

__all__ = ["DocumentApplication", "DocumentHandle",
           "RELATION", "IS_PART_OF", "ANNOTATES", "REFERENCES"]

#: Link attribute naming the relationship a link denotes (§4.2).
RELATION = "relation"
IS_PART_OF = "isPartOf"
ANNOTATES = "annotates"
REFERENCES = "references"


@dataclass(frozen=True)
class DocumentHandle:
    """A created document: its root node and name."""

    root: NodeIndex
    name: str


class DocumentApplication:
    """Hierarchical documents over a HAM (local or remote)."""

    def __init__(self, ham: HAM):
        self.ham = ham

    # ------------------------------------------------------------------
    # attribute plumbing

    def _attr(self, name: str, txn: Transaction | None = None) -> int:
        return self.ham.get_attribute_index(name, txn)

    def _set_node_attrs(self, txn, node: NodeIndex, **attrs: str) -> None:
        for name, value in attrs.items():
            self.ham.set_node_attribute_value(
                txn, node=node, attribute=self._attr(name, txn), value=value)

    # ------------------------------------------------------------------
    # document construction

    def create_document(self, name: str,
                        txn: Transaction | None = None) -> DocumentHandle:
        """Create a document root node carrying the conventions."""
        with in_txn(self.ham, txn) as t:
            root, time = self.ham.add_node(t)
            self.ham.modify_node(
                t, node=root, expected_time=time,
                contents=name.encode() + b"\n",
                explanation=f"document {name!r} created")
            self._set_node_attrs(t, root, icon=name, document=name,
                                 contentType="text")
            return DocumentHandle(root, name)

    def add_section(self, document: DocumentHandle, parent: NodeIndex,
                    title: str, contents: bytes = b"",
                    offset: int | None = None,
                    txn: Transaction | None = None) -> NodeIndex:
        """Add a section under ``parent``; returns the new node.

        ``offset`` positions the child within the parent's contents (and
        therefore within the linearized document); by default children
        append after the last existing structure link.
        """
        with in_txn(self.ham, txn) as t:
            node, time = self.ham.add_node(t)
            body = title.encode() + b"\n" + bytes(contents)
            self.ham.modify_node(
                t, node=node, expected_time=time, contents=body,
                explanation=f"section {title!r} created")
            self._set_node_attrs(t, node, icon=title,
                                 document=document.name,
                                 contentType="text")
            if offset is None:
                offset = self._next_child_offset(parent, txn=t)
            link, __ = self.ham.add_link(
                t, from_pt=LinkPt(parent, position=offset),
                to_pt=LinkPt(node))
            self.ham.set_link_attribute_value(
                t, link=link, attribute=self._attr(RELATION, t),
                value=IS_PART_OF)
            return node

    def _next_child_offset(self, parent: NodeIndex, txn=None) -> int:
        """One past the highest structure-link offset under ``parent``.

        The first child attaches at the end of the parent's contents, so
        link icons render after the text rather than inside the title.
        """
        contents, link_points, __, ___ = self.ham.open_node(parent, txn=txn)
        highest = -1
        for __, end, pt in link_points:
            if end == "from":
                highest = max(highest, pt.position)
        if highest < 0:
            return len(contents)
        return highest + 1

    # ------------------------------------------------------------------
    # the bundled commands of §4.1

    def annotate(self, node: NodeIndex, position: int, text: str,
                 txn: Transaction | None = None,
                 ) -> tuple[NodeIndex, LinkIndex]:
        """The *annotate* command: "creates a new node, creates a link
        from the current cursor position to the new node, attaches
        attribute values that distinguish the new node and link as an
        annotation" — one transaction.
        """
        with in_txn(self.ham, txn) as t:
            annotation, time = self.ham.add_node(t)
            self.ham.modify_node(
                t, node=annotation, expected_time=time,
                contents=text.encode(), explanation="annotation created")
            self._set_node_attrs(t, annotation, icon="annotation",
                                 contentType="text")
            link, __ = self.ham.add_link(
                t, from_pt=LinkPt(node, position=position),
                to_pt=LinkPt(annotation))
            self.ham.set_link_attribute_value(
                t, link=link, attribute=self._attr(RELATION, t),
                value=ANNOTATES)
            return annotation, link

    def cross_reference(self, from_node: NodeIndex, position: int,
                        to_node: NodeIndex,
                        txn: Transaction | None = None) -> LinkIndex:
        """Create a ``references`` link (a diversion a reader may follow)."""
        with in_txn(self.ham, txn) as t:
            link, __ = self.ham.add_link(
                t, from_pt=LinkPt(from_node, position=position),
                to_pt=LinkPt(to_node))
            self.ham.set_link_attribute_value(
                t, link=link, attribute=self._attr(RELATION, t),
                value=REFERENCES)
            return link

    # ------------------------------------------------------------------
    # reading

    def structure_predicate(self) -> str:
        """Link predicate selecting only the structural skeleton."""
        return f"{RELATION} = {IS_PART_OF}"

    def outline(self, document: DocumentHandle, time: Time = CURRENT,
                ) -> list[tuple[int, NodeIndex, str]]:
        """(depth, node, title) rows of the document tree, in order."""
        icon_attr = self.ham.get_attribute_index("icon")
        result = self.ham.linearize_graph(
            document.root, time,
            link_predicate=self.structure_predicate(),
            node_attributes=[icon_attr])
        depths = self._depths(document.root, result, time)
        return [
            (depths.get(index, 0), index, values[0] or f"node {index}")
            for index, values in result.nodes
        ]

    def _depths(self, root: NodeIndex, result, time: Time,
                ) -> dict[NodeIndex, int]:
        parent_of: dict[NodeIndex, NodeIndex] = {}
        for link_index, __ in result.links:
            from_node, ___ = self.ham.get_from_node(link_index, time)
            to_node, ___ = self.ham.get_to_node(link_index, time)
            parent_of.setdefault(to_node, from_node)
        depths = {root: 0}
        for index in result.node_indexes:
            if index in depths:
                continue
            chain = []
            cursor = index
            while cursor not in depths and cursor in parent_of:
                chain.append(cursor)
                cursor = parent_of[cursor]
            base = depths.get(cursor, 0)
            for hop, member in enumerate(reversed(chain), start=1):
                depths[member] = base + hop
        return depths

    def children(self, node: NodeIndex, time: Time = CURRENT,
                 ) -> list[NodeIndex]:
        """Immediate structural descendants of ``node``, in offset order.

        This is how the document browser fills each pane to the right
        (§4.1: "accessing the immediate descendents of the selected node
        … via the linearizeGraph HAM operation").
        """
        contents, link_points, __, ___ = self.ham.open_node(node, time)
        relation_attr = self.ham.get_attribute_index(RELATION)
        ordered: list[tuple[int, int]] = []
        for link_index, end, pt in link_points:
            if end != "from":
                continue
            value = self.ham.get_link_attribute_value(
                link_index, relation_attr, time) if self._has_attr(
                    link_index, relation_attr, time) else None
            if value != IS_PART_OF:
                continue
            ordered.append((pt.position, link_index))
        children = []
        for __, link_index in sorted(ordered):
            child, ___ = self.ham.get_to_node(link_index, time)
            children.append(child)
        return children

    def _has_attr(self, link: LinkIndex, attribute: int,
                  time: Time) -> bool:
        return any(index == attribute
                   for __, index, ___ in self.ham.get_link_attributes(
                       link, time))

    def annotations(self, node: NodeIndex, time: Time = CURRENT,
                    ) -> list[tuple[int, NodeIndex]]:
        """(position, annotation node) pairs attached to ``node``."""
        relation_attr = self.ham.get_attribute_index(RELATION)
        __, link_points, ___, ____ = self.ham.open_node(node, time)
        found = []
        for link_index, end, pt in link_points:
            if end != "from":
                continue
            if not self._has_attr(link_index, relation_attr, time):
                continue
            value = self.ham.get_link_attribute_value(
                link_index, relation_attr, time)
            if value == ANNOTATES:
                target, __ = self.ham.get_to_node(link_index, time)
                found.append((pt.position, target))
        return sorted(found)
