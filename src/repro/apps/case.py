"""The CASE application layer: a Modula-2 project database (paper §4.2).

Attribute conventions, verbatim from the paper:

- every node carries ``contentType`` — values include ``text``,
  ``graphics``, ``Modula-2 source code``, ``Modula-2 object code``,
  ``Modula-2 symbol table``;
- source nodes additionally carry ``codeType`` — ``definitionModule``,
  ``implementationModule``, or ``procedure``;
- every link carries ``relation`` — ``isPartOf``, ``annotates``,
  ``references``, ``compilesInto``, plus ``imports`` for Modula-2 import
  lists ("Associated with each import list in a module is a link that
  points to the node representing the module being imported");
- management attributes like ``responsible`` (which team member owns the
  node) support the §4.2 query examples.

Structure: "a program requires a directed graph to represent its static
structure.  Each module can be represented by a simple tree" — module
node at the root, procedure nodes as ``isPartOf`` children, ``imports``
links between modules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.apps._txn import in_txn
from repro.core.ham import HAM
from repro.core.types import CURRENT, LinkIndex, LinkPt, NodeIndex, Time

__all__ = ["CaseApplication", "ModuleKind", "ModuleHandle",
           "CONTENT_TYPE", "CODE_TYPE", "RELATION_VALUES"]

CONTENT_TYPE = "contentType"
CODE_TYPE = "codeType"
SOURCE_TYPE = "Modula-2 source code"
OBJECT_TYPE = "Modula-2 object code"
SYMBOL_TYPE = "Modula-2 symbol table"

#: Every ``relation`` value the CASE layer uses.
RELATION_VALUES = ("isPartOf", "annotates", "references", "compilesInto",
                   "imports")


class ModuleKind(enum.Enum):
    """The ``codeType`` of a module node."""

    DEFINITION = "definitionModule"
    IMPLEMENTATION = "implementationModule"


@dataclass(frozen=True)
class ModuleHandle:
    """A created module: its node, name, and kind."""

    node: NodeIndex
    name: str
    kind: ModuleKind


class CaseApplication:
    """A software-project database over a HAM."""

    def __init__(self, ham: HAM, project: str = "project"):
        self.ham = ham
        self.project = project

    # ------------------------------------------------------------------
    # plumbing

    def _attr(self, name: str, txn=None) -> int:
        return self.ham.get_attribute_index(name, txn)

    def _set(self, txn, node: NodeIndex, name: str, value: str) -> None:
        self.ham.set_node_attribute_value(
            txn, node=node, attribute=self._attr(name, txn), value=value)

    def _set_link(self, txn, link: LinkIndex, name: str, value: str) -> None:
        self.ham.set_link_attribute_value(
            txn, link=link, attribute=self._attr(name, txn), value=value)

    # ------------------------------------------------------------------
    # project construction

    def create_module(self, name: str, kind: ModuleKind,
                      source: bytes = b"", responsible: str = "",
                      txn=None) -> ModuleHandle:
        """Create a module node with the §4.2 conventions attached."""
        with in_txn(self.ham, txn) as t:
            node, time = self.ham.add_node(t)
            header = f"MODULE {name};\n".encode()
            self.ham.modify_node(
                t, node=node, expected_time=time,
                contents=header + bytes(source),
                explanation=f"module {name} created")
            self._set(t, node, "icon", name)
            self._set(t, node, CONTENT_TYPE, SOURCE_TYPE)
            self._set(t, node, CODE_TYPE, kind.value)
            self._set(t, node, "document", self.project)
            if responsible:
                self._set(t, node, "responsible", responsible)
            return ModuleHandle(node, name, kind)

    def add_procedure(self, module: ModuleHandle, name: str,
                      source: bytes, responsible: str = "",
                      txn=None) -> NodeIndex:
        """Add a procedure node as an ``isPartOf`` child of its module.

        The procedure is the compiler's unit of incrementality (§4.2):
        one node per recompilable fragment.
        """
        with in_txn(self.ham, txn) as t:
            node, time = self.ham.add_node(t)
            self.ham.modify_node(
                t, node=node, expected_time=time, contents=bytes(source),
                explanation=f"procedure {name} created")
            self._set(t, node, "icon", name)
            self._set(t, node, CONTENT_TYPE, SOURCE_TYPE)
            self._set(t, node, CODE_TYPE, "procedure")
            self._set(t, node, "document", self.project)
            if responsible:
                self._set(t, node, "responsible", responsible)
            offset = len(self.procedures(module.node, txn=t))
            link, __ = self.ham.add_link(
                t, from_pt=LinkPt(module.node, position=offset),
                to_pt=LinkPt(node))
            self._set_link(t, link, "relation", "isPartOf")
            return node

    def import_module(self, importer: ModuleHandle,
                      imported: ModuleHandle, txn=None) -> LinkIndex:
        """Record an import: a link from importer to imported module."""
        with in_txn(self.ham, txn) as t:
            link, __ = self.ham.add_link(
                t, from_pt=LinkPt(importer.node),
                to_pt=LinkPt(imported.node))
            self._set_link(t, link, "relation", "imports")
            return link

    def attach_object_code(self, source_node: NodeIndex,
                           object_code: bytes, symbol_table: bytes,
                           txn=None) -> tuple[NodeIndex, NodeIndex]:
        """Store compiler output: object-code and symbol-table nodes
        linked to the source via ``compilesInto`` (§4.2: "A compiler
        integrated with hypertext can use nodes for object code and
        symbol tables; links can be used to associate these objects with
        their source code").

        Re-invoked after a recompile, the same output nodes get new
        *versions* rather than new nodes.
        """
        with in_txn(self.ham, txn) as t:
            existing = self.compiled_outputs(source_node, txn=t)
            if existing is None:
                object_node, otime = self.ham.add_node(t)
                symbol_node, stime = self.ham.add_node(t)
                self._set(t, object_node, CONTENT_TYPE, OBJECT_TYPE)
                self._set(t, symbol_node, CONTENT_TYPE, SYMBOL_TYPE)
                self._set(t, object_node, "document", self.project)
                self._set(t, symbol_node, "document", self.project)
                for target in (object_node, symbol_node):
                    link, __ = self.ham.add_link(
                        t, from_pt=LinkPt(source_node),
                        to_pt=LinkPt(target))
                    self._set_link(t, link, "relation", "compilesInto")
            else:
                object_node, symbol_node = existing
                otime = self.ham.get_node_timestamp(object_node, txn=t)
                stime = self.ham.get_node_timestamp(symbol_node, txn=t)
            self.ham.modify_node(
                t, node=object_node, expected_time=otime,
                contents=object_code, explanation="recompiled")
            self.ham.modify_node(
                t, node=symbol_node, expected_time=stime,
                contents=symbol_table, explanation="recompiled")
            return object_node, symbol_node

    # ------------------------------------------------------------------
    # project queries (the §4.2 examples)

    def procedures(self, module_node: NodeIndex,
                   time: Time = CURRENT, txn=None) -> list[NodeIndex]:
        """Procedure nodes of a module, in offset order."""
        result = self.ham.linearize_graph(
            module_node, time, txn=txn,
            node_predicate=f"{CODE_TYPE} = procedure or "
                           f"{CODE_TYPE} = definitionModule or "
                           f"{CODE_TYPE} = implementationModule",
            link_predicate="relation = isPartOf")
        return [index for index in result.node_indexes
                if index != module_node]

    def compiled_outputs(self, source_node: NodeIndex, txn=None,
                         ) -> tuple[NodeIndex, NodeIndex] | None:
        """(object node, symbol-table node) for a source, if compiled."""
        content = self._attr(CONTENT_TYPE, txn)
        __, link_points, ___, ____ = self.ham.open_node(source_node,
                                                        txn=txn)
        object_node = symbol_node = None
        for link_index, end, __ in link_points:
            if end != "from":
                continue
            attrs = dict(
                (name, value) for name, ___, value
                in self.ham.get_link_attributes(link_index))
            if attrs.get("relation") != "compilesInto":
                continue
            target, __ = self.ham.get_to_node(link_index)
            kind = self.ham.get_node_attribute_value(target, content,
                                                     txn=txn)
            if kind == OBJECT_TYPE:
                object_node = target
            elif kind == SYMBOL_TYPE:
                symbol_node = target
        if object_node is None or symbol_node is None:
            return None
        return object_node, symbol_node

    def imports_of(self, module_node: NodeIndex,
                   time: Time = CURRENT) -> list[NodeIndex]:
        """Modules this module imports."""
        __, link_points, ___, ____ = self.ham.open_node(module_node, time)
        found = []
        for link_index, end, __ in link_points:
            if end != "from":
                continue
            attrs = dict(
                (name, value) for name, ___, value
                in self.ham.get_link_attributes(link_index, time))
            if attrs.get("relation") == "imports":
                target, __ = self.ham.get_to_node(link_index, time)
                found.append(target)
        return sorted(found)

    def importers_of(self, module_node: NodeIndex,
                     time: Time = CURRENT) -> list[NodeIndex]:
        """Modules that import this module (reverse dependency set)."""
        __, link_points, ___, ____ = self.ham.open_node(module_node, time)
        found = []
        for link_index, end, __ in link_points:
            if end != "to":
                continue
            attrs = dict(
                (name, value) for name, ___, value
                in self.ham.get_link_attributes(link_index, time))
            if attrs.get("relation") == "imports":
                source, __ = self.ham.get_from_node(link_index, time)
                found.append(source)
        return sorted(found)

    def nodes_responsible_to(self, member: str) -> list[NodeIndex]:
        """§4.2 management query: nodes owned by one team member."""
        return self.ham.get_graph_query(
            node_predicate=f'responsible = "{member}"').node_indexes

    def source_nodes(self, time: Time = CURRENT) -> list[NodeIndex]:
        """Every Modula-2 source node in the project."""
        return self.ham.get_graph_query(
            time,
            node_predicate=f'{CONTENT_TYPE} = "{SOURCE_TYPE}"'
        ).node_indexes
