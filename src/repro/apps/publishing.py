"""Hardcopy extraction (paper §4.2): linearize a document to text.

"The HAM's linearizeGraph operation can be used to extract a document
from the hypertext graph so that hardcopies can be produced."

The renderer walks the structural skeleton (``relation = isPartOf``),
numbers sections hierarchically (1, 1.1, 1.2, 2 …), and concatenates
node contents in traversal order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.documents import DocumentApplication
from repro.core.types import CURRENT, NodeIndex, Time

__all__ = ["render_hardcopy", "HardcopyOptions"]


@dataclass(frozen=True)
class HardcopyOptions:
    """Rendering knobs for :func:`render_hardcopy`."""

    number_sections: bool = True
    include_root_title: bool = True
    heading_separator: str = "\n"
    encoding: str = "utf-8"


def render_hardcopy(app: DocumentApplication, root: NodeIndex,
                    time: Time = CURRENT,
                    options: HardcopyOptions = HardcopyOptions()) -> str:
    """Flatten the document rooted at ``root`` into numbered text."""
    ham = app.ham
    lines: list[str] = []

    def body_of(node: NodeIndex) -> tuple[str, str]:
        contents, __, ___, ____ = ham.open_node(node, time)
        text = contents.decode(options.encoding, errors="replace")
        title, __, rest = text.partition("\n")
        return title.strip(), rest

    def walk(node: NodeIndex, numbering: list[int]) -> None:
        title, body = body_of(node)
        if numbering:
            label = ".".join(str(part) for part in numbering)
            heading = f"{label} {title}" if options.number_sections else title
        else:
            heading = title if options.include_root_title else ""
        if heading:
            lines.append(heading)
        if body.strip():
            lines.append(body.rstrip("\n"))
        lines.append(options.heading_separator.rstrip("\n"))
        for position, child in enumerate(app.children(node, time), start=1):
            walk(child, numbering + [position])

    walk(root, [])
    # Collapse the trailing separator noise.
    while lines and not lines[-1].strip():
        lines.pop()
    return "\n".join(lines) + "\n"
