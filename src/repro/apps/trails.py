"""Traversal trails: saved reading paths (paper §2.2).

"As a hypertext reader follows link after link … he or she may want to
keep a trail of which links were followed.  This trail allows other
readers to follow the same path and makes it easier to resume reading a
document after a diversion has been followed.  A capability for saving a
traversal history was a key component of Bush's memex."

A :class:`TrailRecorder` watches one reading session: every ``follow``
verifies the link really leaves the current node, opens the target, and
appends a step.  Trails are saved *into the hypertext itself* — a trail
node whose contents encode the steps and whose ``contentType`` is
``trail`` — so they version, query, and replicate like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps._txn import in_txn
from repro.core.ham import HAM
from repro.core.types import CURRENT, LinkIndex, NodeIndex, Time
from repro.errors import LinkNotFoundError, NeptuneError
from repro.storage.serializer import decode_value, encode_value

__all__ = ["Trail", "TrailStep", "TrailRecorder"]

#: The contentType value marking stored trail nodes.
TRAIL_CONTENT_TYPE = "trail"


@dataclass(frozen=True)
class TrailStep:
    """One hop of a trail: the link followed and the node reached."""

    link: LinkIndex | None  # None for the starting step
    node: NodeIndex

    def to_record(self) -> list:
        return [self.link, self.node]

    @classmethod
    def from_record(cls, record: list) -> "TrailStep":
        link, node = record
        return cls(link=link, node=node)


@dataclass(frozen=True)
class Trail:
    """A named, replayable reading path."""

    name: str
    steps: tuple[TrailStep, ...]

    @property
    def nodes(self) -> list[NodeIndex]:
        """The nodes visited, in order."""
        return [step.node for step in self.steps]

    def to_record(self) -> dict:
        return {"name": self.name,
                "steps": [step.to_record() for step in self.steps]}

    @classmethod
    def from_record(cls, record: dict) -> "Trail":
        return cls(name=record["name"],
                   steps=tuple(TrailStep.from_record(step)
                               for step in record["steps"]))


class TrailRecorder:
    """Records a reading session and saves/loads/replays trails."""

    def __init__(self, ham: HAM):
        self.ham = ham
        self._steps: list[TrailStep] = []
        self._current: NodeIndex | None = None

    # ------------------------------------------------------------------
    # recording

    @property
    def current_node(self) -> NodeIndex | None:
        """Where the reader is now (None before :meth:`start`)."""
        return self._current

    def start(self, node: NodeIndex) -> bytes:
        """Begin reading at ``node``; returns its contents."""
        contents, __, ___, ____ = self.ham.open_node(node)
        self._steps = [TrailStep(link=None, node=node)]
        self._current = node
        return contents

    def follow(self, link: LinkIndex) -> bytes:
        """Follow a link out of the current node; returns the target's
        contents.  The link must actually leave the current node."""
        if self._current is None:
            raise NeptuneError("start a trail before following links")
        from_node, __ = self.ham.get_from_node(link)
        if from_node != self._current:
            raise LinkNotFoundError(
                f"link {link} does not leave node {self._current}")
        target, __ = self.ham.get_to_node(link)
        contents, __, ___, ____ = self.ham.open_node(target)
        self._steps.append(TrailStep(link=link, node=target))
        self._current = target
        return contents

    def back(self) -> NodeIndex:
        """Step back to the previous node (resuming after a diversion)."""
        if len(self._steps) < 2:
            raise NeptuneError("nowhere to go back to")
        self._steps.pop()
        self._current = self._steps[-1].node
        return self._current

    def trail(self, name: str) -> Trail:
        """The session so far, as a named trail."""
        return Trail(name=name, steps=tuple(self._steps))

    # ------------------------------------------------------------------
    # persistence in the hypertext

    def save(self, name: str, txn=None) -> NodeIndex:
        """Store the current session as a trail node; returns its index."""
        trail = self.trail(name)
        with in_txn(self.ham, txn) as t:
            node, time = self.ham.add_node(t)
            self.ham.modify_node(
                t, node=node, expected_time=time,
                contents=encode_value(trail.to_record()),
                explanation=f"trail {name!r} saved")
            content_type = self.ham.get_attribute_index("contentType", t)
            icon = self.ham.get_attribute_index("icon", t)
            self.ham.set_node_attribute_value(
                t, node=node, attribute=content_type,
                value=TRAIL_CONTENT_TYPE)
            self.ham.set_node_attribute_value(
                t, node=node, attribute=icon, value=name)
            return node

    def load(self, trail_node: NodeIndex, time: Time = CURRENT) -> Trail:
        """Load a trail stored by :meth:`save` (any version of it)."""
        contents, __, ___, ____ = self.ham.open_node(trail_node, time)
        record = decode_value(contents)
        if not isinstance(record, dict) or "steps" not in record:
            raise NeptuneError(
                f"node {trail_node} does not contain a trail")
        return Trail.from_record(record)

    def saved_trails(self) -> list[NodeIndex]:
        """Every trail node in the graph (a getGraphQuery)."""
        return self.ham.get_graph_query(
            node_predicate=f"contentType = {TRAIL_CONTENT_TYPE}"
        ).node_indexes

    # ------------------------------------------------------------------
    # replay

    def replay(self, trail: Trail, time: Time = CURRENT):
        """Yield ``(node, contents)`` along the trail — another reader
        following the same path (at any version of the hyperdocument)."""
        for step in trail.steps:
            contents, __, ___, ____ = self.ham.open_node(step.node, time)
            yield step.node, contents
