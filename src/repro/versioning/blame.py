"""Line provenance ("blame"): which version introduced each line.

The HAM keeps "complete version histories … at the granularity of
'writes' from a text editor" (§2.2); this walks a node's whole content
history and attributes every line of the requested version to the
check-in that introduced it — the review question a CAD/CASE team asks
constantly ("when did this requirement change, and with what
explanation?").

Built purely on public history operations plus the diff engine, so it
works on any archive node, local or remote.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ham import HAM
from repro.core.types import CURRENT, NodeIndex, Time
from repro.errors import VersionError
from repro.storage.diff import diff_sequences

__all__ = ["BlameLine", "blame", "render_blame"]

@dataclass(frozen=True)
class BlameLine:
    """One line of the blamed version with its provenance."""

    line: bytes
    introduced_at: Time
    explanation: str


def blame(ham: HAM, node: NodeIndex,
          time: Time = CURRENT) -> list[BlameLine]:
    """Per-line provenance of ``node``'s contents as of ``time``.

    Every line is tagged with the check-in time that introduced it (a
    line re-introduced identically after deletion counts as new from
    its re-introduction).  Requires an archive node — files keep no
    history to blame against.
    """
    major, __ = ham.get_node_versions(node)
    explanations = {version.time: version.explanation
                    for version in major}
    if time == CURRENT:
        cutoff = major[-1].time
    else:
        eligible = [version.time for version in major
                    if version.time <= time]
        if not eligible:
            raise VersionError(
                f"node {node} had no version at time {time}")
        cutoff = eligible[-1]

    tags: list[Time] = []
    previous_lines: list[bytes] = []
    for version in major:
        if version.time > cutoff:
            break
        contents = ham.open_node(node, time=version.time)[0]
        lines = contents.splitlines(keepends=True)
        if not tags and not previous_lines:
            tags = [version.time] * len(lines)
        else:
            script = diff_sequences(previous_lines, lines)
            new_tags: list[Time] = []
            cursor = 0
            for diff in script:
                new_tags.extend(tags[cursor:diff.position])
                cursor = diff.position + diff.old_length
                new_tags.extend([version.time] * diff.new_length)
            new_tags.extend(tags[cursor:])
            tags = new_tags
        previous_lines = lines
    return [
        BlameLine(line=line, introduced_at=tag,
                  explanation=explanations.get(tag, ""))
        for line, tag in zip(previous_lines, tags)
    ]


def render_blame(ham: HAM, node: NodeIndex, time: Time = CURRENT) -> str:
    """Human-readable blame listing, one annotated line per line."""
    rows = blame(ham, node, time)
    width = max((len(str(row.introduced_at)) for row in rows), default=1)
    lines = [f"blame of node {node}"]
    for row in rows:
        text = row.line.decode("utf-8", errors="replace").rstrip("\n")
        note = f" ({row.explanation})" if row.explanation else ""
        lines.append(f"  t={str(row.introduced_at).rjust(width)}{note:<24}"
                     f" | {text}")
    return "\n".join(lines)
