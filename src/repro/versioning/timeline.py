"""Re-export of :class:`repro.core.timeline.Timeline`.

The implementation lives in :mod:`repro.core.timeline` so that core
modules (attributes, links, demons) can use it without importing this
package's __init__ (which pulls in the HAM and would cycle).
"""

from repro.core.timeline import Timeline

__all__ = ["Timeline"]
