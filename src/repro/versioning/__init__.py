"""Version-history helpers layered over the delta store.

The heavy lifting of versioning lives in
:class:`repro.storage.deltas.DeltaStore` (contents) and the timeline
machinery inside :mod:`repro.core.attributes` / :mod:`repro.core.link`.
This package adds the cross-cutting views:

- :mod:`repro.versioning.timeline` — ordering and as-of lookups over
  heterogeneous version streams (re-export of the core Timeline).
- :mod:`repro.versioning.history` — assembling a node's combined
  major/minor history and graph-wide version summaries.
- :mod:`repro.versioning.blame` — per-line provenance over a node's
  whole content history.
"""

from repro.versioning.timeline import Timeline
from repro.versioning.history import (
    NodeHistory,
    node_history,
    graph_version_times,
)
from repro.versioning.blame import BlameLine, blame, render_blame

__all__ = [
    "Timeline",
    "NodeHistory",
    "node_history",
    "graph_version_times",
    "BlameLine",
    "blame",
    "render_blame",
]
