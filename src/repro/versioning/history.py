"""Cross-cutting version-history views.

The HAM answers per-object history questions (``getNodeVersions``,
``getNodeDifferences``); applications also need combined views — "show me
everything that happened to this node, in order" and "which graph-wide
times are addressable".  These helpers assemble those from the HAM's
primitives, and the version browser renders them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ham import HAM
from repro.core.types import NodeIndex, Time, Version

__all__ = ["NodeHistory", "node_history", "graph_version_times"]


@dataclass(frozen=True)
class NodeHistory:
    """Interleaved major/minor history of one node."""

    node: NodeIndex
    #: (version, is_major) pairs, oldest first.
    entries: tuple[tuple[Version, bool], ...]

    @property
    def major(self) -> list[Version]:
        """Content versions only."""
        return [version for version, is_major in self.entries if is_major]

    @property
    def minor(self) -> list[Version]:
        """Attribute/attachment updates only."""
        return [version for version, is_major in self.entries
                if not is_major]

    def render(self) -> str:
        """Human-readable listing, one event per line."""
        lines = [f"history of node {self.node}"]
        for version, is_major in self.entries:
            marker = "*" if is_major else "-"
            text = version.explanation or "(no explanation)"
            lines.append(f"  {marker} t={version.time:<6} {text}")
        return "\n".join(lines)


def node_history(ham: HAM, node: NodeIndex) -> NodeHistory:
    """Assemble the interleaved history of ``node`` from the HAM."""
    major, minor = ham.get_node_versions(node)
    entries = sorted(
        [(version, True) for version in major]
        + [(version, False) for version in minor],
        key=lambda pair: (pair[0].time, not pair[1]),
    )
    return NodeHistory(node, tuple(entries))


def graph_version_times(ham: HAM) -> list[Time]:
    """Every time at which *something* in the graph changed.

    The union of all nodes' major and minor version times plus link
    creation times — the addressable versions of the hypergraph ("rapid
    access to any version of a hypergraph", §3).
    """
    times: set[Time] = set()
    store = ham.store
    for node in store.nodes.values():
        times.add(node.created_at)
        if node.deleted_at is not None:
            times.add(node.deleted_at)
        times.update(node.content_version_times())
        times.update(version.time for version in node.minor_versions())
    for link in store.links.values():
        times.add(link.created_at)
        if link.deleted_at is not None:
            times.add(link.deleted_at)
    return sorted(times)
