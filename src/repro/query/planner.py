"""Cost-based query planning: predicate → normalized form → access plan.

The seed implementation made one binary choice per query — equality
conjuncts present → index probe, otherwise full scan.  This module
replaces that with a small planner:

1. **Normalize** the predicate: flatten nested ``And``/``Or``, push
   ``not`` through compounds by De Morgan, cancel double negation, and
   fold constants.  Negation is *never* pushed into a comparison
   (``not (a = x)`` is not ``a != x``: both are false when ``a`` is
   absent), so ``Not`` survives only above leaves.
2. **Plan access**: walk the normalized tree extracting an index
   strategy — equality, range, and presence probes for leaves,
   set intersection for ``And``, set union for ``Or`` (only when every
   arm is indexable; one unindexable arm forces the scan).  Each probe
   is a strict *superset* of the true matches, so the access path only
   prunes, never decides.
3. **Compile** the predicate for execution: attribute names resolve to
   registry indexes once, conjuncts are ordered cheapest-to-fail and
   disjuncts likeliest-to-hit using the commit-maintained
   :class:`~repro.query.stats.AttributeStatistics`, and the compiled
   tree evaluates directly against the ``{attribute index: value}``
   dicts the store hands out — no name materialization per row.

The residual predicate is always the *full* normalized predicate: the
access path narrows the candidate set, the residual decides membership.
That redundancy is deliberate — it keeps every plan trivially equivalent
to the naive evaluator (the differential suite's invariant) while the
pruning provides the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.attributes import AttributeRegistry
from repro.core.types import AttributeIndex, NodeIndex
from repro.query.evaluator import _compare
from repro.query.index import AttributeValueIndex
from repro.query.predicate import (
    And,
    CompareOp,
    Comparison,
    Exists,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.query.stats import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_PRESENCE_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    AttributeStatistics,
)

__all__ = ["CompiledPredicate", "QueryPlan", "compile_predicate",
           "normalize", "plan_query"]

_RANGE_OPS = (CompareOp.LT, CompareOp.LE, CompareOp.GT, CompareOp.GE)


# ----------------------------------------------------------------------
# normalization

def normalize(predicate: Predicate) -> Predicate:
    """Flatten, De Morgan, cancel double negation, fold constants.

    The result is semantically identical to the input for *every*
    attribute set, including the absent-attribute edge cases: negation
    is pushed through ``And``/``Or`` only, never into comparisons.
    """
    if isinstance(predicate, (TruePredicate, FalsePredicate,
                              Comparison, Exists)):
        return predicate
    if isinstance(predicate, Not):
        inner = predicate.operand
        if isinstance(inner, Not):
            return normalize(inner.operand)
        if isinstance(inner, And):
            return normalize(Or(*[Not(op) for op in inner.operands]))
        if isinstance(inner, Or):
            return normalize(And(*[Not(op) for op in inner.operands]))
        if isinstance(inner, TruePredicate):
            return FalsePredicate()
        if isinstance(inner, FalsePredicate):
            return TruePredicate()
        return Not(normalize(inner))
    if isinstance(predicate, (And, Or)):
        compound = type(predicate)
        absorbing, neutral = (
            (FalsePredicate, TruePredicate) if compound is And
            else (TruePredicate, FalsePredicate))
        flattened: list[Predicate] = []
        for operand in predicate.operands:
            operand = normalize(operand)
            if isinstance(operand, absorbing):
                return absorbing()
            if isinstance(operand, neutral):
                continue
            if isinstance(operand, compound):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        if not flattened:
            return neutral()
        if len(flattened) == 1:
            return flattened[0]
        return compound(*flattened)
    return predicate


# ----------------------------------------------------------------------
# selectivity estimation

def estimate_selectivity(predicate: Predicate,
                         stats: AttributeStatistics | None) -> float:
    """Estimated fraction of nodes satisfying ``predicate`` (0..1)."""
    if isinstance(predicate, TruePredicate):
        return 1.0
    if isinstance(predicate, FalsePredicate):
        return 0.0
    if isinstance(predicate, Comparison):
        if predicate.op is CompareOp.EQ:
            if stats is None:
                return DEFAULT_EQ_SELECTIVITY
            return stats.eq_selectivity(predicate.attribute, predicate.value)
        if predicate.op is CompareOp.NE:
            if stats is None:
                return DEFAULT_PRESENCE_SELECTIVITY
            return stats.ne_selectivity(predicate.attribute, predicate.value)
        if stats is None:
            return DEFAULT_RANGE_SELECTIVITY
        return stats.range_selectivity(
            predicate.attribute, predicate.op, predicate.value)
    if isinstance(predicate, Exists):
        if stats is None:
            return DEFAULT_PRESENCE_SELECTIVITY
        return stats.presence_selectivity(predicate.attribute)
    if isinstance(predicate, And):
        product = 1.0
        for operand in predicate.operands:
            product *= estimate_selectivity(operand, stats)
        return product
    if isinstance(predicate, Or):
        misses = 1.0
        for operand in predicate.operands:
            misses *= 1.0 - estimate_selectivity(operand, stats)
        return 1.0 - misses
    if isinstance(predicate, Not):
        return 1.0 - estimate_selectivity(predicate.operand, stats)
    return 1.0


# ----------------------------------------------------------------------
# compiled predicates

class CompiledPredicate:
    """A normalized predicate resolved for direct record evaluation.

    ``tree`` mirrors the AST as plain tuples with attribute *names*
    replaced by registry indexes (``None`` when the name was never
    interned — such a comparison/exists can only be false):

    - ``("true",)`` / ``("false",)``
    - ``("cmp", attribute_index | None, CompareOp, value)``
    - ``("exists", attribute_index | None)``
    - ``("and", (children…))`` — ordered cheapest-to-fail
    - ``("or", (children…))`` — ordered likeliest-to-hit
    - ``("not", child)``

    :meth:`matches` evaluates the tree against the
    ``{attribute index: value}`` dict a record's version store hands
    out, skipping per-row name resolution entirely.
    """

    __slots__ = ("predicate", "tree", "attributes", "ordered_attributes")

    def __init__(self, predicate: Predicate, tree: tuple,
                 attributes: frozenset[AttributeIndex]):
        #: The normalized source predicate (for rendering).
        self.predicate = predicate
        self.tree = tree
        #: Every registry index the tree references (batch columns).
        self.attributes = attributes
        #: The same indexes as a sorted tuple — the deterministic column
        #: order the batch evaluator probes attribute timelines in.
        self.ordered_attributes = tuple(sorted(attributes))

    def matches(self, attached: dict[AttributeIndex, str]) -> bool:
        """True when the attached-attribute dict satisfies the tree."""
        return _matches(self.tree, attached)

    def matches_record(self, attributes, time) -> bool:
        """Evaluate against a record's versioned attribute store.

        Probes only the timelines the tree references
        (:meth:`VersionedAttributes.values_at`) instead of materializing
        the record's full attached-attribute dict — same result as
        ``matches(attributes.all_at(time))`` for every predicate,
        because the tree can only inspect its own attributes.
        """
        ordered = self.ordered_attributes
        if not ordered:
            return _matches(self.tree, {})
        values = attributes.values_at(ordered, time)
        attached = {index: value
                    for index, value in zip(ordered, values)
                    if value is not None}
        return _matches(self.tree, attached)

    def __str__(self) -> str:
        return str(self.predicate)


def _matches(node: tuple, attached: dict[AttributeIndex, str]) -> bool:
    tag = node[0]
    if tag == "cmp":
        if node[1] is None:
            return False
        value = attached.get(node[1])
        if value is None:
            return False
        return _compare(node[2], value, node[3])
    if tag == "exists":
        return node[1] is not None and node[1] in attached
    if tag == "and":
        return all(_matches(child, attached) for child in node[1])
    if tag == "or":
        return any(_matches(child, attached) for child in node[1])
    if tag == "not":
        return not _matches(node[1], attached)
    return tag == "true"


def compile_predicate(
    predicate: Predicate,
    registry: AttributeRegistry,
    stats: AttributeStatistics | None = None,
) -> CompiledPredicate:
    """Normalize ``predicate`` and resolve it against ``registry``.

    With ``stats``, conjuncts are ordered by ascending estimated
    selectivity (cheapest to disprove first) and disjuncts by
    descending (likeliest to prove first); either way short-circuit
    evaluation touches as few attributes as the estimates allow.
    Ordering never changes results — only how fast they arrive.
    """
    normalized = normalize(predicate)
    attributes: set[AttributeIndex] = set()

    def build(node: Predicate) -> tuple:
        if isinstance(node, TruePredicate):
            return ("true",)
        if isinstance(node, FalsePredicate):
            return ("false",)
        if isinstance(node, Comparison):
            resolved = registry.lookup(node.attribute)
            if resolved is not None:
                attributes.add(resolved)
            return ("cmp", resolved, node.op, node.value)
        if isinstance(node, Exists):
            resolved = registry.lookup(node.attribute)
            if resolved is not None:
                attributes.add(resolved)
            return ("exists", resolved)
        if isinstance(node, Not):
            return ("not", build(node.operand))
        if isinstance(node, (And, Or)):
            descending = isinstance(node, Or)
            ordered = sorted(
                node.operands,
                key=lambda op: estimate_selectivity(op, stats),
                reverse=descending)
            tag = "and" if isinstance(node, And) else "or"
            return (tag, tuple(build(child) for child in ordered))
        raise TypeError(
            f"cannot compile predicate node {type(node).__name__}")

    return CompiledPredicate(normalized, build(normalized),
                             frozenset(attributes))


# ----------------------------------------------------------------------
# access paths

@dataclass(frozen=True)
class Probe:
    """One index probe: a superset fetch for a single leaf."""

    kind: str          # "eq" | "range" | "present"
    attribute: str
    op: CompareOp | None
    value: str | None
    estimate: float

    def fetch(self, index: AttributeValueIndex) -> set[NodeIndex]:
        if self.kind == "eq":
            return index.lookup(self.attribute, self.value)
        if self.kind == "range":
            return index.lookup_range(self.attribute, self.op, self.value)
        return index.lookup_present(self.attribute)

    def describe(self) -> str:
        if self.kind == "eq":
            detail = f'{self.attribute} = "{self.value}"'
        elif self.kind == "range":
            detail = f'{self.attribute} {self.op.value} "{self.value}"'
        else:
            detail = self.attribute
        return f"{self.kind}-probe {detail} (est {self.estimate:.3f})"


class AccessPath:
    """How candidate nodes are produced before residual evaluation."""

    #: Counter suffix for ``PLANNER`` (``shape_<shape>``).
    shape = "full_scan"

    def fetch(self, index: AttributeValueIndex) \
            -> tuple[set[NodeIndex] | None, int]:
        """(candidate superset or None for scan-everything, probes run)."""
        return None, 0

    def describe(self, indent: str = "") -> list[str]:
        return [indent + "full-scan"]


class FullScan(AccessPath):
    """No index help — every live node is a candidate."""


class EmptyScan(AccessPath):
    """The predicate is unsatisfiable — no candidates at all."""

    shape = "empty"

    def fetch(self, index):
        return set(), 0

    def describe(self, indent: str = "") -> list[str]:
        return [indent + "empty-scan"]


class SingleProbe(AccessPath):
    """One index probe covers the whole predicate's superset."""

    def __init__(self, probe: Probe):
        self.probe = probe
        self.shape = {"eq": "index_eq", "range": "index_range",
                      "present": "index_present"}[probe.kind]

    def fetch(self, index):
        return self.probe.fetch(index), 1

    def describe(self, indent: str = "") -> list[str]:
        return [indent + self.probe.describe()]


class IndexIntersect(AccessPath):
    """Conjunction: intersect member supersets, cheapest first."""

    shape = "index_intersect"

    def __init__(self, members: list[AccessPath]):
        #: Ordered by ascending estimate so the intersection shrinks
        #: fastest and empty intermediates short-circuit later probes.
        self.members = members

    def fetch(self, index):
        candidates: set[NodeIndex] | None = None
        probes = 0
        for member in self.members:
            hits, ran = member.fetch(index)
            probes += ran
            candidates = hits if candidates is None else candidates & hits
            if not candidates:
                break
        return candidates if candidates is not None else set(), probes

    def describe(self, indent: str = "") -> list[str]:
        lines = [indent + "index-intersect"]
        for member in self.members:
            lines.extend(member.describe(indent + "  "))
        return lines


class IndexUnion(AccessPath):
    """Disjunction: union arm supersets (every arm must be indexable)."""

    shape = "index_union"

    def __init__(self, arms: list[AccessPath]):
        self.arms = arms

    def fetch(self, index):
        candidates: set[NodeIndex] = set()
        probes = 0
        for arm in self.arms:
            hits, ran = arm.fetch(index)
            probes += ran
            candidates |= hits
        return candidates, probes

    def describe(self, indent: str = "") -> list[str]:
        lines = [indent + "index-union"]
        for arm in self.arms:
            lines.extend(arm.describe(indent + "  "))
        return lines


def _plan_access(predicate: Predicate,
                 stats: AttributeStatistics | None) -> AccessPath | None:
    """Index strategy whose fetch is a superset of the true matches.

    Returns ``None`` when no (sound) index use exists for this subtree.
    """
    if isinstance(predicate, FalsePredicate):
        return EmptyScan()
    if isinstance(predicate, Comparison):
        estimate = estimate_selectivity(predicate, stats)
        if predicate.op is CompareOp.EQ:
            return SingleProbe(Probe("eq", predicate.attribute, None,
                                     predicate.value, estimate))
        if predicate.op in _RANGE_OPS:
            return SingleProbe(Probe("range", predicate.attribute,
                                     predicate.op, predicate.value, estimate))
        # != matches only rows that carry the attribute at all.
        return SingleProbe(Probe("present", predicate.attribute, None,
                                 None, estimate))
    if isinstance(predicate, Exists):
        return SingleProbe(Probe("present", predicate.attribute, None, None,
                                 estimate_selectivity(predicate, stats)))
    if isinstance(predicate, And):
        members: list[tuple[float, AccessPath]] = []
        for operand in predicate.operands:
            path = _plan_access(operand, stats)
            if isinstance(path, EmptyScan):
                return EmptyScan()     # one unsatisfiable conjunct kills all
            if path is not None:
                members.append((estimate_selectivity(operand, stats), path))
        if not members:
            return None
        members.sort(key=lambda pair: pair[0])
        if len(members) == 1:
            return members[0][1]
        return IndexIntersect([path for __, path in members])
    if isinstance(predicate, Or):
        arms = []
        for operand in predicate.operands:
            path = _plan_access(operand, stats)
            if path is None:
                # One unindexable arm may match anything — scan.
                return None
            if isinstance(path, EmptyScan):
                continue
            arms.append(path)
        if not arms:
            return EmptyScan()
        if len(arms) == 1:
            return arms[0]
        return IndexUnion(arms)
    # Not / TruePredicate: the complement of an indexable set is not
    # indexable (absent rows have no postings), and True matches all.
    return None


# ----------------------------------------------------------------------
# plans

@dataclass
class QueryPlan:
    """Everything a query execution needs, plus its own explanation."""

    compiled: CompiledPredicate
    access: AccessPath
    shape: str
    estimate: float
    #: Whether the index was available to this plan at all (explain).
    indexed: bool = True
    link_compiled: CompiledPredicate | None = field(default=None)

    def fetch_candidates(self, index: AttributeValueIndex | None) \
            -> tuple[set[NodeIndex] | None, int]:
        """(candidate superset or None for full scan, probes executed)."""
        if index is None:
            if isinstance(self.access, EmptyScan):
                return set(), 0
            return None, 0
        return self.access.fetch(index)

    def explain(self) -> str:
        """Stable human-readable rendering of the plan."""
        lines = [f"plan shape={self.shape} "
                 f"estimated-selectivity={self.estimate:.3f}"]
        if self.indexed:
            lines.append("  access:")
            lines.extend(self.access.describe("    "))
        else:
            lines.append("  access:")
            lines.append("    full-scan (index unavailable)")
        lines.append(f"  residual: {self.compiled.predicate}")
        if self.link_compiled is not None:
            lines.append(f"  link-filter: {self.link_compiled.predicate}")
        return "\n".join(lines)


def plan_query(
    node_predicate: Predicate,
    registry: AttributeRegistry,
    stats: AttributeStatistics | None = None,
    indexed: bool = True,
    link_predicate: Predicate | None = None,
) -> QueryPlan:
    """Build the full plan for one ``getGraphQuery`` call.

    ``indexed=False`` (as-of-time query, index disabled, or a writer's
    uncommitted overlay in scope) forces the full-scan shape while the
    compiled residual — and therefore the results — stay identical.
    """
    compiled = compile_predicate(node_predicate, registry, stats)
    if indexed:
        access = _plan_access(compiled.predicate, stats) or FullScan()
    elif isinstance(compiled.predicate, FalsePredicate):
        # An unsatisfiable predicate needs no index to skip the scan.
        access = EmptyScan()
    else:
        access = FullScan()
    link_compiled = None
    if link_predicate is not None:
        link_compiled = compile_predicate(link_predicate, registry, stats)
    return QueryPlan(
        compiled=compiled,
        access=access,
        shape=access.shape,
        estimate=estimate_selectivity(compiled.predicate, stats),
        indexed=indexed,
        link_compiled=link_compiled,
    )
