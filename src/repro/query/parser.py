"""Recursive-descent parser for the predicate language.

Grammar (lowest to highest precedence)::

    predicate   := disjunction
    disjunction := conjunction ( "or" conjunction )*
    conjunction := unary ( "and" unary )*
    unary       := "not" unary | primary
    primary     := "(" predicate ")"
                 | "true" | "false"
                 | "exists" NAME
                 | NAME OP value
    value       := NAME | NUMBER | QUOTED_STRING
    OP          := "=" | "!=" | "<" | "<=" | ">" | ">="

Examples from the paper: ``document = requirements``;
richer forms: ``contentType = "Modula-2 source" and not codeType = procedure``.

Every :class:`~repro.errors.PredicateSyntaxError` raised here names the
character position and the offending fragment, so a browser user typing
a predicate into the shell sees *where* the parse failed, not just that
it did.
"""

from __future__ import annotations

import re

from repro.errors import PredicateSyntaxError
from repro.query.predicate import (
    And,
    CompareOp,
    Comparison,
    Exists,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    TruePredicate,
)

__all__ = ["parse_predicate"]

_TOKEN_RE = re.compile(
    r"""
    \s*(
        (?P<op>!=|<=|>=|=|<|>)
      | (?P<lparen>\()
      | (?P<rparen>\))
      | (?P<string>"(?:[^"\\]|\\.)*")
      | (?P<word>[A-Za-z0-9_.\-/]+)
    )
    """,
    re.VERBOSE,
)

_WHITESPACE_RE = re.compile(r"\s*")

_KEYWORDS = {"and", "or", "not", "true", "false", "exists"}

#: Token: (kind, value, position-in-source).
_Token = tuple[str, str, int]


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            start = _WHITESPACE_RE.match(text, position).end()
            if start >= len(text):
                break
            fragment = text[start:start + 10]
            if text[start] == '"':
                raise PredicateSyntaxError(
                    f"unterminated string starting at position {start}: "
                    f"{text[start:]!r}")
            raise PredicateSyntaxError(
                f"unexpected character at position {start}: {fragment!r}")
        start = match.start(1)
        position = match.end()
        for kind in ("op", "lparen", "rparen", "string", "word"):
            value = match.group(kind)
            if value is not None:
                if kind == "word" and value.lower() in _KEYWORDS:
                    tokens.append(("keyword", value.lower(), start))
                else:
                    tokens.append((kind, value, start))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token], source: str):
        self._tokens = tokens
        self._source = source
        self._position = 0

    def _peek(self) -> _Token | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self, expected: str) -> _Token:
        token = self._peek()
        if token is None:
            raise PredicateSyntaxError(
                f"expected {expected} but the predicate ended at position "
                f"{len(self._source)}: {self._source!r}")
        self._position += 1
        return token

    def _accept(self, kind: str, value: str | None = None) -> bool:
        token = self._peek()
        if token is None or token[0] != kind:
            return False
        if value is not None and token[1] != value:
            return False
        self._position += 1
        return True

    def _fail(self, expected: str, token: _Token) -> PredicateSyntaxError:
        __, value, position = token
        return PredicateSyntaxError(
            f"expected {expected} at position {position}, got {value!r}")

    def parse(self) -> Predicate:
        predicate = self._disjunction()
        token = self._peek()
        if token is not None:
            __, value, position = token
            raise PredicateSyntaxError(
                f"trailing input after predicate at position {position}: "
                f"{value!r}")
        return predicate

    def _disjunction(self) -> Predicate:
        operands = [self._conjunction()]
        while self._accept("keyword", "or"):
            operands.append(self._conjunction())
        return operands[0] if len(operands) == 1 else Or(*operands)

    def _conjunction(self) -> Predicate:
        operands = [self._unary()]
        while self._accept("keyword", "and"):
            operands.append(self._unary())
        return operands[0] if len(operands) == 1 else And(*operands)

    def _unary(self) -> Predicate:
        if self._accept("keyword", "not"):
            return Not(self._unary())
        return self._primary()

    def _primary(self) -> Predicate:
        open_paren = self._peek()
        if self._accept("lparen"):
            inner = self._disjunction()
            if not self._accept("rparen"):
                raise PredicateSyntaxError(
                    f"missing closing parenthesis for '(' at position "
                    f"{open_paren[2]} in {self._source!r}")
            return inner
        if self._accept("keyword", "true"):
            return TruePredicate()
        if self._accept("keyword", "false"):
            return FalsePredicate()
        if self._accept("keyword", "exists"):
            token = self._advance("an attribute name after 'exists'")
            if token[0] != "word":
                raise self._fail("an attribute name after 'exists'", token)
            return Exists(token[1])
        token = self._advance("an attribute name")
        if token[0] != "word":
            raise self._fail("an attribute name", token)
        name = token[1]
        token = self._advance(f"a comparison operator after {name!r}")
        if token[0] != "op":
            raise self._fail(f"a comparison operator after {name!r}", token)
        op_text = token[1]
        token = self._advance(f"a value after {name!r} {op_text!r}")
        kind, raw_value, __ = token
        if kind == "string":
            value = _unquote(raw_value)
        elif kind == "word":
            value = raw_value
        else:
            raise self._fail(f"a value after {name!r} {op_text!r}", token)
        return Comparison(name, CompareOp(op_text), value)


def _unquote(raw: str) -> str:
    body = raw[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


def parse_predicate(text: str | Predicate | None) -> Predicate:
    """Parse predicate text into an AST.

    Conveniences: ``None`` and empty/whitespace text parse to
    :class:`TruePredicate` (match everything), and an already-built
    :class:`Predicate` passes through — so every HAM query operand can
    accept text, AST, or nothing.
    """
    if text is None:
        return TruePredicate()
    if isinstance(text, Predicate):
        return text
    if not text.strip():
        return TruePredicate()
    return _Parser(_tokenize(text), text).parse()
