"""Recursive-descent parser for the predicate language.

Grammar (lowest to highest precedence)::

    predicate   := disjunction
    disjunction := conjunction ( "or" conjunction )*
    conjunction := unary ( "and" unary )*
    unary       := "not" unary | primary
    primary     := "(" predicate ")"
                 | "true" | "false"
                 | "exists" NAME
                 | NAME OP value
    value       := NAME | NUMBER | QUOTED_STRING
    OP          := "=" | "!=" | "<" | "<=" | ">" | ">="

Examples from the paper: ``document = requirements``;
richer forms: ``contentType = "Modula-2 source" and not codeType = procedure``.
"""

from __future__ import annotations

import re

from repro.errors import PredicateSyntaxError
from repro.query.predicate import (
    And,
    CompareOp,
    Comparison,
    Exists,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    TruePredicate,
)

__all__ = ["parse_predicate"]

_TOKEN_RE = re.compile(
    r"""
    \s*(
        (?P<op>!=|<=|>=|=|<|>)
      | (?P<lparen>\()
      | (?P<rparen>\))
      | (?P<string>"(?:[^"\\]|\\.)*")
      | (?P<word>[A-Za-z0-9_.\-/]+)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "true", "false", "exists"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise PredicateSyntaxError(
                f"unexpected character at {position}: {remainder[:10]!r}")
        position = match.end()
        for kind in ("op", "lparen", "rparen", "string", "word"):
            value = match.group(kind)
            if value is not None:
                if kind == "word" and value.lower() in _KEYWORDS:
                    tokens.append(("keyword", value.lower()))
                else:
                    tokens.append((kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], source: str):
        self._tokens = tokens
        self._source = source
        self._position = 0

    def _peek(self) -> tuple[str, str] | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise PredicateSyntaxError(
                f"unexpected end of predicate: {self._source!r}")
        self._position += 1
        return token

    def _accept(self, kind: str, value: str | None = None) -> bool:
        token = self._peek()
        if token is None or token[0] != kind:
            return False
        if value is not None and token[1] != value:
            return False
        self._position += 1
        return True

    def parse(self) -> Predicate:
        predicate = self._disjunction()
        if self._peek() is not None:
            kind, value = self._peek()
            raise PredicateSyntaxError(
                f"trailing input after predicate: {value!r}")
        return predicate

    def _disjunction(self) -> Predicate:
        operands = [self._conjunction()]
        while self._accept("keyword", "or"):
            operands.append(self._conjunction())
        return operands[0] if len(operands) == 1 else Or(*operands)

    def _conjunction(self) -> Predicate:
        operands = [self._unary()]
        while self._accept("keyword", "and"):
            operands.append(self._unary())
        return operands[0] if len(operands) == 1 else And(*operands)

    def _unary(self) -> Predicate:
        if self._accept("keyword", "not"):
            return Not(self._unary())
        return self._primary()

    def _primary(self) -> Predicate:
        if self._accept("lparen"):
            inner = self._disjunction()
            if not self._accept("rparen"):
                raise PredicateSyntaxError(
                    f"missing closing parenthesis in {self._source!r}")
            return inner
        if self._accept("keyword", "true"):
            return TruePredicate()
        if self._accept("keyword", "false"):
            return FalsePredicate()
        if self._accept("keyword", "exists"):
            kind, name = self._advance()
            if kind != "word":
                raise PredicateSyntaxError(
                    f"'exists' must be followed by an attribute name, "
                    f"got {name!r}")
            return Exists(name)
        kind, name = self._advance()
        if kind != "word":
            raise PredicateSyntaxError(
                f"expected an attribute name, got {name!r}")
        kind, op_text = self._advance()
        if kind != "op":
            raise PredicateSyntaxError(
                f"expected a comparison operator after {name!r}, "
                f"got {op_text!r}")
        kind, raw_value = self._advance()
        if kind == "string":
            value = _unquote(raw_value)
        elif kind == "word":
            value = raw_value
        else:
            raise PredicateSyntaxError(
                f"expected a value after operator, got {raw_value!r}")
        return Comparison(name, CompareOp(op_text), value)


def _unquote(raw: str) -> str:
    body = raw[1:-1]
    return body.replace('\\"', '"').replace("\\\\", "\\")


def parse_predicate(text: str | Predicate | None) -> Predicate:
    """Parse predicate text into an AST.

    Conveniences: ``None`` and empty/whitespace text parse to
    :class:`TruePredicate` (match everything), and an already-built
    :class:`Predicate` passes through — so every HAM query operand can
    accept text, AST, or nothing.
    """
    if text is None:
        return TruePredicate()
    if isinstance(text, Predicate):
        return text
    if not text.strip():
        return TruePredicate()
    return _Parser(_tokenize(text), text).parse()
