"""Predicate AST: boolean formulas over attribute/value pairs.

Appendix: "Predicate: a Boolean formula in terms of attributes and their
values."  The grammar (see :mod:`repro.query.parser`) supports equality
and ordering comparisons, existence tests, and ``and``/``or``/``not``
combinators, which covers the paper's examples
(``document = requirements``) and the CASE conventions of §4.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "CompareOp",
    "Predicate",
    "Comparison",
    "Exists",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "FalsePredicate",
]


class CompareOp(enum.Enum):
    """Comparison operators usable in predicates."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


class Predicate:
    """Base class for predicate AST nodes."""

    def to_record(self) -> list:
        """Encodable form (wire protocol / storage)."""
        raise NotImplementedError

    @staticmethod
    def from_record(record: list) -> "Predicate":
        """Rebuild a predicate from :meth:`to_record` output."""
        tag = record[0]
        if tag == "cmp":
            return Comparison(record[1], CompareOp(record[2]), record[3])
        if tag == "exists":
            return Exists(record[1])
        if tag == "and":
            return And(*[Predicate.from_record(r) for r in record[1]])
        if tag == "or":
            return Or(*[Predicate.from_record(r) for r in record[1]])
        if tag == "not":
            return Not(Predicate.from_record(record[1]))
        if tag == "true":
            return TruePredicate()
        if tag == "false":
            return FalsePredicate()
        raise ValueError(f"unknown predicate record tag {tag!r}")


@dataclass(frozen=True)
class Comparison(Predicate):
    """``attribute <op> value`` — e.g. ``document = requirements``."""

    attribute: str
    op: CompareOp
    value: str

    def to_record(self) -> list:
        return ["cmp", self.attribute, self.op.value, self.value]

    def __str__(self) -> str:
        escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
        return f'{self.attribute} {self.op.value} "{escaped}"'


@dataclass(frozen=True)
class Exists(Predicate):
    """``exists attribute`` — true when the attribute is attached."""

    attribute: str

    def to_record(self) -> list:
        return ["exists", self.attribute]

    def __str__(self) -> str:
        return f"exists {self.attribute}"


class _Compound(Predicate):
    """Shared machinery for And/Or."""

    _tag = ""

    def __init__(self, *operands: Predicate):
        if not operands:
            raise ValueError(f"{type(self).__name__} needs operands")
        self.operands = tuple(operands)

    def to_record(self) -> list:
        return [self._tag, [operand.to_record() for operand in self.operands]]

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.operands == other.operands

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.operands))

    def __str__(self) -> str:
        joiner = f" {self._tag} "
        return "(" + joiner.join(str(op) for op in self.operands) + ")"


class And(_Compound):
    """Conjunction of predicates."""

    _tag = "and"


class Or(_Compound):
    """Disjunction of predicates."""

    _tag = "or"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    operand: Predicate

    def to_record(self) -> list:
        return ["not", self.operand.to_record()]

    def __str__(self) -> str:
        return f"not {self.operand}"


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches everything (the default when no predicate is given)."""

    def to_record(self) -> list:
        return ["true"]

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalsePredicate(Predicate):
    """Matches nothing."""

    def to_record(self) -> list:
        return ["false"]

    def __str__(self) -> str:
        return "false"
