"""Predicate language and the HAM's two query mechanisms.

The paper (§3): "Two basic query mechanisms are supported by the HAM:
traversal and query.  The traversal mechanism, ``linearizeGraph``, starts
at a designated node and follows a depth-first traversal of out-links
ordered by the links' offsets within the node.  The associative query
mechanism, ``getGraphQuery``, directly accesses a set of nodes and their
interconnecting links.  Both of these mechanisms use predicates based on
attribute/value pairs to determine which nodes and links satisfy the
query."

- :mod:`repro.query.predicate` — the predicate AST.
- :mod:`repro.query.parser` — text → AST (``document = requirements``).
- :mod:`repro.query.evaluator` — AST × attribute set → bool.
- :mod:`repro.query.traversal` — ``linearizeGraph``.
- :mod:`repro.query.graph_query` — ``getGraphQuery``.
- :mod:`repro.query.index` — optional inverted attribute index with
  sorted value views (equality, range, and presence probes).
- :mod:`repro.query.stats` — commit-maintained attribute statistics.
- :mod:`repro.query.planner` — cost-based planning: normalization,
  compiled predicates, index access paths, ``explain()``.
- :mod:`repro.query.batch` — columnar batch evaluation of compiled
  predicates over candidate record sets.
"""

from repro.query.predicate import (
    Predicate,
    Comparison,
    Exists,
    And,
    Or,
    Not,
    TruePredicate,
    FalsePredicate,
    CompareOp,
)
from repro.query.parser import parse_predicate
from repro.query.evaluator import evaluate
from repro.query.traversal import linearize_graph, TraversalResult
from repro.query.graph_query import get_graph_query, QueryResult
from repro.query.index import AttributeValueIndex
from repro.query.stats import AttributeStatistics
from repro.query.planner import (
    CompiledPredicate,
    QueryPlan,
    compile_predicate,
    normalize,
    plan_query,
)
from repro.query.batch import batch_filter, batch_positions

__all__ = [
    "Predicate",
    "Comparison",
    "Exists",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "FalsePredicate",
    "CompareOp",
    "parse_predicate",
    "evaluate",
    "linearize_graph",
    "TraversalResult",
    "get_graph_query",
    "QueryResult",
    "AttributeValueIndex",
    "AttributeStatistics",
    "CompiledPredicate",
    "QueryPlan",
    "compile_predicate",
    "normalize",
    "plan_query",
    "batch_filter",
    "batch_positions",
]
