"""Predicate language and the HAM's two query mechanisms.

The paper (§3): "Two basic query mechanisms are supported by the HAM:
traversal and query.  The traversal mechanism, ``linearizeGraph``, starts
at a designated node and follows a depth-first traversal of out-links
ordered by the links' offsets within the node.  The associative query
mechanism, ``getGraphQuery``, directly accesses a set of nodes and their
interconnecting links.  Both of these mechanisms use predicates based on
attribute/value pairs to determine which nodes and links satisfy the
query."

- :mod:`repro.query.predicate` — the predicate AST.
- :mod:`repro.query.parser` — text → AST (``document = requirements``).
- :mod:`repro.query.evaluator` — AST × attribute set → bool.
- :mod:`repro.query.traversal` — ``linearizeGraph``.
- :mod:`repro.query.graph_query` — ``getGraphQuery``.
- :mod:`repro.query.index` — optional inverted attribute index used to
  accelerate equality predicates (the benchmark B3 ablation).
"""

from repro.query.predicate import (
    Predicate,
    Comparison,
    Exists,
    And,
    Or,
    Not,
    TruePredicate,
    FalsePredicate,
    CompareOp,
)
from repro.query.parser import parse_predicate
from repro.query.evaluator import evaluate
from repro.query.traversal import linearize_graph, TraversalResult
from repro.query.graph_query import get_graph_query, QueryResult
from repro.query.index import AttributeValueIndex

__all__ = [
    "Predicate",
    "Comparison",
    "Exists",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "FalsePredicate",
    "CompareOp",
    "parse_predicate",
    "evaluate",
    "linearize_graph",
    "TraversalResult",
    "get_graph_query",
    "QueryResult",
    "AttributeValueIndex",
]
