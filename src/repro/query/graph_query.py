"""``getGraphQuery``: the associative query mechanism.

Appendix: "Returns a sub-graph of the graph given by Context at Time,
composed by all nodes and links such that each of the nodes in NodeIndex*
satisfies Predicate₁, each link … satisfies Predicate₂ and each link in
LinkIndex* connects two nodes in NodeIndex*."

Unlike the traversal, this "directly accesses a set of nodes" (§3) — a
scan over all live entities, optionally accelerated by the inverted
attribute index (see :mod:`repro.query.index`) when the node predicate
has an equality-on-attribute conjunct.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import GraphStore
from repro.core.types import AttributeIndex, LinkIndex, NodeIndex, Time
from repro.query.evaluator import evaluate
from repro.query.index import AttributeValueIndex
from repro.query.predicate import And, CompareOp, Comparison, Predicate
from repro.query.traversal import attribute_values, named_attributes

__all__ = ["get_graph_query", "QueryResult"]


@dataclass(frozen=True)
class QueryResult:
    """The Appendix's ``(NodeIndex × Value^m)* × (LinkIndex × Value^n)*``."""

    nodes: tuple[tuple[NodeIndex, tuple], ...]
    links: tuple[tuple[LinkIndex, tuple], ...]

    @property
    def node_indexes(self) -> list[NodeIndex]:
        """Just the node indexes, in index order."""
        return [index for index, __ in self.nodes]

    @property
    def link_indexes(self) -> list[LinkIndex]:
        """Just the link indexes, in index order."""
        return [index for index, __ in self.links]


def _equality_conjuncts(predicate: Predicate) -> list[Comparison]:
    """Equality comparisons that every match must satisfy (index keys)."""
    if isinstance(predicate, Comparison) and predicate.op is CompareOp.EQ:
        return [predicate]
    if isinstance(predicate, And):
        found = []
        for operand in predicate.operands:
            found.extend(_equality_conjuncts(operand))
        return found
    return []


def get_graph_query(
    store: GraphStore,
    time: Time,
    node_predicate: Predicate,
    link_predicate: Predicate,
    node_attributes: list[AttributeIndex] | None = None,
    link_attributes: list[AttributeIndex] | None = None,
    index: AttributeValueIndex | None = None,
) -> QueryResult:
    """All nodes matching ``node_predicate`` plus their interconnections.

    When ``index`` is supplied (current-time queries only) and the node
    predicate carries an equality conjunct, candidate nodes come from the
    inverted index instead of a full scan — the B3 ablation.
    """
    node_attributes = node_attributes or []
    link_attributes = link_attributes or []

    candidates = None
    if index is not None and time == 0:
        for conjunct in _equality_conjuncts(node_predicate):
            hits = index.lookup(conjunct.attribute, conjunct.value)
            candidates = hits if candidates is None else candidates & hits
            if not candidates:
                break
    if candidates is None:
        node_records = store.live_nodes(time)
    else:
        node_records = [
            store.nodes[node_index]
            for node_index in sorted(candidates)
            if node_index in store.nodes
            and store.nodes[node_index].alive_at(time)
        ]

    matched: dict[NodeIndex, tuple] = {}
    for node in node_records:
        if evaluate(node_predicate, named_attributes(node, store, time)):
            matched[node.index] = tuple(
                attribute_values(node, node_attributes, time))

    links_out: list[tuple[LinkIndex, tuple]] = []
    for link in store.live_links(time):
        if link.from_node not in matched or link.to_node not in matched:
            continue
        if not evaluate(link_predicate, named_attributes(link, store, time)):
            continue
        links_out.append(
            (link.index, tuple(attribute_values(link, link_attributes, time))))

    nodes_out = tuple(sorted(matched.items()))
    return QueryResult(nodes_out, tuple(links_out))
