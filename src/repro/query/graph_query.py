"""``getGraphQuery``: the associative query mechanism.

Appendix: "Returns a sub-graph of the graph given by Context at Time,
composed by all nodes and links such that each of the nodes in NodeIndex*
satisfies Predicate₁, each link … satisfies Predicate₂ and each link in
LinkIndex* connects two nodes in NodeIndex*."

Unlike the traversal, this "directly accesses a set of nodes" (§3).
Execution is plan-driven (:mod:`repro.query.planner`): the predicate is
normalized and compiled, an index access path produces a candidate
superset (equality/range/presence probes, intersected for ``and``,
unioned for ``or``) when a current-time index is available, and the
residual predicate runs over the candidates through the columnar batch
evaluator (:mod:`repro.query.batch`).  Every step only ever *narrows*
a superset, so results are identical to evaluating the raw predicate
against every live entity — the differential suite enforces exactly
that equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import GraphStore
from repro.core.types import CURRENT, AttributeIndex, LinkIndex, NodeIndex, \
    Time
from repro.query.batch import batch_filter
from repro.query.index import AttributeValueIndex
from repro.query.planner import QueryPlan, plan_query
from repro.query.predicate import Predicate
from repro.query.stats import AttributeStatistics
from repro.query.traversal import attribute_values
from repro.tools.metrics import PLANNER

__all__ = ["get_graph_query", "QueryResult"]


@dataclass(frozen=True)
class QueryResult:
    """The Appendix's ``(NodeIndex × Value^m)* × (LinkIndex × Value^n)*``."""

    nodes: tuple[tuple[NodeIndex, tuple], ...]
    links: tuple[tuple[LinkIndex, tuple], ...]

    @property
    def node_indexes(self) -> list[NodeIndex]:
        """Just the node indexes, in index order."""
        return [index for index, __ in self.nodes]

    @property
    def link_indexes(self) -> list[LinkIndex]:
        """Just the link indexes, in index order."""
        return [index for index, __ in self.links]


def get_graph_query(
    store: GraphStore,
    time: Time,
    node_predicate: Predicate,
    link_predicate: Predicate,
    node_attributes: list[AttributeIndex] | None = None,
    link_attributes: list[AttributeIndex] | None = None,
    index: AttributeValueIndex | None = None,
    stats: AttributeStatistics | None = None,
    plan: QueryPlan | None = None,
) -> QueryResult:
    """All nodes matching ``node_predicate`` plus their interconnections.

    When ``index`` is supplied (current-time queries only), the plan's
    access path prunes the candidate set before residual evaluation —
    the B3 ablation.  ``stats`` feeds the plan's selectivity estimates;
    a pre-built ``plan`` (from :func:`repro.query.planner.plan_query`
    with matching arguments) skips re-planning.
    """
    node_attributes = node_attributes or []
    link_attributes = link_attributes or []

    indexed = index is not None and time == CURRENT
    if plan is None:
        plan = plan_query(node_predicate, store.registry, stats=stats,
                          indexed=indexed, link_predicate=link_predicate)
    PLANNER.increment("plans")
    PLANNER.increment(f"shape_{plan.shape}")

    candidates, probes = plan.fetch_candidates(index if indexed else None)
    if probes:
        PLANNER.increment("index_probes", probes)
    if candidates is None:
        node_records = store.live_nodes(time)
    else:
        node_records = [
            store.nodes[node_index]
            for node_index in sorted(candidates)
            if node_index in store.nodes
            and store.nodes[node_index].alive_at(time)
        ]
        PLANNER.increment(
            "rows_pruned", max(0, len(store.nodes) - len(node_records)))
    PLANNER.increment("rows_scanned", len(node_records))

    matched: dict[NodeIndex, tuple] = {}
    for node in batch_filter(node_records, plan.compiled, time):
        matched[node.index] = tuple(
            attribute_values(node, node_attributes, time))
    PLANNER.increment("rows_matched", len(matched))

    link_compiled = plan.link_compiled
    if link_compiled is None:
        # Pre-built plans always carry the link filter; this covers a
        # direct call that skipped link_predicate at plan time.
        from repro.query.planner import compile_predicate
        link_compiled = compile_predicate(link_predicate, store.registry,
                                          stats)
    # Interconnecting links: a link qualifies when both endpoints
    # matched.  With a small match set, gathering each matched node's
    # outgoing adjacency run is O(sum of matched degrees); a full live
    # column scan is O(total links).  Either path yields exactly the
    # same set — every qualifying link leaves a matched node — so this
    # is purely an access-path choice (each link appears once: in its
    # unique from-node's run).
    if matched and 4 * len(matched) <= len(store.nodes):
        PLANNER.increment("adjacency_gathers")
        link_records = [
            link
            for node_index in matched
            for link in store.links_from(node_index, time)
            if link.to_node in matched
        ]
        link_records.sort(key=lambda link: link.index)
    else:
        link_records = [
            link for link in store.live_links(time)
            if link.from_node in matched and link.to_node in matched
        ]
    links_out = [
        (link.index, tuple(attribute_values(link, link_attributes, time)))
        for link in batch_filter(link_records, link_compiled, time)
    ]

    nodes_out = tuple(sorted(matched.items()))
    return QueryResult(nodes_out, tuple(links_out))
