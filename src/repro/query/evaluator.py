"""Predicate evaluation against an attribute set.

An attribute set is a plain ``dict[str, str]`` — the (name → value) pairs
attached to one node or link as of some time.  Comparison semantics:

- equality/inequality compare values as strings;
- ordering comparisons compare numerically when *both* sides parse as
  numbers, falling back to lexicographic string order otherwise (so
  ``revision > 9`` does the right thing for numeric revisions while
  ``author > m`` still means something for strings);
- comparisons on an *absent* attribute are false (and their negation via
  ``!=`` is also false — absence is not inequality; use ``not exists``).
"""

from __future__ import annotations

from repro.errors import PredicateEvalError
from repro.query.predicate import (
    And,
    CompareOp,
    Comparison,
    Exists,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    TruePredicate,
)

__all__ = ["evaluate"]


def _as_number(text: str) -> float | None:
    try:
        return float(text)
    except ValueError:
        return None


def _compare(op: CompareOp, left: str, right: str) -> bool:
    if op is CompareOp.EQ:
        return left == right
    if op is CompareOp.NE:
        return left != right
    left_num = _as_number(left)
    right_num = _as_number(right)
    if left_num is not None and right_num is not None:
        pair = (left_num, right_num)
    else:
        pair = (left, right)
    if op is CompareOp.LT:
        return pair[0] < pair[1]
    if op is CompareOp.LE:
        return pair[0] <= pair[1]
    if op is CompareOp.GT:
        return pair[0] > pair[1]
    if op is CompareOp.GE:
        return pair[0] >= pair[1]
    raise PredicateEvalError(f"unknown operator {op}")  # pragma: no cover


def evaluate(predicate: Predicate, attributes: dict[str, str]) -> bool:
    """True when ``attributes`` satisfies ``predicate``."""
    if isinstance(predicate, TruePredicate):
        return True
    if isinstance(predicate, FalsePredicate):
        return False
    if isinstance(predicate, Comparison):
        value = attributes.get(predicate.attribute)
        if value is None:
            return False
        return _compare(predicate.op, value, predicate.value)
    if isinstance(predicate, Exists):
        return predicate.attribute in attributes
    if isinstance(predicate, And):
        return all(evaluate(op, attributes) for op in predicate.operands)
    if isinstance(predicate, Or):
        return any(evaluate(op, attributes) for op in predicate.operands)
    if isinstance(predicate, Not):
        return not evaluate(predicate.operand, attributes)
    raise PredicateEvalError(
        f"cannot evaluate predicate node {type(predicate).__name__}")
