"""Inverted attribute-value index for query acceleration.

The HAM keeps "as little semantics as possible" (§3) but must "still
maintain performance"; attribute-equality predicates are the workhorse of
every application convention in §4.2 (``contentType = …``,
``relation = isPartOf`` …).  This index maps ``(attribute name, value)``
to the set of node indexes currently carrying that pair, turning the
``getGraphQuery`` full scan into a set intersection for equality
conjuncts.

The index reflects *current* attribute state only — as-of-time queries
fall back to the scan (indexing every historical state would cost more
than it saves for the paper's workloads).  Benchmark B3 measures exactly
this scan-versus-index trade-off.
"""

from __future__ import annotations

import threading

from repro.core.types import NodeIndex

__all__ = ["AttributeValueIndex"]


class AttributeValueIndex:
    """Maintained by the HAM on committed node-attribute mutations.

    Thread-safe: commit-time apply mutates the index while lock-free
    snapshot readers may be probing it, so every method holds an
    internal mutex, and :meth:`lookup` hands out a *copy* of the posting
    set — callers may intersect or mutate their result freely without
    corrupting the index.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._postings: dict[tuple[str, str], set[NodeIndex]] = {}
        #: node → {attribute name: value} mirror, to undo stale postings.
        self._current: dict[NodeIndex, dict[str, str]] = {}

    def set_value(self, node: NodeIndex, attribute: str, value: str) -> None:
        """Record that ``node`` now carries ``attribute = value``."""
        with self._lock:
            existing = self._current.setdefault(node, {})
            old = existing.get(attribute)
            if old is not None:
                self._remove_posting(node, attribute, old)
            existing[attribute] = value
            self._postings.setdefault((attribute, value), set()).add(node)

    def delete_value(self, node: NodeIndex, attribute: str) -> None:
        """Record that ``attribute`` was detached from ``node``."""
        with self._lock:
            existing = self._current.get(node, {})
            old = existing.pop(attribute, None)
            if old is not None:
                self._remove_posting(node, attribute, old)

    def drop_node(self, node: NodeIndex) -> None:
        """Remove every posting for a deleted node."""
        with self._lock:
            for attribute, value in self._current.pop(node, {}).items():
                self._remove_posting(node, attribute, value)

    def lookup(self, attribute: str, value: str) -> set[NodeIndex]:
        """Nodes currently carrying ``attribute = value`` (a copy)."""
        with self._lock:
            return set(self._postings.get((attribute, value), ()))

    def _remove_posting(self, node: NodeIndex, attribute: str,
                        value: str) -> None:
        # Internal: caller holds the lock.
        postings = self._postings.get((attribute, value))
        if postings is not None:
            postings.discard(node)
            if not postings:
                del self._postings[(attribute, value)]

    @property
    def posting_count(self) -> int:
        """Number of (attribute, value) keys currently indexed."""
        with self._lock:
            return len(self._postings)
