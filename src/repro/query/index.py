"""Inverted attribute-value index for query acceleration.

The HAM keeps "as little semantics as possible" (§3) but must "still
maintain performance"; attribute-equality predicates are the workhorse of
every application convention in §4.2 (``contentType = …``,
``relation = isPartOf`` …).  This index maps ``(attribute name, value)``
to the set of node indexes currently carrying that pair, turning the
``getGraphQuery`` full scan into a set intersection for equality
conjuncts.

Beyond plain equality postings, the index keeps *sorted* views of every
attribute's distinct values — one list ordered numerically (values that
parse as numbers) and one ordered lexicographically (values that do
not) — so the query planner can answer **range** predicates
(``revision > 9``) and **presence** probes (``exists icon``, and the
attribute-carrying superset behind ``!=``) by bisecting the value lists
and unioning a handful of posting sets instead of scanning every live
node.  The two-list split mirrors the evaluator's comparison semantics
exactly (numeric when both sides parse as numbers, lexicographic
otherwise), which is what lets the planner trust a range probe as a
superset of the true matches.

The index reflects *current* attribute state only — as-of-time queries
fall back to the scan (indexing every historical state would cost more
than it saves for the paper's workloads).  Benchmark B3 measures exactly
this scan-versus-index trade-off.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right, insort

from repro.core.types import NodeIndex
from repro.query.predicate import CompareOp

__all__ = ["AttributeValueIndex"]


def _as_number(text: str) -> float | None:
    try:
        return float(text)
    except ValueError:
        return None


class AttributeValueIndex:
    """Maintained by the HAM on committed node-attribute mutations.

    Thread-safe: commit-time apply mutates the index while lock-free
    snapshot readers may be probing it, so every method holds an
    internal mutex, and every lookup hands out a *copy* of the posting
    set — callers may intersect or mutate their result freely without
    corrupting the index.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: attribute name → value → posting set.
        self._postings: dict[str, dict[str, set[NodeIndex]]] = {}
        #: node → {attribute name: value} mirror, to undo stale postings.
        self._current: dict[NodeIndex, dict[str, str]] = {}
        #: attribute → sorted [(float(value), value)] for numeric values.
        self._numeric: dict[str, list[tuple[float, str]]] = {}
        #: attribute → sorted [value] for non-numeric values.
        self._lexical: dict[str, list[str]] = {}

    def set_value(self, node: NodeIndex, attribute: str, value: str) -> None:
        """Record that ``node`` now carries ``attribute = value``."""
        with self._lock:
            existing = self._current.setdefault(node, {})
            old = existing.get(attribute)
            if old is not None:
                self._remove_posting(node, attribute, old)
            existing[attribute] = value
            by_value = self._postings.setdefault(attribute, {})
            postings = by_value.get(value)
            if postings is None:
                by_value[value] = {node}
                self._add_sorted(attribute, value)
            else:
                postings.add(node)

    def delete_value(self, node: NodeIndex, attribute: str) -> None:
        """Record that ``attribute`` was detached from ``node``."""
        with self._lock:
            existing = self._current.get(node, {})
            old = existing.pop(attribute, None)
            if old is not None:
                self._remove_posting(node, attribute, old)

    def drop_node(self, node: NodeIndex) -> None:
        """Remove every posting for a deleted node."""
        with self._lock:
            for attribute, value in self._current.pop(node, {}).items():
                self._remove_posting(node, attribute, value)

    # ------------------------------------------------------------------
    # lookups (all return copies)

    def lookup(self, attribute: str, value: str) -> set[NodeIndex]:
        """Nodes currently carrying ``attribute = value`` (a copy)."""
        with self._lock:
            by_value = self._postings.get(attribute)
            if by_value is None:
                return set()
            return set(by_value.get(value, ()))

    def lookup_present(self, attribute: str) -> set[NodeIndex]:
        """Nodes currently carrying ``attribute`` with any value.

        The superset probe behind ``exists attribute`` — and behind
        ``attribute != value``, whose matches always carry the attribute
        (comparisons on an absent attribute are false).
        """
        with self._lock:
            hits: set[NodeIndex] = set()
            for postings in self._postings.get(attribute, {}).values():
                hits.update(postings)
            return hits

    def lookup_range(self, attribute: str, op: CompareOp,
                     bound: str) -> set[NodeIndex]:
        """Nodes whose current ``attribute`` value satisfies ``op bound``.

        Mirrors :func:`repro.query.evaluator._compare` exactly: when
        ``bound`` parses as a number, numeric stored values compare
        numerically against it and non-numeric stored values compare as
        strings; when ``bound`` is not a number, every stored value
        compares as a string.  The matching distinct values come from
        bisecting the sorted value lists; their posting sets are
        unioned.
        """
        with self._lock:
            by_value = self._postings.get(attribute)
            if not by_value:
                return set()
            bound_num = _as_number(bound)
            matching: list[str] = []
            numeric = self._numeric.get(attribute, ())
            lexical = self._lexical.get(attribute, ())
            if bound_num is not None:
                lo, hi = self._slice(
                    numeric, op, bound_num, key=lambda entry: entry[0])
                matching.extend(value for __, value in numeric[lo:hi])
                lo, hi = self._slice(lexical, op, bound)
                matching.extend(lexical[lo:hi])
            else:
                # Non-numeric bound: *every* stored value string-compares,
                # so walk both sorted lists lexicographically.
                lo, hi = self._slice(lexical, op, bound)
                matching.extend(lexical[lo:hi])
                matching.extend(
                    value for __, value in numeric
                    if _string_compare(op, value, bound))
            hits: set[NodeIndex] = set()
            for value in matching:
                hits.update(by_value.get(value, ()))
            return hits

    @staticmethod
    def _slice(ordered, op: CompareOp, bound, key=None) -> tuple[int, int]:
        """[lo, hi) slice of a sorted list matching ``value op bound``."""
        if op is CompareOp.LT:
            return 0, bisect_left(ordered, bound, key=key)
        if op is CompareOp.LE:
            return 0, bisect_right(ordered, bound, key=key)
        if op is CompareOp.GT:
            return bisect_right(ordered, bound, key=key), len(ordered)
        if op is CompareOp.GE:
            return bisect_left(ordered, bound, key=key), len(ordered)
        raise ValueError(f"not a range operator: {op}")

    # ------------------------------------------------------------------
    # internal maintenance (caller holds the lock)

    def _add_sorted(self, attribute: str, value: str) -> None:
        number = _as_number(value)
        if number is not None:
            insort(self._numeric.setdefault(attribute, []), (number, value))
        else:
            insort(self._lexical.setdefault(attribute, []), value)

    def _remove_sorted(self, attribute: str, value: str) -> None:
        number = _as_number(value)
        if number is not None:
            ordered = self._numeric.get(attribute)
            if ordered is not None:
                position = bisect_left(ordered, (number, value))
                if position < len(ordered) \
                        and ordered[position] == (number, value):
                    del ordered[position]
                if not ordered:
                    del self._numeric[attribute]
        else:
            ordered = self._lexical.get(attribute)
            if ordered is not None:
                position = bisect_left(ordered, value)
                if position < len(ordered) and ordered[position] == value:
                    del ordered[position]
                if not ordered:
                    del self._lexical[attribute]

    def _remove_posting(self, node: NodeIndex, attribute: str,
                        value: str) -> None:
        by_value = self._postings.get(attribute)
        if by_value is None:
            return
        postings = by_value.get(value)
        if postings is not None:
            postings.discard(node)
            if not postings:
                del by_value[value]
                self._remove_sorted(attribute, value)
                if not by_value:
                    del self._postings[attribute]

    @property
    def posting_count(self) -> int:
        """Number of (attribute, value) keys currently indexed."""
        with self._lock:
            return sum(len(by_value)
                       for by_value in self._postings.values())


def _string_compare(op: CompareOp, left: str, right: str) -> bool:
    if op is CompareOp.LT:
        return left < right
    if op is CompareOp.LE:
        return left <= right
    if op is CompareOp.GT:
        return left > right
    if op is CompareOp.GE:
        return left >= right
    raise ValueError(f"not a range operator: {op}")
