"""Columnar batch evaluation of compiled predicates.

The seed read path evaluated predicates object-at-a-time: for every
candidate record, materialize a ``{name: value}`` dict (one registry
name lookup per attached attribute), then walk the AST against it.
That does the registry work per *row* even though a predicate only
ever references a handful of attributes.

This evaluator flips the loop to columns.  Candidate records are
walked **once**, pulling only the attribute indexes the compiled
predicate references into parallel value columns (``None`` marks
absence).  The predicate tree then runs over *row position lists*:

- a comparison filters a position list against one column,
- ``and`` threads the shrinking list through its conjuncts
  (planner-ordered cheapest-to-fail first) and stops when empty,
- ``or`` evaluates each arm only over rows no earlier arm matched,
- ``not`` subtracts its operand's matches.

Position lists stay in ascending row order throughout, so the matched
records come back in exactly the order the candidates went in — the
differential suite's byte-identical guarantee does not depend on any
re-sorting here.
"""

from __future__ import annotations

from repro.core.types import AttributeIndex, Time
from repro.query.evaluator import _compare
from repro.query.planner import CompiledPredicate
from repro.query.predicate import CompareOp

__all__ = ["batch_positions", "batch_filter"]


def _build_columns(records, attributes: tuple[AttributeIndex, ...],
                   time: Time) -> dict[AttributeIndex, list[str | None]]:
    """One pass over the candidate records: referenced columns only.

    Each record contributes one targeted timeline probe per referenced
    attribute (:meth:`VersionedAttributes.values_at`) — never a full
    attached-attribute dict, so cost tracks the predicate's attribute
    count rather than how many attributes the record carries.
    """
    columns: dict[AttributeIndex, list[str | None]] = {
        attribute: [] for attribute in attributes}
    if not attributes:
        return columns
    column_lists = [columns[attribute] for attribute in attributes]
    for record in records:
        values = record.attributes.values_at(attributes, time)
        for column, value in zip(column_lists, values):
            column.append(value)
    return columns


def _evaluate(node: tuple, rows: list[int],
              columns: dict[AttributeIndex, list[str | None]]) -> list[int]:
    """Positions in ``rows`` (ascending) whose row satisfies ``node``."""
    tag = node[0]
    if tag == "true":
        return rows
    if tag == "false":
        return []
    if tag == "cmp":
        __, attribute, op, value = node
        if attribute is None:
            return []
        column = columns[attribute]
        if op is CompareOp.EQ:
            return [row for row in rows if column[row] == value]
        if op is CompareOp.NE:
            return [row for row in rows
                    if column[row] is not None and column[row] != value]
        return [row for row in rows
                if column[row] is not None
                and _compare(op, column[row], value)]
    if tag == "exists":
        if node[1] is None:
            return []
        column = columns[node[1]]
        return [row for row in rows if column[row] is not None]
    if tag == "and":
        for child in node[1]:
            rows = _evaluate(child, rows, columns)
            if not rows:
                break
        return rows
    if tag == "or":
        matched: set[int] = set()
        remaining = rows
        for child in node[1]:
            hits = _evaluate(child, remaining, columns)
            matched.update(hits)
            remaining = [row for row in remaining if row not in matched]
            if not remaining:
                break
        return [row for row in rows if row in matched]
    if tag == "not":
        excluded = set(_evaluate(node[1], rows, columns))
        return [row for row in rows if row not in excluded]
    raise ValueError(f"unknown compiled node tag {tag!r}")


def batch_positions(records, compiled: CompiledPredicate,
                    time: Time) -> list[int]:
    """Positions (ascending) of the records matching ``compiled``."""
    records = list(records)
    columns = _build_columns(records, compiled.ordered_attributes, time)
    return _evaluate(compiled.tree, list(range(len(records))), columns)


def batch_filter(records, compiled: CompiledPredicate, time: Time) -> list:
    """The records themselves, filtered, original order preserved."""
    records = list(records)
    columns = _build_columns(records, compiled.ordered_attributes, time)
    rows = _evaluate(compiled.tree, list(range(len(records))), columns)
    return [records[row] for row in rows]
