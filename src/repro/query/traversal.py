"""``linearizeGraph``: predicate-filtered depth-first traversal.

Appendix: "Returns a sub-graph of the graph given by Context at Time,
composed by a depth first search via links starting at node NodeIndex.
Each of the nodes … satisfies Predicate₁, each link traversed satisfies
Predicate₂ and each link … connects two nodes in NodeIndex*.  For each
node also returns Value^m for the m requested attributes …"

Out-links are followed "ordered by the links' offsets within the node"
(§3) — the property that makes a hierarchy of sections linearize into
document order, which is how the document browser and hardcopy extraction
work (§4.1).

Predicates may arrive either as plain ASTs or pre-compiled
(:class:`~repro.query.planner.CompiledPredicate`); plain ASTs are
compiled on entry, so traversal filtering always runs the same
registry-resolved evaluation as the planned query path — one
``{attribute index: value}`` lookup per visited entity, no per-row name
materialization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import GraphStore
from repro.core.link import LinkEnd
from repro.core.types import AttributeIndex, LinkIndex, NodeIndex, Time
from repro.errors import VersionError
from repro.query.predicate import Predicate
from repro.tools.metrics import GRAPH

__all__ = ["linearize_graph", "TraversalResult", "named_attributes"]


def named_attributes(entity, store: GraphStore, time: Time) -> dict[str, str]:
    """(name → value) attribute set of a node/link record as of ``time``."""
    GRAPH.increment("facade_materializations")
    return {
        store.registry.name_of(index): value
        for index, value in entity.attributes.all_at(time).items()
    }


def attribute_values(entity, requested: list[AttributeIndex],
                     time: Time) -> list[str | None]:
    """``Value^m`` for the requested attribute indexes (None if absent).

    Probes only the requested timelines — projecting two attributes off
    a record carrying forty never materializes the other thirty-eight.
    """
    if not requested:
        return []
    return entity.attributes.values_at(requested, time)


@dataclass(frozen=True)
class TraversalResult:
    """The Appendix's ``(NodeIndex × Value^m)* × (LinkIndex × Value^n)*``."""

    nodes: tuple[tuple[NodeIndex, tuple], ...]
    links: tuple[tuple[LinkIndex, tuple], ...]

    @property
    def node_indexes(self) -> list[NodeIndex]:
        """Just the node indexes, in traversal order."""
        return [index for index, __ in self.nodes]

    @property
    def link_indexes(self) -> list[LinkIndex]:
        """Just the link indexes, in traversal order."""
        return [index for index, __ in self.links]


def _as_compiled(predicate, store: GraphStore, stats=None):
    """Accept a plain AST or an already-compiled predicate."""
    from repro.query.planner import CompiledPredicate, compile_predicate
    if isinstance(predicate, CompiledPredicate):
        return predicate
    return compile_predicate(predicate, store.registry, stats)


def linearize_graph(
    store: GraphStore,
    start: NodeIndex,
    time: Time,
    node_predicate: Predicate,
    link_predicate: Predicate,
    node_attributes: list[AttributeIndex] | None = None,
    link_attributes: list[AttributeIndex] | None = None,
    stats=None,
) -> TraversalResult:
    """Depth-first, offset-ordered, predicate-pruned traversal.

    ``node_predicate``/``link_predicate`` may be plain predicate ASTs
    or :class:`~repro.query.planner.CompiledPredicate` instances;
    ``stats`` (when compiling here) orders conjunct evaluation by
    estimated selectivity, exactly as the query path does.
    """
    node_predicate = _as_compiled(node_predicate, store, stats)
    link_predicate = _as_compiled(link_predicate, store, stats)
    node_attributes = node_attributes or []
    link_attributes = link_attributes or []
    start_node = store.node(start)
    start_node.require_alive(time)

    nodes_out: list[tuple[NodeIndex, tuple]] = []
    links_out: list[tuple[LinkIndex, tuple]] = []
    visited: set[NodeIndex] = set()

    def node_admitted(index: NodeIndex) -> bool:
        node = store.node(index)
        if not node.alive_at(time):
            return False
        return node_predicate.matches_record(node.attributes, time)

    def ordered_out_links(index: NodeIndex) -> list[LinkIndex]:
        # Out-links ordered by their attachment offset within this node;
        # ties broken by link index for determinism.  ``links_from``
        # serves the link table's adjacency run (or the transaction
        # overlay's endpoint set): O(degree), already alive-filtered —
        # only this node's links are ever touched, not the whole table.
        candidates = []
        for link in store.links_from(index, time):
            try:
                offset = link.position_at(LinkEnd.FROM, time)
            except VersionError:
                continue  # endpoint had no attachment yet at `time`
            candidates.append((offset, link.index))
        return [link_index for __, link_index in sorted(candidates)]

    def enter(index: NodeIndex) -> None:
        visited.add(index)
        node = store.node(index)
        nodes_out.append(
            (index, tuple(attribute_values(node, node_attributes, time))))

    if not node_admitted(start):
        return TraversalResult((), ())

    # Iterative depth-first search (recursion would overflow on the deep
    # hierarchies the document workloads generate).
    enter(start)
    stack: list = [iter(ordered_out_links(start))]
    while stack:
        try:
            link_index = next(stack[-1])
        except StopIteration:
            stack.pop()
            continue
        link = store.link(link_index)
        if not link_predicate.matches_record(link.attributes, time):
            continue
        target = link.to_node
        if target in visited or not node_admitted(target):
            continue
        links_out.append(
            (link_index,
             tuple(attribute_values(link, link_attributes, time))))
        enter(target)
        stack.append(iter(ordered_out_links(target)))
    return TraversalResult(tuple(nodes_out), tuple(links_out))
