"""Per-attribute cardinality and value-distribution statistics.

The cost-based planner (:mod:`repro.query.planner`) needs to answer
"how selective is this conjunct?" without touching a single record.
This module maintains the numbers it asks for: how many nodes carry
each attribute, how many distinct values the attribute takes, and how
many nodes carry each specific value.

Statistics are maintained exactly like the inverted index
(:mod:`repro.query.index`): mutations queue on a transaction's
write-set and apply at commit, inside the same apply-seqlock bracket
that publishes the write-set into the shared store — so the stats are
always consistent with the committed state the live index describes,
and a snapshot reader that validates the index against its pinned
apply sequence validates the stats with the same check.

Like the index, statistics describe *current* committed state only.
As-of-time queries still consult them — a stale selectivity estimate
only affects evaluation *order*, never correctness, so historical
plans simply order their residual conjuncts by present-day shape.
"""

from __future__ import annotations

import threading

from repro.core.types import NodeIndex
from repro.query.predicate import CompareOp

__all__ = ["AttributeStatistics", "DEFAULT_EQ_SELECTIVITY",
           "DEFAULT_RANGE_SELECTIVITY", "DEFAULT_PRESENCE_SELECTIVITY"]

#: Fallback estimates used when no statistics are available (planner
#: running without stats, or an attribute the stats have never seen a
#: committed row for in a graph with no tracked rows at all).
DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_PRESENCE_SELECTIVITY = 0.5

#: Above this many distinct values, range selectivity is approximated
#: instead of computed by walking the value distribution.
_RANGE_WALK_LIMIT = 4096


def _as_number(text: str) -> float | None:
    try:
        return float(text)
    except ValueError:
        return None


class AttributeStatistics:
    """Commit-maintained attribute statistics for one graph.

    Mutation API mirrors :class:`repro.query.index.AttributeValueIndex`
    (``set_value`` / ``delete_value`` / ``drop_node``) so the write-set
    can feed both sinks from the same queued operations.  Thread-safe.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: node → {attribute: value} mirror (to undo stale counts).
        self._current: dict[NodeIndex, dict[str, str]] = {}
        #: attribute → number of nodes carrying it.
        self._rows: dict[str, int] = {}
        #: attribute → value → number of nodes carrying that pair.
        self._values: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------
    # maintenance (same surface as AttributeValueIndex)

    def set_value(self, node: NodeIndex, attribute: str, value: str) -> None:
        with self._lock:
            existing = self._current.setdefault(node, {})
            old = existing.get(attribute)
            if old == value:
                return
            if old is not None:
                self._uncount(attribute, old)
            else:
                self._rows[attribute] = self._rows.get(attribute, 0) + 1
            existing[attribute] = value
            by_value = self._values.setdefault(attribute, {})
            by_value[value] = by_value.get(value, 0) + 1

    def delete_value(self, node: NodeIndex, attribute: str) -> None:
        with self._lock:
            existing = self._current.get(node, {})
            old = existing.pop(attribute, None)
            if old is not None:
                self._uncount(attribute, old)
                self._rows[attribute] -= 1
                if not self._rows[attribute]:
                    del self._rows[attribute]
                if not existing:
                    self._current.pop(node, None)

    def drop_node(self, node: NodeIndex) -> None:
        with self._lock:
            for attribute, value in self._current.pop(node, {}).items():
                self._uncount(attribute, value)
                self._rows[attribute] -= 1
                if not self._rows[attribute]:
                    del self._rows[attribute]

    def _uncount(self, attribute: str, value: str) -> None:
        by_value = self._values.get(attribute)
        if by_value is None:
            return
        count = by_value.get(value, 0) - 1
        if count > 0:
            by_value[value] = count
        else:
            by_value.pop(value, None)
            if not by_value:
                del self._values[attribute]

    # ------------------------------------------------------------------
    # cardinalities

    @property
    def tracked_nodes(self) -> int:
        """Nodes currently carrying at least one attribute."""
        with self._lock:
            return len(self._current)

    def attribute_rows(self, attribute: str) -> int:
        """Nodes currently carrying ``attribute``."""
        with self._lock:
            return self._rows.get(attribute, 0)

    def distinct_values(self, attribute: str) -> int:
        """Distinct values ``attribute`` currently takes."""
        with self._lock:
            return len(self._values.get(attribute, ()))

    def value_count(self, attribute: str, value: str) -> int:
        """Nodes currently carrying ``attribute = value``."""
        with self._lock:
            return self._values.get(attribute, {}).get(value, 0)

    def snapshot(self) -> dict:
        """Plain-dict copy of every counter (tests, observability)."""
        with self._lock:
            return {
                "tracked_nodes": len(self._current),
                "rows": dict(self._rows),
                "values": {attribute: dict(by_value)
                           for attribute, by_value in self._values.items()},
            }

    # ------------------------------------------------------------------
    # selectivity estimates (fractions of the tracked universe)

    def _universe(self) -> int:
        # Callers hold the lock.  Nodes with zero attributes are invisible
        # to the stats; they can never match a comparison or exists, so
        # the attribute-carrying population is the honest denominator for
        # ordering decisions.
        return max(len(self._current), 1)

    def eq_selectivity(self, attribute: str, value: str) -> float:
        """Estimated fraction of rows matching ``attribute = value``."""
        with self._lock:
            if attribute not in self._rows:
                return 0.0 if self._current else DEFAULT_EQ_SELECTIVITY
            return self._values[attribute].get(value, 0) / self._universe()

    def ne_selectivity(self, attribute: str, value: str) -> float:
        """Estimated fraction matching ``attribute != value``.

        Matches must carry the attribute (absence is not inequality),
        so this is the presence fraction minus the equality fraction.
        """
        with self._lock:
            rows = self._rows.get(attribute)
            if rows is None:
                return 0.0 if self._current else DEFAULT_PRESENCE_SELECTIVITY
            equal = self._values[attribute].get(value, 0)
            return max(rows - equal, 0) / self._universe()

    def presence_selectivity(self, attribute: str) -> float:
        """Estimated fraction of rows carrying ``attribute`` at all."""
        with self._lock:
            rows = self._rows.get(attribute)
            if rows is None:
                return 0.0 if self._current else DEFAULT_PRESENCE_SELECTIVITY
            return rows / self._universe()

    def range_selectivity(self, attribute: str, op: CompareOp,
                          bound: str) -> float:
        """Estimated fraction matching ``attribute <op> bound``.

        Computed exactly from the value distribution while it stays
        small (the common case: attribute domains are tiny next to the
        node population); approximated as a third of the presence
        fraction beyond :data:`_RANGE_WALK_LIMIT` distinct values.
        """
        with self._lock:
            rows = self._rows.get(attribute)
            if rows is None:
                return 0.0 if self._current else DEFAULT_RANGE_SELECTIVITY
            by_value = self._values[attribute]
            universe = self._universe()
            if len(by_value) > _RANGE_WALK_LIMIT:
                return (rows / universe) * DEFAULT_RANGE_SELECTIVITY
            bound_num = _as_number(bound)
            matching = 0
            for value, count in by_value.items():
                value_num = _as_number(value)
                if bound_num is not None and value_num is not None:
                    left, right = value_num, bound_num
                else:
                    left, right = value, bound
                if ((op is CompareOp.LT and left < right)
                        or (op is CompareOp.LE and left <= right)
                        or (op is CompareOp.GT and left > right)
                        or (op is CompareOp.GE and left >= right)):
                    matching += count
            return matching / universe
