"""A small, correct, in-memory relational algebra.

A :class:`Relation` is a named-column set of tuples.  The operator set —
selection, projection, renaming, natural join, union, difference, and
cartesian product — is relationally complete, which is exactly what §5
asks for ("a relationally complete query language").

Relations are immutable; every operator returns a new relation.  Rows
are dictionaries column→value at the API surface and tuples internally.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import NeptuneError

__all__ = ["Relation", "RelationError"]


class RelationError(NeptuneError):
    """Schema mismatch or malformed relational operation."""


class Relation:
    """An immutable relation: a schema and a set of rows."""

    def __init__(self, columns: Iterable[str],
                 rows: Iterable[tuple] = ()):
        self.columns: tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise RelationError(
                f"duplicate column names in {self.columns}")
        width = len(self.columns)
        checked = set()
        for row in rows:
            row = tuple(row)
            if len(row) != width:
                raise RelationError(
                    f"row {row!r} does not match schema {self.columns}")
            checked.add(row)
        self.rows: frozenset[tuple] = frozenset(checked)

    # ------------------------------------------------------------------
    # construction helpers

    @classmethod
    def from_dicts(cls, columns: Iterable[str],
                   dicts: Iterable[dict]) -> "Relation":
        """Build from an iterable of {column: value} mappings."""
        columns = tuple(columns)
        return cls(columns,
                   (tuple(item[column] for column in columns)
                    for item in dicts))

    def to_dicts(self) -> list[dict]:
        """Rows as sorted dictionaries (deterministic output)."""
        return [dict(zip(self.columns, row)) for row in sorted(self.rows)]

    # ------------------------------------------------------------------
    # basics

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Relation)
                and self.columns == other.columns
                and self.rows == other.rows)

    def __hash__(self) -> int:
        return hash((self.columns, self.rows))

    def __repr__(self) -> str:
        return f"Relation({self.columns}, {len(self.rows)} rows)"

    def _index_of(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise RelationError(
                f"no column {column!r} in {self.columns}") from None

    def column_values(self, column: str) -> set:
        """The set of values appearing in one column."""
        position = self._index_of(column)
        return {row[position] for row in self.rows}

    # ------------------------------------------------------------------
    # the operator set

    def select(self, predicate: Callable[[dict], bool]) -> "Relation":
        """σ: rows satisfying ``predicate`` (called with a row dict)."""
        return Relation(
            self.columns,
            (row for row in self.rows
             if predicate(dict(zip(self.columns, row)))))

    def where(self, **equalities) -> "Relation":
        """σ shorthand for conjunctive equality: ``where(node=3)``."""
        positions = [(self._index_of(column), value)
                     for column, value in equalities.items()]
        return Relation(
            self.columns,
            (row for row in self.rows
             if all(row[position] == value
                    for position, value in positions)))

    def project(self, *columns: str) -> "Relation":
        """π: keep only ``columns`` (deduplicating)."""
        positions = [self._index_of(column) for column in columns]
        return Relation(
            columns,
            (tuple(row[position] for position in positions)
             for row in self.rows))

    def rename(self, **mapping: str) -> "Relation":
        """ρ: rename columns, ``rename(old="new")``."""
        for old in mapping:
            self._index_of(old)
        new_columns = tuple(mapping.get(column, column)
                            for column in self.columns)
        return Relation(new_columns, self.rows)

    def join(self, other: "Relation") -> "Relation":
        """⋈: natural join on the shared column names.

        With no shared columns this degenerates to the cartesian
        product, per the standard definition.
        """
        shared = [column for column in self.columns
                  if column in other.columns]
        left_positions = [self._index_of(column) for column in shared]
        right_positions = [other._index_of(column) for column in shared]
        right_extra = [position
                       for position, column in enumerate(other.columns)
                       if column not in shared]
        result_columns = self.columns + tuple(
            other.columns[position] for position in right_extra)
        # Hash join on the shared-key tuple.
        buckets: dict[tuple, list[tuple]] = {}
        for row in other.rows:
            key = tuple(row[position] for position in right_positions)
            buckets.setdefault(key, []).append(row)
        joined = []
        for row in self.rows:
            key = tuple(row[position] for position in left_positions)
            for match in buckets.get(key, ()):
                joined.append(row + tuple(match[position]
                                          for position in right_extra))
        return Relation(result_columns, joined)

    def product(self, other: "Relation") -> "Relation":
        """×: cartesian product (schemas must be disjoint)."""
        overlap = set(self.columns) & set(other.columns)
        if overlap:
            raise RelationError(
                f"product requires disjoint schemas; shared: {overlap}")
        return self.join(other)

    def union(self, other: "Relation") -> "Relation":
        """∪: set union (schemas must match)."""
        self._require_same_schema(other)
        return Relation(self.columns, self.rows | other.rows)

    def difference(self, other: "Relation") -> "Relation":
        """−: rows of self not in other (schemas must match)."""
        self._require_same_schema(other)
        return Relation(self.columns, self.rows - other.rows)

    def intersection(self, other: "Relation") -> "Relation":
        """∩ (derivable from −, provided for convenience)."""
        self._require_same_schema(other)
        return Relation(self.columns, self.rows & other.rows)

    def _require_same_schema(self, other: "Relation") -> None:
        if self.columns != other.columns:
            raise RelationError(
                f"schema mismatch: {self.columns} vs {other.columns}")

    # ------------------------------------------------------------------
    # display

    def render(self) -> str:
        """A fixed-width text table (deterministic row order)."""
        rows = sorted(self.rows)
        widths = [
            max(len(str(column)),
                *(len(str(row[position])) for row in rows))
            if rows else len(str(column))
            for position, column in enumerate(self.columns)
        ]
        def fmt(values):
            return "  ".join(
                str(value).ljust(width)
                for value, width in zip(values, widths))
        lines = [fmt(self.columns),
                 "  ".join("-" * width for width in widths)]
        lines.extend(fmt(row) for row in rows)
        return "\n".join(lines)
