"""Materializing relations from a HAM graph (the §5 bridge).

:class:`HypertextRelations` turns hypertext state into relations:

- ``node_attributes()`` — ``(node, attribute, value)``, one row per
  attached pair;
- ``links()`` — ``(link, from_node, to_node, relation)``;
- ``definitions()`` / ``references()`` — the "fine grained" symbol-table
  information the incremental compiler produces (§5: "definition-use
  links in an incremental compiler's symbol tables");
- ``text_mentions(term)`` — ``(node,)`` for every node whose contents
  mention a term, which is how documentation joins in.

:func:`find_all_references` is the paper's own example — "find all
references to a variable, not only in the code, but in all the
documentation as well" — expressed as unions and joins.
"""

from __future__ import annotations

from repro.apps.compiler import compile_source
from repro.core.ham import HAM
from repro.core.types import CURRENT, Time
from repro.relational.algebra import Relation

__all__ = ["HypertextRelations", "find_all_references"]


class HypertextRelations:
    """Extracts relational views of a hypergraph as of any time."""

    def __init__(self, ham: HAM, time: Time = CURRENT):
        self.ham = ham
        self.time = time

    # ------------------------------------------------------------------
    # structural relations

    def nodes(self) -> Relation:
        """``(node,)`` — every node alive at the view time."""
        return Relation(
            ("node",),
            ((record.index,)
             for record in self.ham.store.live_nodes(self.time)))

    def node_attributes(self) -> Relation:
        """``(node, attribute, value)`` for every attached pair."""
        rows = []
        for record in self.ham.store.live_nodes(self.time):
            for name, __, value in self.ham.get_node_attributes(
                    record.index, self.time):
                rows.append((record.index, name, value))
        return Relation(("node", "attribute", "value"), rows)

    def links(self) -> Relation:
        """``(link, from_node, to_node, relation)`` (relation may be '')."""
        relation_attr = self.ham.store.registry.lookup("relation")
        rows = []
        for record in self.ham.store.live_links(self.time):
            relation = ""
            if relation_attr is not None:
                relation = record.attributes.value_at(
                    relation_attr, self.time, default="")
            rows.append((record.index, record.from_node, record.to_node,
                         relation))
        return Relation(("link", "from_node", "to_node", "relation"), rows)

    # ------------------------------------------------------------------
    # fine-grained code relations (§5's symbol-table information)

    def _source_rows(self) -> list[tuple[int, bytes]]:
        content_attr = self.ham.store.registry.lookup("contentType")
        if content_attr is None:
            return []
        rows = []
        for record in self.ham.store.live_nodes(self.time):
            kind = record.attributes.value_at(
                content_attr, self.time, default="")
            if kind == "Modula-2 source code":
                rows.append((record.index, record.contents_at(self.time)))
        return rows

    def definitions(self) -> Relation:
        """``(node, symbol)`` — symbols each source node defines."""
        rows = []
        for node, source in self._source_rows():
            for symbol in compile_source(source).symbols:
                rows.append((node, symbol))
        return Relation(("node", "symbol"), rows)

    def references(self) -> Relation:
        """``(node, symbol)`` — symbols each source node calls/uses."""
        rows = []
        for node, source in self._source_rows():
            for symbol in compile_source(source).calls:
                rows.append((node, symbol))
        return Relation(("node", "symbol"), rows)

    # ------------------------------------------------------------------
    # documentation relation

    def text_mentions(self, term: str) -> Relation:
        """``(node,)`` — text nodes whose contents mention ``term``."""
        content_attr = self.ham.store.registry.lookup("contentType")
        needle = term.encode()
        rows = []
        for record in self.ham.store.live_nodes(self.time):
            kind = ""
            if content_attr is not None:
                kind = record.attributes.value_at(
                    content_attr, self.time, default="")
            if kind == "text" and needle in record.contents_at(self.time):
                rows.append((record.index,))
        return Relation(("node",), rows)


def find_all_references(ham: HAM, symbol: str,
                        time: Time = CURRENT) -> Relation:
    """§5's example query: every node referring to ``symbol`` —
    "not only in the code, but in all the documentation as well".

    Returns ``(node, kind)`` where kind ∈ {code, documentation}.
    """
    views = HypertextRelations(ham, time)
    code = (views.references()
            .where(symbol=symbol)
            .project("node"))
    docs = views.text_mentions(symbol)
    tagged_code = Relation(
        ("node", "kind"),
        ((node, "code") for (node,) in code.rows))
    tagged_docs = Relation(
        ("node", "kind"),
        ((node, "documentation") for (node,) in docs.rows))
    return tagged_code.union(tagged_docs)
