"""Relational queries over hypertext (the paper's §5 synergy).

§5: "There is a possible synergy … between the use of a relational
database in conjunction with hypertext.  Hypertext can adequately
capture the relationship between all the major pieces of information …
Hypertext might not be as suitable for finer grained relationships such
as definition-use links in an incremental compiler's symbol tables …
For example, given such fine grained information as a symbol table, one
might want to find all references to a variable, not only in the code,
but in all the documentation as well.  A relationally complete query
language makes possible a wide range of interesting questions."

This package implements that synergy:

- :mod:`repro.relational.algebra` — a small in-memory relational engine
  (select, project, rename, natural join, union, difference, product —
  a relationally complete operator set).
- :mod:`repro.relational.bridge` — materializes relations *from* a HAM
  graph: node attributes, link structure, and the CASE layer's symbol
  tables / call lists, plus full-text mentions.
- :func:`repro.relational.bridge.find_all_references` — the paper's own
  example query, as one join.
"""

from repro.relational.algebra import Relation
from repro.relational.bridge import (
    HypertextRelations,
    find_all_references,
)

__all__ = ["Relation", "HypertextRelations", "find_all_references"]
