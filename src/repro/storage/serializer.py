"""Compact binary record encoding with checksums.

The HAM's persistent structures (heap records, log records, delta chains)
all share one self-describing binary value encoding, so that every layer
can round-trip plain Python values — ints, strings, bytes, lists, dicts —
without pickling (pickle would tie the on-disk format to Python internals
and is unsafe to load from untrusted files).

Framing: :func:`pack_record` prefixes the payload with a 4-byte length and
a CRC32 checksum; :func:`unpack_record` verifies the checksum and raises
:class:`repro.errors.ChecksumError` on corruption, which the WAL recovery
scanner treats as "end of valid log".
"""

from __future__ import annotations

import struct
import zlib

from repro.errors import ChecksumError, StorageError

__all__ = ["encode_value", "decode_value", "pack_record", "unpack_record",
           "RECORD_HEADER"]

#: Record framing header: payload length (u32) then CRC32 of payload (u32).
RECORD_HEADER = struct.Struct("<II")

_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_NEG_INT = b"j"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_TUPLE = b"t"
_TAG_DICT = b"d"

_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")


def _encode_into(value: object, out: bytearray) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        magnitude = value if value >= 0 else -value
        raw = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1,
                                 "little")
        out += _TAG_INT if value >= 0 else _TAG_NEG_INT
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out += _TAG_BYTES
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, list):
        out += _TAG_LIST
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, tuple):
        out += _TAG_TUPLE
        out += _U32.pack(len(value))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        out += _TAG_DICT
        out += _U32.pack(len(value))
        for key, item in value.items():
            _encode_into(key, out)
            _encode_into(item, out)
    else:
        raise StorageError(
            f"cannot encode value of type {type(value).__name__}")


def encode_value(value: object) -> bytes:
    """Encode a Python value into the self-describing binary format.

    Supported types: ``None``, ``bool``, ``int`` (arbitrary precision),
    ``float``, ``str``, ``bytes``, ``list``, ``tuple``, ``dict``.
    """
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _unpack_checked(layout: struct.Struct, data: bytes, offset: int):
    """``unpack_from`` that reports truncation as a StorageError."""
    if offset + layout.size > len(data):
        raise StorageError("truncated value: short fixed-width field")
    return layout.unpack_from(data, offset)


def _decode_from(data: bytes, offset: int) -> tuple[object, int]:
    if offset >= len(data):
        raise StorageError("truncated value: no tag byte")
    tag = data[offset:offset + 1]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_FLOAT:
        (value,) = _unpack_checked(_F64, data, offset)
        return value, offset + _F64.size
    if tag in (_TAG_INT, _TAG_NEG_INT, _TAG_STR, _TAG_BYTES):
        (length,) = _unpack_checked(_U32, data, offset)
        offset += _U32.size
        raw = data[offset:offset + length]
        if len(raw) != length:
            raise StorageError("truncated value body")
        offset += length
        if tag == _TAG_STR:
            try:
                return raw.decode("utf-8"), offset
            except UnicodeDecodeError as exc:
                raise StorageError(
                    f"malformed utf-8 in string value: {exc}") from None
        if tag == _TAG_BYTES:
            return raw, offset
        magnitude = int.from_bytes(raw, "little")
        return (magnitude if tag == _TAG_INT else -magnitude), offset
    if tag in (_TAG_LIST, _TAG_TUPLE):
        (count,) = _unpack_checked(_U32, data, offset)
        offset += _U32.size
        items = []
        for __ in range(count):
            item, offset = _decode_from(data, offset)
            items.append(item)
        return (items if tag == _TAG_LIST else tuple(items)), offset
    if tag == _TAG_DICT:
        (count,) = _unpack_checked(_U32, data, offset)
        offset += _U32.size
        result: dict = {}
        for __ in range(count):
            key, offset = _decode_from(data, offset)
            value, offset = _decode_from(data, offset)
            result[key] = value
        return result, offset
    raise StorageError(f"unknown value tag {tag!r}")


def decode_value(data: bytes) -> object:
    """Decode a value produced by :func:`encode_value`.

    Raises :class:`repro.errors.StorageError` if trailing bytes remain —
    a record must decode exactly.
    """
    value, offset = _decode_from(data, 0)
    if offset != len(data):
        raise StorageError(
            f"{len(data) - offset} trailing bytes after decoded value")
    return value


def pack_record(payload: bytes) -> bytes:
    """Frame a payload with length and CRC32 for on-disk storage."""
    return RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def unpack_record(data: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Read one framed record from ``data`` at ``offset``.

    Returns ``(payload, next_offset)``.  Raises
    :class:`repro.errors.StorageError` on a short read and
    :class:`repro.errors.ChecksumError` on checksum mismatch.
    """
    header_end = offset + RECORD_HEADER.size
    if header_end > len(data):
        raise StorageError("truncated record header")
    length, checksum = RECORD_HEADER.unpack_from(data, offset)
    payload = data[header_end:header_end + length]
    if len(payload) != length:
        raise StorageError("truncated record payload")
    if zlib.crc32(payload) != checksum:
        raise ChecksumError(
            f"record at offset {offset} failed checksum validation")
    return payload, header_end + length
