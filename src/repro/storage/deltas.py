"""Backward-delta version chains in the style of RCS.

The paper (§3): "Because version control is a central theme of Neptune, we
wanted effective storage of many versions of such data without copying each
individual item; for nodes this is provided by backward deltas similar to
RCS [Tic82]."

A :class:`DeltaStore` holds every version of one archive node's contents.
The *current* version is stored whole; each older version is a reverse
difference script against its successor, so:

- reading the current version is O(1) — by far the common case;
- reading K versions back costs K delta applications;
- checking in a new version costs one diff (new vs. previous current) and
  stores only the changed tokens.

:class:`FullCopyStore` is the baseline the benchmarks compare against: the
naive design that stores every version whole.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import VersionError
from repro.storage.diff import (
    Difference,
    DiffKind,
    apply_differences_bytes,
    diff_bytes,
    invert_differences,
)

__all__ = ["DeltaStore", "FullCopyStore", "KeyframeDeltaStore",
           "DeltaChainStats", "encode_script", "decode_script"]


@dataclass(frozen=True)
class DeltaChainStats:
    """Storage accounting for one version chain."""

    version_count: int
    current_bytes: int
    delta_bytes: int

    @property
    def total_bytes(self) -> int:
        """Bytes needed to store the whole chain."""
        return self.current_bytes + self.delta_bytes


def _encode_script(script: list[Difference]) -> list:
    """Difference script → encodable structure (lists of bytes tokens)."""
    return [
        [diff.kind.value, diff.position, list(diff.old), list(diff.new)]
        for diff in script
    ]


def _decode_script(data: list) -> list[Difference]:
    """Inverse of :func:`_encode_script`."""
    return [
        Difference(DiffKind(kind), position, tuple(old), tuple(new))
        for kind, position, old, new in data
    ]


# Public names: the wire protocol and persistence both ship scripts.
encode_script = _encode_script
decode_script = _decode_script


def _script_bytes(script: list[Difference]) -> int:
    """Approximate stored size of a script: the token payloads it carries."""
    return sum(
        sum(len(token) for token in diff.old)
        + sum(len(token) for token in diff.new)
        for diff in script
    )


class DeltaStore:
    """All versions of one byte string, stored as backward deltas.

    Versions are identified by strictly increasing integer times (the HAM's
    logical clock).  ``get(0)`` returns the current version; ``get(t)``
    returns the version in effect at time ``t`` (the latest version whose
    check-in time is <= ``t``).
    """

    def __init__(self, initial: bytes, time: int):
        if time <= 0:
            raise VersionError("version time must be positive")
        self._current = bytes(initial)
        self._times: list[int] = [time]
        # _deltas[i] transforms version i+1 back into version i
        # (both indices into _times); len(_deltas) == len(_times) - 1.
        self._deltas: list[list[Difference]] = []

    # ------------------------------------------------------------------
    # writing

    def check_in(self, contents: bytes, time: int) -> None:
        """Store a new current version with timestamp ``time``."""
        if time <= self._times[-1]:
            raise VersionError(
                f"version time {time} does not advance past "
                f"{self._times[-1]}")
        contents = bytes(contents)
        forward = diff_bytes(self._current, contents)
        self._deltas.append(invert_differences(forward))
        self._times.append(time)
        self._current = contents

    # ------------------------------------------------------------------
    # reading

    @property
    def current_time(self) -> int:
        """Timestamp of the current version."""
        return self._times[-1]

    @property
    def times(self) -> list[int]:
        """All version timestamps, oldest first."""
        return list(self._times)

    def version_index_at(self, time: int) -> int:
        """Index of the version in effect at ``time`` (0 = current)."""
        if time == 0:
            return len(self._times) - 1
        if time < self._times[0]:
            raise VersionError(
                f"no version exists at time {time} "
                f"(first version is at {self._times[0]})")
        # Latest version with check-in time <= requested time.
        return bisect.bisect_right(self._times, time) - 1

    def get(self, time: int = 0) -> bytes:
        """Contents at ``time`` (0 = current), walking backward deltas."""
        index = self.version_index_at(time)
        contents = self._current
        for step in range(len(self._deltas) - 1, index - 1, -1):
            contents = apply_differences_bytes(contents, self._deltas[step])
        return contents

    def get_exact(self, time: int) -> bytes:
        """Contents of the version checked in at exactly ``time``."""
        if time == 0 or time == self._times[-1]:
            return self._current
        # _times is ascending, so an exact match is a bisect probe away —
        # no linear scan over a long version chain.
        index = bisect.bisect_left(self._times, time)
        if index == len(self._times) or self._times[index] != time:
            raise VersionError(f"no version was checked in at time {time}")
        contents = self._current
        for step in range(len(self._deltas) - 1, index - 1, -1):
            contents = apply_differences_bytes(contents, self._deltas[step])
        return contents

    def rollback_last(self) -> None:
        """Drop the current version, restoring its predecessor.

        Transaction-abort primitive: O(one delta application), unlike a
        full-chain snapshot/restore.  Refuses to drop the initial version.
        """
        if not self._deltas:
            raise VersionError("cannot roll back the initial version")
        script = self._deltas.pop()
        self._times.pop()
        self._current = apply_differences_bytes(self._current, script)

    def clone(self) -> "DeltaStore":
        """Independent copy sharing the version payloads.

        ``_current`` is immutable ``bytes`` and the stored delta scripts
        are never mutated after check-in, so only the list spines need
        copying — the clone and the original can then diverge freely
        (copy-on-write transaction overlays rely on this).
        """
        copy = DeltaStore.__new__(DeltaStore)
        copy._current = self._current
        copy._times = list(self._times)
        copy._deltas = list(self._deltas)
        return copy

    # ------------------------------------------------------------------
    # accounting / persistence

    def stats(self) -> DeltaChainStats:
        """Storage accounting for benchmark B1."""
        return DeltaChainStats(
            version_count=len(self._times),
            current_bytes=len(self._current),
            delta_bytes=sum(_script_bytes(s) for s in self._deltas),
        )

    def to_record(self) -> dict:
        """Encodable snapshot of the whole chain (for the record heap)."""
        return {
            "current": self._current,
            "times": list(self._times),
            "deltas": [_encode_script(s) for s in self._deltas],
        }

    @classmethod
    def from_record(cls, record: dict) -> "DeltaStore":
        """Rebuild a chain from :meth:`to_record` output."""
        store = cls.__new__(cls)
        store._current = record["current"]
        store._times = list(record["times"])
        store._deltas = [_decode_script(s) for s in record["deltas"]]
        return store


class KeyframeDeltaStore:
    """Backward deltas with periodic full keyframes.

    The middle ground between :class:`DeltaStore` (minimal storage,
    O(depth) old-version access) and :class:`FullCopyStore` (maximal
    storage, O(1) access): every ``interval``-th version is stored
    whole, bounding any version's reconstruction to at most
    ``interval - 1`` delta applications *forward* from the keyframe at
    or before it.  Deltas here are therefore **forward** within a
    keyframe segment (keyframe → next versions), unlike the pure
    backward chain; the current version is still O(1) because the last
    version of the last segment is also kept whole.

    The benchmark B2 ablation measures the resulting access-latency
    plateau against the pure backward chain.
    """

    def __init__(self, initial: bytes, time: int, interval: int = 10):
        if time <= 0:
            raise VersionError("version time must be positive")
        if interval < 2:
            raise VersionError("keyframe interval must be >= 2")
        self._interval = interval
        self._times: list[int] = [time]
        #: Segment starts: version index → full contents.
        self._keyframes: dict[int, bytes] = {0: bytes(initial)}
        #: Forward delta for version i (reconstructs i from i-1), absent
        #: for keyframe versions.
        self._forward: dict[int, list[Difference]] = {}
        self._current = bytes(initial)

    def check_in(self, contents: bytes, time: int) -> None:
        """Store a new current version with timestamp ``time``."""
        if time <= self._times[-1]:
            raise VersionError(
                f"version time {time} does not advance past "
                f"{self._times[-1]}")
        contents = bytes(contents)
        index = len(self._times)
        if index % self._interval == 0:
            self._keyframes[index] = contents
        else:
            self._forward[index] = diff_bytes(self._current, contents)
        self._times.append(time)
        self._current = contents

    @property
    def current_time(self) -> int:
        """Timestamp of the current version."""
        return self._times[-1]

    @property
    def times(self) -> list[int]:
        """All version timestamps, oldest first."""
        return list(self._times)

    def get(self, time: int = 0) -> bytes:
        """Contents at ``time`` (0 = current)."""
        if time == 0 or time >= self._times[-1]:
            if time != 0 and time < self._times[0]:
                raise VersionError(f"no version exists at time {time}")
            return self._current
        if time < self._times[0]:
            raise VersionError(
                f"no version exists at time {time} "
                f"(first version is at {self._times[0]})")
        index = bisect.bisect_right(self._times, time) - 1
        keyframe_index = index - (index % self._interval)
        contents = self._keyframes[keyframe_index]
        for step in range(keyframe_index + 1, index + 1):
            contents = apply_differences_bytes(contents,
                                               self._forward[step])
        return contents

    def stats(self) -> DeltaChainStats:
        """Storage accounting: keyframes count toward history bytes."""
        history = sum(
            len(contents)
            for index, contents in self._keyframes.items()
            if index != len(self._times) - 1)
        history += sum(_script_bytes(script)
                       for script in self._forward.values())
        return DeltaChainStats(
            version_count=len(self._times),
            current_bytes=len(self._current),
            delta_bytes=history,
        )


class FullCopyStore:
    """Baseline version store: every version kept whole.

    Same interface as :class:`DeltaStore`; exists so benchmark B1/B2 can
    measure what backward deltas buy.
    """

    def __init__(self, initial: bytes, time: int):
        if time <= 0:
            raise VersionError("version time must be positive")
        self._versions: list[tuple[int, bytes]] = [(time, bytes(initial))]

    def check_in(self, contents: bytes, time: int) -> None:
        """Store a new current version with timestamp ``time``."""
        if time <= self._versions[-1][0]:
            raise VersionError(
                f"version time {time} does not advance past "
                f"{self._versions[-1][0]}")
        self._versions.append((time, bytes(contents)))

    @property
    def current_time(self) -> int:
        """Timestamp of the current version."""
        return self._versions[-1][0]

    @property
    def times(self) -> list[int]:
        """All version timestamps, oldest first."""
        return [time for time, __ in self._versions]

    def get(self, time: int = 0) -> bytes:
        """Contents at ``time`` (0 = current)."""
        if time == 0:
            return self._versions[-1][1]
        if time < self._versions[0][0]:
            raise VersionError(f"no version exists at time {time}")
        for stamp, contents in reversed(self._versions):
            if stamp <= time:
                return contents
        raise AssertionError("unreachable")  # pragma: no cover

    def stats(self) -> DeltaChainStats:
        """Storage accounting (every version counted whole)."""
        current = self._versions[-1][1]
        return DeltaChainStats(
            version_count=len(self._versions),
            current_bytes=len(current),
            delta_bytes=sum(
                len(contents) for __, contents in self._versions[:-1]),
        )
