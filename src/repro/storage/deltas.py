"""Backward-delta version chains in the style of RCS.

The paper (§3): "Because version control is a central theme of Neptune, we
wanted effective storage of many versions of such data without copying each
individual item; for nodes this is provided by backward deltas similar to
RCS [Tic82]."

A :class:`DeltaStore` holds every version of one archive node's contents.
The *current* version is stored whole; each older version is a reverse
difference script against its successor, so:

- reading the current version is O(1) — by far the common case;
- reading K versions back costs K delta applications;
- checking in a new version costs one diff (new vs. previous current) and
  stores only the changed tokens.

Two layers ride on top of the chains (see :mod:`repro.storage.cas` and
:mod:`repro.storage.blockcache`):

- every version is identified by a blake2b **content hash**, computed at
  check-in and carried for the chain's whole life; payloads a chain
  retains whole are interned (refcounted, deduplicated) in the owning
  graph's :class:`~repro.storage.cas.BlobCatalog`;
- old-version materializations are **memoized** in a process-wide block
  cache keyed by ``(chain identity, version hash)`` — the hash pins the
  exact bytes, so cached entries are immutable facts needing no
  invalidation, even as transactions roll back and re-check-in at the
  same chain position.  ``chain.cache = None`` disables memoization for
  one chain; assigning a private
  :class:`~repro.storage.blockcache.BlockCache` isolates it.

:class:`FullCopyStore` is the baseline the benchmarks compare against: the
naive design that stores every version whole.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass

from repro.errors import VersionError
from repro.storage import blockcache
from repro.storage.cas import content_hash
from repro.storage.diff import (
    Difference,
    DiffKind,
    apply_differences_bytes,
    diff_bytes,
    invert_differences,
)

__all__ = ["DeltaStore", "FullCopyStore", "KeyframeDeltaStore",
           "DeltaChainStats", "encode_script", "decode_script"]

#: Chain identities for cache keys.  A fresh id per constructed chain —
#: ``id()`` would be reusable after garbage collection.  Clones *share*
#: their original's id: the hash component makes every keyed value
#: immutable, so two diverging chains can only ever agree on a key when
#: they agree on the bytes.
_CHAIN_IDS = itertools.count(1)

#: Sentinel: "resolve the process-wide default cache at read time" —
#: distinct from None (memoization disabled).
_PROCESS_CACHE = object()


@dataclass(frozen=True)
class DeltaChainStats:
    """Storage accounting for one version chain."""

    version_count: int
    current_bytes: int
    delta_bytes: int

    @property
    def total_bytes(self) -> int:
        """Bytes needed to store the whole chain."""
        return self.current_bytes + self.delta_bytes


def _encode_script(script: list[Difference]) -> list:
    """Difference script → encodable structure (lists of bytes tokens)."""
    return [
        [diff.kind.value, diff.position, list(diff.old), list(diff.new)]
        for diff in script
    ]


def _decode_script(data: list) -> list[Difference]:
    """Inverse of :func:`_encode_script`."""
    return [
        Difference(DiffKind(kind), position, tuple(old), tuple(new))
        for kind, position, old, new in data
    ]


# Public names: the wire protocol and persistence both ship scripts.
encode_script = _encode_script
decode_script = _decode_script


def _script_bytes(script: list[Difference]) -> int:
    """Approximate stored size of a script: the token payloads it carries."""
    return sum(
        sum(len(token) for token in diff.old)
        + sum(len(token) for token in diff.new)
        for diff in script
    )


class _CachedChain:
    """Shared cache plumbing for the two delta-chain classes."""

    @property
    def cache(self):
        """The block cache memoizing this chain's materializations.

        Resolved per read, so reconfiguring the process-wide cache
        takes effect immediately.  Assign ``None`` to disable, or a
        private :class:`~repro.storage.blockcache.BlockCache` to
        isolate this chain (the differential suite runs all three).
        """
        if self._cache is _PROCESS_CACHE:
            return blockcache.default_cache()
        return self._cache

    @cache.setter
    def cache(self, value) -> None:
        self._cache = value

    def hash_at(self, index: int) -> bytes:
        """Content hash of version ``index`` (0 = oldest)."""
        return self._hashes[index]

    def _read(self, index: int) -> bytes:
        """Version ``index``, through the memoization cache."""
        if index == len(self._times) - 1:
            return self._current
        cache = self.cache
        if cache is None:
            return self._materialize(index)
        key = (self._chain_id, self._hashes[index])
        blob = cache.get(key)
        if blob is None:
            blob = self._materialize(index)
            cache.put(key, blob)
        return blob


class DeltaStore(_CachedChain):
    """All versions of one byte string, stored as backward deltas.

    Versions are identified by strictly increasing integer times (the HAM's
    logical clock).  ``get(0)`` returns the current version; ``get(t)``
    returns the version in effect at time ``t`` (the latest version whose
    check-in time is <= ``t``).
    """

    def __init__(self, initial: bytes, time: int, catalog=None):
        if time <= 0:
            raise VersionError("version time must be positive")
        initial = bytes(initial)
        digest = content_hash(initial)
        self._catalog = catalog
        if catalog is not None:
            initial, digest = catalog.intern(initial, digest)
        self._current = initial
        self._times: list[int] = [time]
        #: _hashes[i] is the content hash of version i — the cache key
        #: component, and the catalog key while version i is current.
        self._hashes: list[bytes] = [digest]
        # _deltas[i] transforms version i+1 back into version i
        # (both indices into _times); len(_deltas) == len(_times) - 1.
        self._deltas: list[list[Difference]] = []
        self._chain_id = next(_CHAIN_IDS)
        self._cache = _PROCESS_CACHE

    # ------------------------------------------------------------------
    # writing

    def check_in(self, contents: bytes, time: int) -> None:
        """Store a new current version with timestamp ``time``."""
        if time <= self._times[-1]:
            raise VersionError(
                f"version time {time} does not advance past "
                f"{self._times[-1]}")
        contents = bytes(contents)
        digest = content_hash(contents)
        previous_digest = self._hashes[-1]
        if self._catalog is not None:
            contents, digest = self._catalog.intern(contents, digest)
        forward = diff_bytes(self._current, contents)
        self._deltas.append(invert_differences(forward))
        self._times.append(time)
        self._hashes.append(digest)
        self._current = contents
        if self._catalog is not None:
            # The predecessor is now delta-represented, not retained
            # whole; its current-slot ref goes.  Under a transaction's
            # CatalogJournal this release is deferred to commit.
            self._catalog.release(previous_digest)

    # ------------------------------------------------------------------
    # reading

    @property
    def current_time(self) -> int:
        """Timestamp of the current version."""
        return self._times[-1]

    @property
    def times(self) -> list[int]:
        """All version timestamps, oldest first."""
        return list(self._times)

    def version_index_at(self, time: int) -> int:
        """Index of the version in effect at ``time`` (0 = current)."""
        if time == 0:
            return len(self._times) - 1
        if time < self._times[0]:
            raise VersionError(
                f"no version exists at time {time} "
                f"(first version is at {self._times[0]})")
        # Latest version with check-in time <= requested time.
        return bisect.bisect_right(self._times, time) - 1

    def get(self, time: int = 0) -> bytes:
        """Contents at ``time`` (0 = current); old versions memoized."""
        return self._read(self.version_index_at(time))

    def get_exact(self, time: int) -> bytes:
        """Contents of the version checked in at exactly ``time``."""
        if time == 0 or time == self._times[-1]:
            return self._current
        # _times is ascending, so an exact match is a bisect probe away —
        # no linear scan over a long version chain.
        index = bisect.bisect_left(self._times, time)
        if index == len(self._times) or self._times[index] != time:
            raise VersionError(f"no version was checked in at time {time}")
        return self._read(index)

    def _materialize(self, index: int) -> bytes:
        contents = self._current
        for step in range(len(self._deltas) - 1, index - 1, -1):
            contents = apply_differences_bytes(contents, self._deltas[step])
        return contents

    def rollback_last(self) -> None:
        """Drop the current version, restoring its predecessor.

        Transaction-abort primitive: O(one delta application), unlike a
        full-chain snapshot/restore.  Refuses to drop the initial
        version.  Only catalog refs move — cached materializations are
        keyed by content hash, so nothing needs invalidating even if a
        later check-in reuses this chain position.
        """
        if not self._deltas:
            raise VersionError("cannot roll back the initial version")
        script = self._deltas.pop()
        popped_digest = self._hashes.pop()
        self._times.pop()
        restored = apply_differences_bytes(self._current, script)
        if self._catalog is not None:
            self._catalog.release(popped_digest)
            restored, __ = self._catalog.intern(restored, self._hashes[-1])
        self._current = restored

    def clone(self) -> "DeltaStore":
        """Independent copy sharing the version payloads.

        ``_current`` is immutable ``bytes`` and the stored delta scripts
        are never mutated after check-in, so only the list spines need
        copying — the clone and the original can then diverge freely
        (copy-on-write transaction overlays rely on this).  Catalog refs
        are *shared*, owned by the logical chain lineage: the write-set
        machinery rebinds the clone to its transaction's catalog journal,
        which journals only the deltas the transaction itself makes.
        """
        copy = DeltaStore.__new__(DeltaStore)
        copy._current = self._current
        copy._times = list(self._times)
        copy._hashes = list(self._hashes)
        copy._deltas = list(self._deltas)
        copy._catalog = self._catalog
        copy._chain_id = self._chain_id
        copy._cache = self._cache
        return copy

    # ------------------------------------------------------------------
    # catalog attachment

    def rebind_catalog(self, catalog) -> None:
        """Point future intern/release traffic at ``catalog``.

        No refs move: used when a transaction clones the chain behind
        its catalog journal, and again when the commit publishes it back
        onto the base catalog.
        """
        self._catalog = catalog

    def attach_catalog(self, catalog) -> None:
        """Adopt ``catalog``, interning the retained-whole payload.

        Used when a chain is rebuilt from a record (snapshot load): the
        rebuilt chain takes its lineage's refs now.
        """
        self._catalog = catalog
        self._current, __ = catalog.intern(self._current, self._hashes[-1])

    # ------------------------------------------------------------------
    # accounting / persistence

    def stats(self) -> DeltaChainStats:
        """Storage accounting for benchmark B1."""
        return DeltaChainStats(
            version_count=len(self._times),
            current_bytes=len(self._current),
            delta_bytes=sum(_script_bytes(s) for s in self._deltas),
        )

    def to_record(self) -> dict:
        """Encodable snapshot of the whole chain (for the record heap)."""
        return {
            "current": self._current,
            "times": list(self._times),
            "hashes": list(self._hashes),
            "deltas": [_encode_script(s) for s in self._deltas],
        }

    @classmethod
    def from_record(cls, record: dict) -> "DeltaStore":
        """Rebuild a chain from :meth:`to_record` output.

        Records written before content addressing carry no ``hashes``;
        they are recomputed once here (one backward walk of the chain).
        """
        store = cls.__new__(cls)
        store._current = record["current"]
        store._times = list(record["times"])
        store._deltas = [_decode_script(s) for s in record["deltas"]]
        store._catalog = None
        store._chain_id = next(_CHAIN_IDS)
        store._cache = _PROCESS_CACHE
        hashes = record.get("hashes")
        if hashes:
            store._hashes = [bytes(digest) for digest in hashes]
        else:
            store._hashes = store._recompute_hashes()
        return store

    def _recompute_hashes(self) -> list[bytes]:
        hashes: list[bytes] = [b""] * len(self._times)
        contents = self._current
        hashes[-1] = content_hash(contents)
        for index in range(len(self._deltas) - 1, -1, -1):
            contents = apply_differences_bytes(contents,
                                               self._deltas[index])
            hashes[index] = content_hash(contents)
        return hashes


class KeyframeDeltaStore(_CachedChain):
    """Backward deltas with periodic full keyframes.

    The middle ground between :class:`DeltaStore` (minimal storage,
    O(depth) old-version access) and :class:`FullCopyStore` (maximal
    storage, O(1) access): every ``interval``-th version is stored
    whole, bounding any version's reconstruction to at most
    ``interval - 1`` delta applications *forward* from the keyframe at
    or before it.  Deltas here are therefore **forward** within a
    keyframe segment (keyframe → next versions), unlike the pure
    backward chain; the current version is still O(1) because the last
    version of the last segment is also kept whole.

    Interface parity with :class:`DeltaStore` (``get_exact``,
    ``rollback_last``, ``clone``, ``to_record``/``from_record``,
    catalog attachment, cache memoization) lets either chain type sit
    behind the blob catalog as a drop-in backend; keyframe payloads
    take one catalog ref each, on top of the current version's slot.

    The benchmark B2 ablation measures the resulting access-latency
    plateau against the pure backward chain.
    """

    def __init__(self, initial: bytes, time: int, interval: int = 10,
                 catalog=None):
        if time <= 0:
            raise VersionError("version time must be positive")
        if interval < 2:
            raise VersionError("keyframe interval must be >= 2")
        self._interval = interval
        self._catalog = catalog
        initial = bytes(initial)
        digest = content_hash(initial)
        if catalog is not None:
            initial, digest = catalog.intern(initial, digest)  # current
            initial, digest = catalog.intern(initial, digest)  # keyframe
        self._times: list[int] = [time]
        self._hashes: list[bytes] = [digest]
        #: Segment starts: version index → full contents.
        self._keyframes: dict[int, bytes] = {0: initial}
        #: Forward delta for version i (reconstructs i from i-1), absent
        #: for keyframe versions.
        self._forward: dict[int, list[Difference]] = {}
        self._current = initial
        self._chain_id = next(_CHAIN_IDS)
        self._cache = _PROCESS_CACHE

    def check_in(self, contents: bytes, time: int) -> None:
        """Store a new current version with timestamp ``time``."""
        if time <= self._times[-1]:
            raise VersionError(
                f"version time {time} does not advance past "
                f"{self._times[-1]}")
        contents = bytes(contents)
        digest = content_hash(contents)
        previous_digest = self._hashes[-1]
        index = len(self._times)
        if self._catalog is not None:
            contents, digest = self._catalog.intern(contents, digest)
        if index % self._interval == 0:
            if self._catalog is not None:
                # A keyframe is retained whole forever: its own ref, on
                # top of the current-version slot's.
                contents, digest = self._catalog.intern(contents, digest)
            self._keyframes[index] = contents
        else:
            self._forward[index] = diff_bytes(self._current, contents)
        self._times.append(time)
        self._hashes.append(digest)
        self._current = contents
        if self._catalog is not None:
            self._catalog.release(previous_digest)

    @property
    def current_time(self) -> int:
        """Timestamp of the current version."""
        return self._times[-1]

    @property
    def times(self) -> list[int]:
        """All version timestamps, oldest first."""
        return list(self._times)

    def get(self, time: int = 0) -> bytes:
        """Contents at ``time`` (0 = current); old versions memoized."""
        if time == 0 or time >= self._times[-1]:
            if time != 0 and time < self._times[0]:
                raise VersionError(f"no version exists at time {time}")
            return self._current
        if time < self._times[0]:
            raise VersionError(
                f"no version exists at time {time} "
                f"(first version is at {self._times[0]})")
        return self._read(bisect.bisect_right(self._times, time) - 1)

    def get_exact(self, time: int) -> bytes:
        """Contents of the version checked in at exactly ``time``."""
        if time == 0 or time == self._times[-1]:
            return self._current
        index = bisect.bisect_left(self._times, time)
        if index == len(self._times) or self._times[index] != time:
            raise VersionError(f"no version was checked in at time {time}")
        return self._read(index)

    def _materialize(self, index: int) -> bytes:
        # Always the pure keyframe walk — no current-version shortcut:
        # rollback_last materializes the new last version while
        # ``_current`` still holds the payload being dropped.
        keyframe_index = index - (index % self._interval)
        contents = self._keyframes[keyframe_index]
        for step in range(keyframe_index + 1, index + 1):
            contents = apply_differences_bytes(contents,
                                               self._forward[step])
        return contents

    def rollback_last(self) -> None:
        """Drop the current version, restoring its predecessor."""
        if len(self._times) == 1:
            raise VersionError("cannot roll back the initial version")
        index = len(self._times) - 1
        popped_digest = self._hashes.pop()
        self._times.pop()
        if index in self._keyframes:
            del self._keyframes[index]
            if self._catalog is not None:
                self._catalog.release(popped_digest)  # the keyframe ref
        else:
            del self._forward[index]
        if self._catalog is not None:
            self._catalog.release(popped_digest)  # the current slot's ref
        restored = self._materialize(len(self._times) - 1)
        if self._catalog is not None:
            restored, __ = self._catalog.intern(restored, self._hashes[-1])
        self._current = restored

    def clone(self) -> "KeyframeDeltaStore":
        """Independent copy sharing payloads (see :meth:`DeltaStore.clone`)."""
        copy = KeyframeDeltaStore.__new__(KeyframeDeltaStore)
        copy._interval = self._interval
        copy._times = list(self._times)
        copy._hashes = list(self._hashes)
        copy._keyframes = dict(self._keyframes)
        copy._forward = dict(self._forward)
        copy._current = self._current
        copy._catalog = self._catalog
        copy._chain_id = self._chain_id
        copy._cache = self._cache
        return copy

    def rebind_catalog(self, catalog) -> None:
        """Point future intern/release traffic at ``catalog`` (no refs move)."""
        self._catalog = catalog

    def attach_catalog(self, catalog) -> None:
        """Adopt ``catalog``, interning every retained-whole payload."""
        self._catalog = catalog
        self._current, __ = catalog.intern(self._current, self._hashes[-1])
        for index in sorted(self._keyframes):
            payload, __ = catalog.intern(self._keyframes[index],
                                         self._hashes[index])
            self._keyframes[index] = payload
        if (len(self._times) - 1) in self._keyframes:
            # Keep current and its keyframe slot the same object.
            self._current = self._keyframes[len(self._times) - 1]

    def stats(self) -> DeltaChainStats:
        """Storage accounting: keyframes count toward history bytes."""
        history = sum(
            len(contents)
            for index, contents in self._keyframes.items()
            if index != len(self._times) - 1)
        history += sum(_script_bytes(script)
                       for script in self._forward.values())
        return DeltaChainStats(
            version_count=len(self._times),
            current_bytes=len(self._current),
            delta_bytes=history,
        )

    def to_record(self) -> dict:
        """Encodable snapshot of the whole chain (for the record heap)."""
        return {
            "interval": self._interval,
            "current": self._current,
            "times": list(self._times),
            "hashes": list(self._hashes),
            "keyframes": {str(index): contents
                          for index, contents in self._keyframes.items()},
            "forward": {str(index): _encode_script(script)
                        for index, script in self._forward.items()},
        }

    @classmethod
    def from_record(cls, record: dict) -> "KeyframeDeltaStore":
        """Rebuild a chain from :meth:`to_record` output."""
        store = cls.__new__(cls)
        store._interval = record["interval"]
        store._current = record["current"]
        store._times = list(record["times"])
        store._keyframes = {int(index): contents
                            for index, contents
                            in record["keyframes"].items()}
        store._forward = {int(index): _decode_script(script)
                          for index, script in record["forward"].items()}
        store._catalog = None
        store._chain_id = next(_CHAIN_IDS)
        store._cache = _PROCESS_CACHE
        hashes = record.get("hashes")
        if hashes:
            store._hashes = [bytes(digest) for digest in hashes]
        else:
            store._hashes = [content_hash(store._materialize(index))
                             for index in range(len(store._times))]
        return store


class FullCopyStore:
    """Baseline version store: every version kept whole.

    Same interface as :class:`DeltaStore`; exists so benchmark B1/B2 can
    measure what backward deltas buy.
    """

    def __init__(self, initial: bytes, time: int):
        if time <= 0:
            raise VersionError("version time must be positive")
        self._times: list[int] = [time]
        self._payloads: list[bytes] = [bytes(initial)]

    def check_in(self, contents: bytes, time: int) -> None:
        """Store a new current version with timestamp ``time``."""
        if time <= self._times[-1]:
            raise VersionError(
                f"version time {time} does not advance past "
                f"{self._times[-1]}")
        self._times.append(time)
        self._payloads.append(bytes(contents))

    @property
    def current_time(self) -> int:
        """Timestamp of the current version."""
        return self._times[-1]

    @property
    def times(self) -> list[int]:
        """All version timestamps, oldest first."""
        return list(self._times)

    def get(self, time: int = 0) -> bytes:
        """Contents at ``time`` (0 = current).

        A bisect probe, like :meth:`DeltaStore.version_index_at` — the
        old linear reverse scan made long-history baselines quadratic.
        """
        if time == 0:
            return self._payloads[-1]
        if time < self._times[0]:
            raise VersionError(f"no version exists at time {time}")
        return self._payloads[bisect.bisect_right(self._times, time) - 1]

    def stats(self) -> DeltaChainStats:
        """Storage accounting (every version counted whole)."""
        return DeltaChainStats(
            version_count=len(self._times),
            current_bytes=len(self._payloads[-1]),
            delta_bytes=sum(len(contents)
                            for contents in self._payloads[:-1]),
        )
