"""Fixed-size page file with a write-back cache.

Neptune's HAM ran on Unix 4.2 BSD files; this pager is the equivalent
substrate here.  It divides a file into :data:`PAGE_SIZE`-byte pages,
caches recently used pages in memory (clock eviction), and exposes
``read_page`` / ``write_page`` / ``allocate_page`` to the record heap
layered above it.

Durability contract: dirty pages reach the OS only on :meth:`Pager.flush`
(or eviction), and :meth:`Pager.sync` additionally calls ``fsync``.  The
transaction manager relies on the write-ahead log — not the pager — for
durability, so the pager is free to cache aggressively (the standard
steal/no-force design).
"""

from __future__ import annotations

import os
import threading

from repro.errors import StorageError
from repro.testing import faults

__all__ = ["Pager", "PAGE_SIZE"]

#: Size of one page in bytes.  4 KiB matches common filesystem blocks.
PAGE_SIZE = 4096


class Pager:
    """Page-granular access to a single file, with an LRU-ish cache.

    Thread-safe: all public methods take an internal lock, so concurrent
    server sessions can share one pager.
    """

    def __init__(self, path: str | os.PathLike, cache_pages: int = 256):
        if cache_pages < 1:
            raise ValueError("cache_pages must be >= 1")
        self._path = os.fspath(path)
        self._lock = threading.RLock()
        self._cache: dict[int, bytearray] = {}
        self._dirty: set[int] = set()
        self._clock: list[int] = []       # eviction order (FIFO of page ids)
        self._cache_pages = cache_pages
        self._closed = False
        flags = os.O_RDWR | os.O_CREAT
        self._fd = os.open(self._path, flags, 0o644)
        size = os.fstat(self._fd).st_size
        # A non-page-multiple size is the signature of a crash mid-write
        # or mid-truncate.  Rejecting it would make recovery impossible,
        # so tolerate it: round the page count up and let short reads of
        # the torn tail zero-pad (see _get).
        self._page_count = (size + PAGE_SIZE - 1) // PAGE_SIZE

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def path(self) -> str:
        """Path of the underlying file."""
        return self._path

    @property
    def page_count(self) -> int:
        """Number of pages currently in the file."""
        with self._lock:
            return self._page_count

    def close(self) -> None:
        """Flush dirty pages and close the file descriptor."""
        with self._lock:
            if self._closed:
                return
            self.flush()
            os.close(self._fd)
            self._closed = True

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"{self._path}: pager is closed")

    # ------------------------------------------------------------------
    # page access

    def allocate_page(self) -> int:
        """Extend the file by one zeroed page and return its page id."""
        with self._lock:
            self._check_open()
            page_id = self._page_count
            self._page_count += 1
            self._install(page_id, bytearray(PAGE_SIZE), dirty=True)
            return page_id

    def read_page(self, page_id: int) -> bytes:
        """Return the PAGE_SIZE bytes of ``page_id`` (immutable copy)."""
        with self._lock:
            self._check_open()
            return bytes(self._get(page_id))

    def write_page(self, page_id: int, data: bytes) -> None:
        """Replace the contents of ``page_id`` (must be PAGE_SIZE long)."""
        if len(data) != PAGE_SIZE:
            raise StorageError(
                f"page write must be exactly {PAGE_SIZE} bytes, "
                f"got {len(data)}")
        with self._lock:
            self._check_open()
            self._bounds_check(page_id)
            self._install(page_id, bytearray(data), dirty=True)

    def write_slice(self, page_id: int, offset: int, data: bytes) -> None:
        """Overwrite ``data`` within a page starting at ``offset``."""
        if offset < 0 or offset + len(data) > PAGE_SIZE:
            raise StorageError("slice write exceeds page bounds")
        with self._lock:
            self._check_open()
            page = self._get(page_id)
            page[offset:offset + len(data)] = data
            self._dirty.add(page_id)

    # ------------------------------------------------------------------
    # durability

    def flush(self) -> None:
        """Write all dirty cached pages to the OS."""
        with self._lock:
            self._check_open()
            for page_id in sorted(self._dirty):
                self._write_through(page_id, self._cache[page_id])
            self._dirty.clear()

    def sync(self) -> None:
        """Flush and fsync: pages are durable on return."""
        with self._lock:
            self.flush()
            os.fsync(self._fd)

    # ------------------------------------------------------------------
    # cache internals

    def _bounds_check(self, page_id: int) -> None:
        if not 0 <= page_id < self._page_count:
            raise StorageError(
                f"{self._path}: page {page_id} out of range "
                f"(file has {self._page_count} pages)")

    def _get(self, page_id: int) -> bytearray:
        self._bounds_check(page_id)
        page = self._cache.get(page_id)
        if page is None:
            os.lseek(self._fd, page_id * PAGE_SIZE, os.SEEK_SET)
            raw = os.read(self._fd, PAGE_SIZE)
            if len(raw) != PAGE_SIZE:
                # The page was allocated but never flushed; treat as zeroes.
                raw = raw.ljust(PAGE_SIZE, b"\x00")
            page = bytearray(raw)
            self._install(page_id, page, dirty=False)
        return page

    def _install(self, page_id: int, page: bytearray, dirty: bool) -> None:
        if page_id not in self._cache and len(self._cache) >= self._cache_pages:
            self._evict_one()
        self._cache[page_id] = page
        if page_id not in self._clock:
            self._clock.append(page_id)
        if dirty:
            self._dirty.add(page_id)

    def _evict_one(self) -> None:
        victim = self._clock.pop(0)
        page = self._cache.pop(victim)
        if victim in self._dirty:
            self._write_through(victim, page)
            self._dirty.discard(victim)

    def _write_through(self, page_id: int, page: bytearray) -> None:
        if faults.INJECTOR is not None:
            faults.fire("pager.write", path=self._path,
                        offset=page_id * PAGE_SIZE, data=bytes(page))
        os.lseek(self._fd, page_id * PAGE_SIZE, os.SEEK_SET)
        os.write(self._fd, bytes(page))
