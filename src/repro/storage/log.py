"""Write-ahead log with force-at-commit and a tolerant recovery scanner.

The paper requires that the HAM "is transaction-oriented and provides for
complete recovery from any aborted transaction" (§2.2).  This WAL is the
durability substrate for that: every mutation writes an UPDATE record
carrying both undo and redo information *before* the change reaches the
main store; COMMIT records are forced (fsync) before a transaction is
acknowledged.

Recovery reads the log front-to-back.  A truncated or checksum-corrupt
tail — the signature of a crash mid-write — terminates the scan cleanly
rather than raising, because everything after the last valid record is by
construction from unacknowledged work.
"""

from __future__ import annotations

import enum
import os
import threading
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ChecksumError, RecoveryError, StorageError
from repro.storage.serializer import (
    RECORD_HEADER,
    decode_value,
    encode_value,
    pack_record,
    unpack_record,
)
from repro.testing import faults

__all__ = ["WriteAheadLog", "LogRecord", "LogRecordKind"]


class LogRecordKind(enum.Enum):
    """Kinds of records a transaction writes to the log."""

    BEGIN = "begin"
    UPDATE = "update"
    COMMIT = "commit"
    ABORT = "abort"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    """One log entry.

    ``payload`` is an encodable value (see serializer); for UPDATE records
    it is a dict with ``key``, ``undo`` and ``redo`` entries interpreted by
    the recovery manager.  ``lsn`` is assigned on append (byte offset).
    """

    kind: LogRecordKind
    txn_id: int
    payload: object = None
    lsn: int = -1

    def encode(self) -> bytes:
        return encode_value(
            {"kind": self.kind.value, "txn": self.txn_id,
             "payload": self.payload})

    @classmethod
    def decode(cls, raw: bytes, lsn: int) -> "LogRecord":
        data = decode_value(raw)
        if not isinstance(data, dict):
            raise RecoveryError(f"malformed log record at lsn {lsn}")
        try:
            kind = LogRecordKind(data["kind"])
            txn_id = data["txn"]
            payload = data.get("payload")
        except (KeyError, ValueError) as exc:
            raise RecoveryError(
                f"malformed log record at lsn {lsn}: {exc}") from exc
        return cls(kind=kind, txn_id=txn_id, payload=payload, lsn=lsn)


class WriteAheadLog:
    """Append-only log file.  Thread-safe.

    The log grows until :meth:`truncate` is called (after a checkpoint has
    made earlier records redundant).
    """

    def __init__(self, path: str | os.PathLike):
        self._path = os.fspath(path)
        self._lock = threading.Lock()
        self._fd = os.open(self._path, os.O_RDWR | os.O_CREAT | os.O_APPEND,
                           0o644)
        self._end = os.fstat(self._fd).st_size
        #: Everything below this offset has been covered by an fsync (or
        #: predates this open); commit-time fault injection may only
        #: corrupt bytes at or above it — acknowledged records are
        #: already on the medium.
        self._forced = self._end
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def path(self) -> str:
        """Path of the log file."""
        return self._path

    @property
    def end_lsn(self) -> int:
        """Byte offset one past the last appended record."""
        with self._lock:
            return self._end

    def close(self) -> None:
        """Close the log file descriptor."""
        with self._lock:
            if not self._closed:
                os.close(self._fd)
                self._closed = True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # writing

    def append(self, record: LogRecord) -> int:
        """Append a record; returns its LSN.  Does not force."""
        framed = pack_record(record.encode())
        with self._lock:
            if self._closed:
                raise StorageError(f"{self._path}: log is closed")
            lsn = self._end
            if faults.INJECTOR is not None:
                faults.fire("wal.append.pre-fsync", path=self._path,
                            offset=lsn, data=framed)
            os.write(self._fd, framed)
            self._end += len(framed)
            if faults.INJECTOR is not None:
                faults.fire("wal.append.post-fsync", path=self._path,
                            offset=lsn, length=len(framed))
            return lsn

    def force(self) -> None:
        """fsync the log: all appended records are durable on return."""
        with self._lock:
            if self._closed:
                raise StorageError(f"{self._path}: log is closed")
            if faults.INJECTOR is not None:
                faults.fire("wal.commit.force", path=self._path,
                            offset=self._forced,
                            length=self._end - self._forced)
            os.fsync(self._fd)
            self._forced = self._end

    def truncate(self) -> None:
        """Discard all records (used after a checkpoint)."""
        with self._lock:
            if self._closed:
                raise StorageError(f"{self._path}: log is closed")
            os.ftruncate(self._fd, 0)
            os.lseek(self._fd, 0, os.SEEK_SET)
            self._end = 0
            self._forced = 0

    # ------------------------------------------------------------------
    # recovery scan

    def scan(self) -> Iterator[LogRecord]:
        """Yield valid records front-to-back, stopping at a corrupt tail."""
        with self._lock:
            if self._closed:
                raise StorageError(f"{self._path}: log is closed")
            os.lseek(self._fd, 0, os.SEEK_SET)
            data = os.read(self._fd, self._end)
        offset = 0
        while offset < len(data):
            if offset + RECORD_HEADER.size > len(data):
                return  # torn header at the tail: crash artifact
            try:
                payload, next_offset = unpack_record(data, offset)
            except (ChecksumError, StorageError):
                return  # torn or corrupt tail: stop cleanly
            yield LogRecord.decode(payload, lsn=offset)
            offset = next_offset
