"""Write-ahead log with group commit and a tolerant recovery scanner.

The paper requires that the HAM "is transaction-oriented and provides for
complete recovery from any aborted transaction" (§2.2).  This WAL is the
durability substrate for that: a transaction's redo records (logical
operation + arguments) are buffered in memory and land here as one
pre-framed blob at commit time (:meth:`WriteAheadLog.append_many` — one
``os.write``, one lock acquisition per transaction), followed by a COMMIT
record that must be covered by an fsync before the transaction is
acknowledged.

The durability point is :meth:`WriteAheadLog.force_up_to` — *group
commit*.  A committer whose commit LSN is already covered by a concurrent
flusher's fsync returns immediately; otherwise it becomes the leader and
flushes on behalf of every waiter (condition-variable leader/follower).
An optional ``group_commit_window`` lets the leader linger briefly so
stragglers pile onto the same fsync.  The fsync itself runs *outside* the
append lock, so concurrent committers keep appending while the disk head
is busy.

Recovery reads the log front-to-back.  A truncated or checksum-corrupt
*tail* — the signature of a crash mid-write — terminates the scan cleanly
rather than raising, because everything after the durability point is by
construction from unacknowledged work.  Where that point sits cannot be
inferred from the log bytes alone: group commit lets several committers
append complete blobs before one shared fsync, so a crash can leave
valid frames *behind* damaged ones with none of them acknowledged.  The
log therefore records its durability point in a tiny sidecar file
(``<path>.mark``): after every fsync the forced watermark is published
there with a checksum, without an fsync of its own.  The persisted mark
is thus a *lower bound* of the acknowledged region — it was written only
after an fsync covering it returned, and losing the mark write merely
under-reports.  A checksum failure **below** the persisted mark is
damage to acknowledged history: silently replaying past it would hand
back a state missing committed work (or, on a replica, one that
diverges from the primary), so the scanner raises
:class:`repro.errors.RecoveryError` instead.  At or above the mark the
damage is a torn tail and the scan stops cleanly.  A missing or
unreadable sidecar degrades to mark 0 — full tolerance, the pre-sidecar
behavior.

For replication the log also exposes its durable byte region directly:
:meth:`WriteAheadLog.durable_end` / :meth:`WriteAheadLog.read_durable`
let a shipper stream exactly the fsync-covered prefix, and
:meth:`WriteAheadLog.append_raw` lets a replica ingest shipped frames
byte-for-byte.  LSNs handed out by the append/force API are *global*:
``base_lsn + file offset``, where ``base_lsn`` anchors a replica's log in
the primary's LSN space so promotion preserves LSN continuity.  Global
LSNs are **monotonic for the life of the graph**:
:meth:`WriteAheadLog.truncate` (checkpoint) advances ``base_lsn`` by the
discarded length instead of restarting the LSN space, so a commit LSN
handed to a session as its read-your-writes watermark stays comparable
against replica replay watermarks across any number of checkpoints.
``epoch`` still increments on every truncation — byte *offsets* into the
file do restart — and a subscriber that observes an epoch change must
resynchronize from a fresh snapshot rather than keep streaming.  The
sidecar persists ``base_lsn`` and ``epoch`` alongside the durability
mark, so reopening a log resumes the same global LSN space rather than
restarting at zero.
"""

from __future__ import annotations

import enum
import os
import struct
import threading
import time as _time
import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ChecksumError, RecoveryError, StorageError
from repro.storage.serializer import (
    RECORD_HEADER,
    decode_value,
    encode_value,
    pack_record,
    unpack_record,
)
from repro.testing import faults

__all__ = ["WriteAheadLog", "LogRecord", "LogRecordKind", "WalStats",
           "MARK_SUFFIX"]

#: Sidecar next to the log file holding the persisted durability mark.
MARK_SUFFIX = ".mark"

#: Sidecar format: forced watermark (file offset), global-LSN anchor
#: (``base_lsn``), truncation epoch, then CRC32 of those three fields.
_MARK = struct.Struct("<QQQI")


def _read_mark(path: str | os.PathLike) -> tuple[int, int, int]:
    """Persisted ``(mark, base_lsn, epoch)`` for the log at ``path``.

    A short, missing, or checksum-damaged sidecar reads as ``(0, 0, 0)``:
    the mark only ever *adds* protection, so an unreadable one degrades
    to the tolerate-everything behavior of a log that never had a
    sidecar, anchored at LSN 0.
    """
    try:
        with open(os.fspath(path) + MARK_SUFFIX, "rb") as handle:
            raw = handle.read(_MARK.size)
    except OSError:
        return 0, 0, 0
    if len(raw) != _MARK.size:
        return 0, 0, 0
    value, base, epoch, crc = _MARK.unpack(raw)
    if zlib.crc32(raw[:24]) != crc:
        return 0, 0, 0
    return value, base, epoch

_METRICS = None


def _metrics():
    # Imported lazily: ``repro.tools`` pulls in ``repro.core.ham`` which
    # imports this module, so a top-level import would be circular.
    global _METRICS
    if _METRICS is None:
        from repro.tools import metrics
        _METRICS = metrics.WAL
    return _METRICS


@dataclass(frozen=True)
class WalStats:
    """Snapshot of one log's write/flush counters.

    ``commit_forces`` counts :meth:`WriteAheadLog.force_up_to` calls (one
    per synchronous commit); ``group_fsyncs`` counts the fsyncs those
    calls actually performed, so ``fsyncs_per_commit`` < 1 means group
    commit is amortizing the durability point.  ``fsyncs`` additionally
    includes checkpoint-path :meth:`WriteAheadLog.force` calls.
    """

    appends: int = 0
    records: int = 0
    fsyncs: int = 0
    commit_forces: int = 0
    absorbed_commits: int = 0
    group_fsyncs: int = 0
    bytes_flushed: int = 0

    @property
    def fsyncs_per_commit(self) -> float:
        """Group fsyncs per synchronous commit (< 1 once groups form)."""
        if not self.commit_forces:
            return 0.0
        return self.group_fsyncs / self.commit_forces

    @property
    def mean_group_size(self) -> float:
        """Mean number of commits covered by one group fsync."""
        if not self.group_fsyncs:
            return 0.0
        return self.commit_forces / self.group_fsyncs

    @property
    def mean_bytes_per_flush(self) -> float:
        """Mean bytes made durable per fsync (commit path only)."""
        if not self.group_fsyncs:
            return 0.0
        return self.bytes_flushed / self.group_fsyncs


class LogRecordKind(enum.Enum):
    """Kinds of records a transaction writes to the log."""

    BEGIN = "begin"
    UPDATE = "update"
    COMMIT = "commit"
    ABORT = "abort"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    """One log entry.

    ``payload`` is an encodable value (see serializer); for UPDATE records
    it is a dict with ``key``, ``undo`` and ``redo`` entries interpreted by
    the recovery manager.  ``lsn`` is assigned on append (byte offset).
    """

    kind: LogRecordKind
    txn_id: int
    payload: object = None
    lsn: int = -1

    def encode(self) -> bytes:
        return encode_value(
            {"kind": self.kind.value, "txn": self.txn_id,
             "payload": self.payload})

    @classmethod
    def decode(cls, raw: bytes, lsn: int) -> "LogRecord":
        data = decode_value(raw)
        if not isinstance(data, dict):
            raise RecoveryError(f"malformed log record at lsn {lsn}")
        try:
            kind = LogRecordKind(data["kind"])
            txn_id = data["txn"]
            payload = data.get("payload")
        except (KeyError, ValueError) as exc:
            raise RecoveryError(
                f"malformed log record at lsn {lsn}: {exc}") from exc
        return cls(kind=kind, txn_id=txn_id, payload=payload, lsn=lsn)


class WriteAheadLog:
    """Append-only log file.  Thread-safe.

    The log grows until :meth:`truncate` is called (after a checkpoint has
    made earlier records redundant).
    """

    def __init__(self, path: str | os.PathLike,
                 group_commit_window: float = 0.0, base_lsn: int = 0):
        self._path = os.fspath(path)
        #: Global-LSN anchor: every LSN this log hands out is
        #: ``base_lsn + file offset``.  A replica opens its local log
        #: with ``base_lsn`` set to the primary LSN its bootstrap
        #: snapshot covered, so shipped bytes land at identical global
        #: LSNs and promotion keeps the LSN space continuous.
        self.base_lsn = int(base_lsn)
        #: Incremented by :meth:`truncate`; an epoch change tells log
        #: subscribers their cursor offsets are stale (resync needed).
        self.epoch = 0
        self._lock = threading.Lock()
        #: Signalled whenever a group flush finishes (or the leader dies)
        #: so waiting committers can re-check the forced watermark.
        self._cond = threading.Condition(self._lock)
        self._fd = os.open(self._path, os.O_RDWR | os.O_CREAT | os.O_APPEND,
                           0o644)
        self._end = os.fstat(self._fd).st_size
        #: Everything below this offset has been covered by an fsync (or
        #: predates this open); commit-time fault injection may only
        #: corrupt bytes at or above it — acknowledged records are
        #: already on the medium.
        self._forced = self._end
        self._mark_fd = os.open(self._path + MARK_SUFFIX,
                                os.O_RDWR | os.O_CREAT, 0o644)
        mark, saved_base, saved_epoch = _read_mark(self._path)
        #: The durability point :meth:`scan` judges damage against: the
        #: mark persisted by the *previous* incarnation, clamped to the
        #: file (a stale mark beyond a recreated log protects nothing).
        #: Unlike ``_forced`` — which treats everything that predates
        #: this open as flushed, for shipping — this only covers bytes
        #: an fsync *provably* returned for.  Each published mark
        #: advances it.
        self._acked_mark = min(mark, self._end)
        # Resume the global LSN space the previous incarnation published
        # (checkpoints advance ``base_lsn``; restarting at zero would
        # hand out commit LSNs below watermarks sessions already hold).
        # A caller that anchors explicitly — a replica bootstrapping
        # from a snapshot — wins over the sidecar.
        if base_lsn == 0 and (saved_base or saved_epoch):
            self.base_lsn = saved_base
            self.epoch = saved_epoch
        #: True while a leader is inside a group flush.
        self._flushing = False
        #: How long a group-flush leader lingers before capturing the
        #: flush target, letting straggler committers append into the
        #: same fsync.  0.0 (the default) flushes immediately.
        self.group_commit_window = float(group_commit_window)
        self._closed = False
        # Counters behind stats(); guarded by self._lock.
        self._appends = 0
        self._records = 0
        self._fsyncs = 0
        self._commit_forces = 0
        self._absorbed_commits = 0
        self._group_fsyncs = 0
        self._bytes_flushed = 0

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def path(self) -> str:
        """Path of the log file."""
        return self._path

    @property
    def end_lsn(self) -> int:
        """Global LSN one past the last appended record."""
        with self._lock:
            return self.base_lsn + self._end

    def durable_end(self) -> int:
        """Global LSN one past the last fsync-covered byte.

        Everything below it is on the medium; this is the high bound a
        log shipper may stream to subscribers (bytes above it could
        still be lost in a crash, and must never reach a replica ahead
        of the primary's own durability point).
        """
        with self._lock:
            return self.base_lsn + self._forced

    def close(self) -> None:
        """Close the log file descriptor."""
        with self._lock:
            if not self._closed:
                os.close(self._fd)
                os.close(self._mark_fd)
                self._closed = True
            # Waiting committers must not sleep forever on a dead log.
            self._cond.notify_all()

    def _publish_mark_locked(self, value: int, sync: bool = False) -> None:
        """Persist the durability mark; call with the lock held.

        Runs *after* the fsync whose coverage it records, so a persisted
        mark is always a lower bound of the acknowledged region — which
        is why the write itself needs no fsync on the commit path (a
        lost mark write only under-reports).  ``sync`` forces it down
        for the shrink-to-zero case: :meth:`truncate`/:meth:`rebase`
        must never leave an old, larger mark able to resurrect over a
        restarted offset space.  Every publish also records the current
        ``base_lsn`` and ``epoch``, so a reopened log resumes the same
        global LSN space.
        """
        body = struct.pack("<QQQ", value, self.base_lsn, self.epoch)
        os.pwrite(self._mark_fd, body + struct.pack("<I", zlib.crc32(body)),
                  0)
        if sync:
            os.fsync(self._mark_fd)
        self._acked_mark = value

    def stats(self) -> WalStats:
        """Consistent snapshot of this log's write/flush counters."""
        with self._lock:
            return WalStats(
                appends=self._appends,
                records=self._records,
                fsyncs=self._fsyncs,
                commit_forces=self._commit_forces,
                absorbed_commits=self._absorbed_commits,
                group_fsyncs=self._group_fsyncs,
                bytes_flushed=self._bytes_flushed,
            )

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # writing

    def append(self, record: LogRecord) -> int:
        """Append a record; returns its global LSN.  Does not force."""
        framed = pack_record(record.encode())
        with self._lock:
            return self.base_lsn + self._write_locked(framed, 1)

    def append_many(self, records: Iterable[LogRecord]) -> int:
        """Append records as one pre-framed blob; one write, one lock.

        This is the commit path: a transaction's buffered redo records
        (BEGIN, UPDATE*, COMMIT) are framed *outside* the log lock,
        concatenated, and land in a single ``os.write``.  Records of
        concurrent transactions therefore never interleave.  Returns the
        global LSN one past the blob — the LSN to hand to
        :meth:`force_up_to` as the commit's durability target.
        """
        framed = [pack_record(record.encode()) for record in records]
        blob = b"".join(framed)
        with self._lock:
            if not blob:
                if self._closed:
                    raise StorageError(f"{self._path}: log is closed")
                return self.base_lsn + self._end
            self._write_locked(blob, len(framed))
            return self.base_lsn + self._end

    def append_raw(self, data: bytes) -> int:
        """Append already-framed bytes verbatim; returns the new end LSN.

        The replica ingest path: shipped commit blobs are exactly the
        primary's framed bytes, so they land here unmodified — replica
        log content is byte-identical to the primary region it mirrors,
        and the same recovery scanner replays both.
        """
        if not data:
            return self.end_lsn
        with self._lock:
            self._write_locked(bytes(data), 0)
            return self.base_lsn + self._end

    def _write_locked(self, framed: bytes, records: int) -> int:
        """One append write under ``self._lock``; returns the start LSN.

        Fires the ``wal.append.*`` fault points exactly as the historic
        record-at-a-time path did, with ``data``/``length`` covering the
        whole blob.
        """
        if self._closed:
            raise StorageError(f"{self._path}: log is closed")
        lsn = self._end
        if faults.INJECTOR is not None:
            faults.fire("wal.append.pre-fsync", path=self._path,
                        offset=lsn, data=framed)
        os.write(self._fd, framed)
        self._end += len(framed)
        self._appends += 1
        self._records += records
        if faults.INJECTOR is not None:
            faults.fire("wal.append.post-fsync", path=self._path,
                        offset=lsn, length=len(framed))
        return lsn

    def force(self) -> None:
        """fsync the log: all appended records are durable on return.

        The checkpoint path — runs entirely under the lock because its
        callers are already quiesced.  Commits go through
        :meth:`force_up_to` instead.
        """
        with self._lock:
            if self._closed:
                raise StorageError(f"{self._path}: log is closed")
            if faults.INJECTOR is not None:
                faults.fire("wal.commit.force", path=self._path,
                            offset=self._forced,
                            length=self._end - self._forced)
            os.fsync(self._fd)
            self._fsyncs += 1
            self._forced = self._end
            self._publish_mark_locked(self._forced)

    def force_up_to(self, lsn: int) -> bool:
        """Block until every byte below ``lsn`` is durable (group commit).

        If a concurrent flusher's fsync already covers ``lsn``, return
        immediately (the commit was *absorbed*).  If a flush that may
        cover it is in flight, wait for it and re-check.  Otherwise
        become the leader: optionally linger ``group_commit_window``
        seconds so stragglers append into the same flush, capture the
        current log end as the target, fsync **outside the lock** (so
        concurrent committers keep appending), and advance the forced
        watermark for every waiter.

        Returns True if this call performed the fsync (leader), False if
        it rode a concurrent flush.  Crash safety: the leader slot is
        released in a ``finally`` and waiters re-check the watermark on
        every wakeup, so an injected fault in the leader cannot strand
        followers — they elect a new leader or die on the same sticky
        fault.
        """
        with self._cond:
            if self._closed:
                raise StorageError(f"{self._path}: log is closed")
            self._commit_forces += 1
            _metrics().increment("commit_forces")
            while True:
                if self.base_lsn + self._forced >= lsn:
                    self._absorbed_commits += 1
                    _metrics().increment("absorbed_commits")
                    return False
                if not self._flushing:
                    break
                self._cond.wait()
                if self._closed:
                    raise StorageError(f"{self._path}: log is closed")
            self._flushing = True
        try:
            if self.group_commit_window > 0.0:
                _time.sleep(self.group_commit_window)
            with self._cond:
                if self._closed:
                    raise StorageError(f"{self._path}: log is closed")
                base = self._forced
                target = self._end
                if faults.INJECTOR is not None:
                    faults.fire("wal.commit.force", path=self._path,
                                offset=base, length=target - base)
            os.fsync(self._fd)
            with self._cond:
                if target > self._forced:
                    self._forced = target
                self._publish_mark_locked(self._forced)
                self._fsyncs += 1
                self._group_fsyncs += 1
                self._bytes_flushed += target - base
            counters = _metrics()
            counters.increment("group_fsyncs")
            counters.increment("bytes_flushed", target - base)
            return True
        finally:
            with self._cond:
                self._flushing = False
                self._cond.notify_all()

    def truncate(self) -> None:
        """Discard all records (used after a checkpoint).

        Advances ``base_lsn`` by the discarded length, so global LSNs
        stay monotonic across checkpoints — a commit LSN handed out
        before the truncation is never reissued, and watermarks built
        from them (session read-your-writes, replica replay) stay
        comparable.  Bumps ``epoch``: byte *offsets* restart at zero, so
        any subscriber streaming this log must resynchronize from a
        fresh snapshot.
        """
        with self._lock:
            if self._closed:
                raise StorageError(f"{self._path}: log is closed")
            # Shrink the mark durably *before* the offset space restarts:
            # a crash in between leaves mark 0 over the old bytes, which
            # only under-protects.
            self._publish_mark_locked(0, sync=True)
            os.ftruncate(self._fd, 0)
            os.lseek(self._fd, 0, os.SEEK_SET)
            self.base_lsn += self._end
            self._end = 0
            self._forced = 0
            self.epoch += 1
            # Persist the advanced anchor + epoch (the first publish
            # above still carried the old ones).
            self._publish_mark_locked(0, sync=True)

    def rebase(self, base_lsn: int, epoch: int = 0) -> None:
        """Empty the log and re-anchor it at global LSN ``base_lsn``.

        A replica resynchronizing from a fresh primary snapshot calls
        this: the old shipped bytes are discarded and byte 0 now
        corresponds to the new bootstrap point, adopting the primary's
        ``epoch`` so subsequent cursors compare directly.
        """
        with self._lock:
            if self._closed:
                raise StorageError(f"{self._path}: log is closed")
            self._publish_mark_locked(0, sync=True)
            os.ftruncate(self._fd, 0)
            os.lseek(self._fd, 0, os.SEEK_SET)
            self._end = 0
            self._forced = 0
            self.base_lsn = int(base_lsn)
            self.epoch = int(epoch)
            # Re-publish with the new anchor + epoch in the sidecar.
            self._publish_mark_locked(0, sync=True)

    def discard_tail(self, lsn: int) -> None:
        """Cut the log back to global LSN ``lsn``, discarding later bytes.

        Promotion uses this: a replica's ingest path appends (and
        fsyncs) shipped bytes *before* parsing them, so at promotion the
        file can end with an incomplete frame.  The caller knows the
        last complete-frame boundary; everything past it is stream
        debris — bytes of frames never replayed, hence never part of any
        acknowledged state — and must not sit under the durability mark
        once local commits start appending after it.  ``lsn`` outside
        ``[base_lsn, end_lsn]`` raises :class:`StorageError`.
        """
        with self._lock:
            if self._closed:
                raise StorageError(f"{self._path}: log is closed")
            offset = lsn - self.base_lsn
            if offset < 0 or offset > self._end:
                raise StorageError(
                    f"{self._path}: cannot cut the tail at lsn {lsn}: "
                    f"outside [{self.base_lsn}, "
                    f"{self.base_lsn + self._end}]")
            if offset == self._end:
                return
            # Shrink the mark durably first: the old, larger mark must
            # never claim fsync coverage of bytes about to be cut.
            self._publish_mark_locked(min(self._acked_mark, offset),
                                      sync=True)
            os.ftruncate(self._fd, offset)
            os.lseek(self._fd, 0, os.SEEK_END)
            self._end = offset
            if self._forced > offset:
                self._forced = offset

    def read_durable(self, from_lsn: int, max_bytes: int = 1 << 20) -> bytes:
        """Raw framed bytes from ``from_lsn`` up to the durable end.

        The shipper's fetch primitive: returns at most ``max_bytes`` of
        the fsync-covered region starting at global LSN ``from_lsn``
        (empty when the cursor already sits at the durable end).  A
        cursor outside the durable region — behind ``base_lsn`` or ahead
        of the forced watermark — raises :class:`StorageError`; the
        caller must resynchronize from a snapshot.
        """
        with self._lock:
            if self._closed:
                raise StorageError(f"{self._path}: log is closed")
            offset = from_lsn - self.base_lsn
            if offset < 0 or offset > self._forced:
                raise StorageError(
                    f"{self._path}: lsn {from_lsn} is outside the durable "
                    f"region [{self.base_lsn}, "
                    f"{self.base_lsn + self._forced}]")
            length = min(self._forced - offset, max_bytes)
            if length <= 0:
                return b""
            return os.pread(self._fd, length, offset)

    # ------------------------------------------------------------------
    # recovery scan

    def scan(self) -> Iterator[LogRecord]:
        """Yield valid records front-to-back.

        Damage is judged against the persisted durability mark (module
        docstring).  An unparsable frame **at or above** the mark is a
        torn tail — an incomplete or corrupt artifact of an append that
        was never acknowledged (group commit lets complete blobs of
        *other* unacknowledged committers sit behind it; they are
        dropped with it, all-or-nothing) — and the scan stops cleanly.
        The same damage **below** the mark sits in a region an fsync
        provably covered before a commit was acknowledged: replaying
        past it would silently hand back a state missing committed work
        (or, on a replica, one that diverges from the primary), so the
        scan raises :class:`repro.errors.RecoveryError` instead.
        """
        with self._lock:
            if self._closed:
                raise StorageError(f"{self._path}: log is closed")
            os.lseek(self._fd, 0, os.SEEK_SET)
            data = os.read(self._fd, self._end)
            acked = self._acked_mark
        size = len(data)
        offset = 0
        while offset < size:
            damage = None
            if offset + RECORD_HEADER.size > size:
                damage = "torn header"
            else:
                length, _crc = RECORD_HEADER.unpack_from(data, offset)
                if offset + RECORD_HEADER.size + length > size:
                    damage = "torn payload"
            if damage is None:
                try:
                    payload, next_offset = unpack_record(data, offset)
                except ChecksumError:
                    damage = "checksum mismatch"
                except StorageError:
                    damage = "unframeable bytes"
            if damage is not None:
                if offset >= acked:
                    return  # tail past the durability mark: crash debris
                raise RecoveryError(
                    f"{self._path}: {damage} at lsn {offset}, below the "
                    f"durability mark {acked} — corruption of "
                    "acknowledged history, not a torn tail")
            yield LogRecord.decode(payload, lsn=offset)
            offset = next_offset
