"""Append-oriented record heap built on the pager.

The HAM's version-keeping design means records are almost never destroyed:
a "modify" writes a new record and re-points an index at it, while old
records remain reachable from version histories.  The heap therefore
optimizes for appends: records are framed (length + CRC32) and packed
back-to-back across pages; a :class:`RecordId` is the record's byte offset,
which stays valid for the life of the file.

Page 0 is the heap header: a magic string, a format version, and the
next-free byte offset (the append cursor).
"""

from __future__ import annotations

import struct
import threading
import zlib
from typing import Iterator

from repro.errors import ChecksumError, StorageError
from repro.storage.pager import Pager, PAGE_SIZE
from repro.storage.serializer import (
    RECORD_HEADER,
    pack_record,
    unpack_record,
)
from repro.testing import faults

__all__ = ["RecordHeap", "RecordId"]

#: A record identifier: its byte offset in the heap file.
RecordId = int

_MAGIC = b"NEPTHEAP"
_FORMAT_VERSION = 2
#: magic, version, append cursor, CRC32 of the preceding fields.
_HEADER = struct.Struct("<8sIQI")


class RecordHeap:
    """Variable-length record storage with stable record ids.

    Thread-safe.  Records are immutable once written; logical updates are
    the caller's job (append a new record, repoint the reference).

    ``align_records=True`` starts every record on a page boundary, so
    appending a record never dirties a page that holds earlier committed
    records — a crash mid-append then cannot corrupt them.
    ``rescue_header=True`` recovers from a torn or corrupt header page by
    re-deriving the append cursor from a full record scan.
    """

    def __init__(self, path: str, cache_pages: int = 256,
                 align_records: bool = False, rescue_header: bool = False):
        self._pager = Pager(path, cache_pages=cache_pages)
        self._lock = threading.RLock()
        self._align = align_records
        if self._pager.page_count == 0:
            self._pager.allocate_page()
            self._cursor = PAGE_SIZE  # data starts after the header page
            self._write_header()
        else:
            try:
                self._cursor = self._read_header()
            except StorageError:
                if not rescue_header:
                    raise
                self._cursor = self._rescue_cursor()
                self._write_header()

    # ------------------------------------------------------------------
    # lifecycle

    @property
    def path(self) -> str:
        """Path of the underlying heap file."""
        return self._pager.path

    def close(self) -> None:
        """Persist the header and close the underlying pager."""
        with self._lock:
            self._write_header()
            self._pager.close()

    def __enter__(self) -> "RecordHeap":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def flush(self) -> None:
        """Write header and all dirty pages to the OS."""
        with self._lock:
            self._write_header()
            self._pager.flush()

    def sync(self) -> None:
        """Flush and fsync the heap file."""
        with self._lock:
            self._write_header()
            self._pager.sync()

    # ------------------------------------------------------------------
    # record operations

    def append(self, payload: bytes) -> RecordId:
        """Append a record; returns its stable :class:`RecordId`."""
        framed = pack_record(payload)
        with self._lock:
            record_id = self._cursor
            if self._align and record_id % PAGE_SIZE:
                record_id += PAGE_SIZE - record_id % PAGE_SIZE
            if faults.INJECTOR is not None:
                faults.fire("heap.write", path=self.path, offset=record_id,
                            data=framed)
            self._write_bytes(record_id, framed)
            self._cursor = record_id + len(framed)
            return record_id

    def read(self, record_id: RecordId) -> bytes:
        """Read the record at ``record_id``; checksum-verified."""
        with self._lock:
            if not PAGE_SIZE <= record_id < self._cursor:
                raise StorageError(
                    f"record id {record_id} out of heap bounds")
            header = self._read_bytes(record_id, RECORD_HEADER.size)
            (length, __) = RECORD_HEADER.unpack(header)
            framed = header + self._read_bytes(
                record_id + RECORD_HEADER.size, length)
            payload, __ = unpack_record(framed)
            return payload

    def scan(self) -> Iterator[tuple[RecordId, bytes]]:
        """Iterate ``(record_id, payload)`` over all records in order."""
        with self._lock:
            cursor = PAGE_SIZE
            end = self._cursor
        while cursor < end:
            payload = self.read(cursor)
            yield cursor, payload
            cursor += RECORD_HEADER.size + len(payload)

    @property
    def size_bytes(self) -> int:
        """Total bytes used by heap records (excluding the header page)."""
        with self._lock:
            return self._cursor - PAGE_SIZE

    # ------------------------------------------------------------------
    # byte-level access across page boundaries

    def _write_bytes(self, offset: int, data: bytes) -> None:
        position = 0
        while position < len(data):
            page_id = (offset + position) // PAGE_SIZE
            in_page = (offset + position) % PAGE_SIZE
            while page_id >= self._pager.page_count:
                self._pager.allocate_page()
            chunk = data[position:position + PAGE_SIZE - in_page]
            self._pager.write_slice(page_id, in_page, chunk)
            position += len(chunk)

    def _read_bytes(self, offset: int, length: int) -> bytes:
        parts = []
        position = 0
        while position < length:
            page_id = (offset + position) // PAGE_SIZE
            in_page = (offset + position) % PAGE_SIZE
            want = min(length - position, PAGE_SIZE - in_page)
            page = self._pager.read_page(page_id)
            parts.append(page[in_page:in_page + want])
            position += want
        return b"".join(parts)

    # ------------------------------------------------------------------
    # header

    def _write_header(self) -> None:
        body = _HEADER.pack(_MAGIC, _FORMAT_VERSION, self._cursor, 0)
        checksum = zlib.crc32(body[:-4])
        self._pager.write_slice(0, 0, _HEADER.pack(
            _MAGIC, _FORMAT_VERSION, self._cursor, checksum))

    def _read_header(self) -> int:
        raw = self._pager.read_page(0)[:_HEADER.size]
        magic, version, cursor, checksum = _HEADER.unpack(raw)
        if magic != _MAGIC:
            raise StorageError(
                f"{self.path}: not a record heap (bad magic {magic!r})")
        if version != _FORMAT_VERSION:
            raise StorageError(
                f"{self.path}: unsupported heap format version {version}")
        if checksum != zlib.crc32(raw[:-4]):
            raise ChecksumError(
                f"{self.path}: heap header failed its checksum")
        return cursor

    def _rescue_cursor(self) -> int:
        """Re-derive the append cursor by walking the records.

        Valid frames advance packed; anything unreadable (torn tail,
        alignment padding — note a zeroed frame header is a *valid empty
        record*, since CRC32 of no bytes is 0) skips to the next page
        boundary.  Only non-empty records advance the rescued cursor, so
        zero padding never inflates it.
        """
        end = self._pager.page_count * PAGE_SIZE
        offset = PAGE_SIZE
        cursor = PAGE_SIZE
        while offset + RECORD_HEADER.size <= end:
            try:
                (length, __) = RECORD_HEADER.unpack(
                    self._read_bytes(offset, RECORD_HEADER.size))
                if offset + RECORD_HEADER.size + length > end:
                    raise StorageError("record extends past heap end")
                framed = self._read_bytes(
                    offset, RECORD_HEADER.size + length)
                unpack_record(framed)
            except (ChecksumError, StorageError):
                offset += PAGE_SIZE - offset % PAGE_SIZE or PAGE_SIZE
                continue
            offset += RECORD_HEADER.size + length
            if length:
                cursor = offset
        return cursor
