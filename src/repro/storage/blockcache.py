"""A process-wide, byte-sized block cache for materialized versions.

Reconstructing an old archive version walks a backward-delta chain
(:class:`repro.storage.deltas.DeltaStore`): O(depth) delta applications
per read.  Version-dense workloads — as-of-time queries, context reads
pinned at a fork time, replicas serving historical traversals — ask for
the *same* materializations over and over, so the chains memoize them
here.

Design (one shared :class:`BlockCache` per process by default):

- **Byte-sized, not entry-sized.**  Every entry's cost is its blob
  length; ``max_bytes`` bounds the total residency, so one cache
  setting means the same thing for ten-byte notes and megabyte CAD
  meshes.

- **Segmented LRU.**  Entries are admitted into a *probation* segment
  and promoted to a *protected* segment on their first re-reference.
  One-touch scans (a cold ``linearize_graph`` over the whole history)
  wash through probation without displacing the protected working set.

- **Frequency-based admission.**  A compact frequency sketch (a counter
  map halved periodically, TinyLFU-style) estimates each key's recent
  popularity; when the cache is full, a new blob is admitted only by
  evicting victims it is at least as popular as.  A burst of
  never-again-read materializations cannot flush blobs that keep
  getting hit.

- **Immutable facts.**  Keys are ``(chain identity, version hash)``
  pairs (see :mod:`repro.storage.cas`): the hash pins the exact bytes,
  so a cached entry can never go stale and no invalidation protocol —
  seqlock or otherwise — is needed.  MVCC rollback and transaction
  abort drop catalog refs only; stale-keyed entries simply age out.

Counters (``hits``/``misses``/``admissions``/``rejections``/
``evictions`` plus byte/entry gauges) mirror into the process-wide
:data:`repro.tools.metrics.CACHE` set, surfaced by
:func:`repro.tools.stats.render_cache` and the shell's ``cache``
command.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.tools.metrics import CACHE

__all__ = ["BlockCache", "CacheStats", "DEFAULT_MAX_BYTES",
           "configure", "default_cache", "set_default"]

#: Default residency bound of the process-wide cache (32 MiB).
DEFAULT_MAX_BYTES = 32 * 1024 * 1024


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time accounting of one :class:`BlockCache`."""

    max_bytes: int
    current_bytes: int
    entries: int
    hits: int
    misses: int
    admissions: int
    rejections: int
    evictions: int
    protected_bytes: int
    probation_bytes: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache."""
        lookups = self.hits + self.misses
        return (self.hits / lookups) if lookups else 0.0


class BlockCache:
    """Segmented-LRU byte cache with a frequency admission filter.

    Thread-safe; one instance is shared by every delta chain in the
    process (sessions included) unless a chain is given a private cache
    or ``None`` (disabled) via its ``cache`` attribute.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES,
                 protected_fraction: float = 0.8,
                 decay_interval: int = 8192):
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if not 0.0 < protected_fraction < 1.0:
            raise ValueError("protected_fraction must be in (0, 1)")
        self.max_bytes = int(max_bytes)
        self._protected_cap = max(1, int(self.max_bytes * protected_fraction))
        self._lock = threading.Lock()
        #: key -> blob; insertion order is LRU order (oldest first).
        self._probation: OrderedDict = OrderedDict()
        self._protected: OrderedDict = OrderedDict()
        self._probation_bytes = 0
        self._protected_bytes = 0
        #: TinyLFU-style frequency sketch: counts halve every
        #: ``decay_interval`` touches, so popularity is *recent*
        #: popularity and one-time floods decay away.
        self._freq: dict = {}
        self._decay_interval = int(decay_interval)
        self._touches = 0
        self.hits = 0
        self.misses = 0
        self.admissions = 0
        self.rejections = 0
        self.evictions = 0

    # ------------------------------------------------------------------

    def _touch(self, key) -> int:
        count = self._freq.get(key, 0) + 1
        self._freq[key] = count
        self._touches += 1
        if self._touches >= self._decay_interval:
            self._touches = 0
            self._freq = {k: half for k, v in self._freq.items()
                          if (half := v // 2) > 0}
            count = self._freq.get(key, 0)
        return count

    def _shrink_protected(self) -> None:
        # Demote protected-LRU entries back to probation's MRU end; the
        # total residency is unchanged, so no counters move.
        while self._protected_bytes > self._protected_cap:
            key, blob = self._protected.popitem(last=False)
            self._protected_bytes -= len(blob)
            self._probation[key] = blob
            self._probation_bytes += len(blob)

    def _evict_one(self) -> None:
        if self._probation:
            key, blob = self._probation.popitem(last=False)
            self._probation_bytes -= len(blob)
        else:
            key, blob = self._protected.popitem(last=False)
            self._protected_bytes -= len(blob)
        self.evictions += 1
        CACHE.increment("evictions")

    def _victim_key(self):
        if self._probation:
            return next(iter(self._probation))
        return next(iter(self._protected))

    def _gauges(self) -> None:
        CACHE.record("cached_bytes",
                     self._probation_bytes + self._protected_bytes)
        CACHE.record("cached_entries",
                     len(self._probation) + len(self._protected))

    # ------------------------------------------------------------------

    def get(self, key) -> bytes | None:
        """The cached blob for ``key``, or None on a miss."""
        with self._lock:
            self._touch(key)
            blob = self._protected.get(key)
            if blob is not None:
                self._protected.move_to_end(key)
                self.hits += 1
                CACHE.increment("hits")
                return blob
            blob = self._probation.pop(key, None)
            if blob is not None:
                # Second touch: promote out of probation.
                self._probation_bytes -= len(blob)
                self._protected[key] = blob
                self._protected_bytes += len(blob)
                self._shrink_protected()
                self.hits += 1
                CACHE.increment("hits")
                return blob
            self.misses += 1
            CACHE.increment("misses")
            return None

    def put(self, key, blob: bytes) -> bool:
        """Offer ``blob`` under ``key``; returns True when resident."""
        cost = len(blob)
        with self._lock:
            if key in self._probation or key in self._protected:
                return True
            if cost > self.max_bytes:
                self.rejections += 1
                CACHE.increment("rejections")
                return False
            freq = self._touch(key)
            while (self._probation_bytes + self._protected_bytes + cost
                   > self.max_bytes):
                # Admission duel: the newcomer must be at least as
                # popular as each victim it displaces (ties go to the
                # newcomer — recency breaks them).
                if self._freq.get(self._victim_key(), 0) > freq:
                    self.rejections += 1
                    CACHE.increment("rejections")
                    self._gauges()
                    return False
                self._evict_one()
            self._probation[key] = blob
            self._probation_bytes += cost
            self.admissions += 1
            CACHE.increment("admissions")
            self._gauges()
            return True

    # ------------------------------------------------------------------

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._probation or key in self._protected

    def __len__(self) -> int:
        with self._lock:
            return len(self._probation) + len(self._protected)

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._probation_bytes + self._protected_bytes

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._probation.clear()
            self._protected.clear()
            self._probation_bytes = 0
            self._protected_bytes = 0
            self._freq.clear()
            self._touches = 0
            self._gauges()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                max_bytes=self.max_bytes,
                current_bytes=self._probation_bytes + self._protected_bytes,
                entries=len(self._probation) + len(self._protected),
                hits=self.hits,
                misses=self.misses,
                admissions=self.admissions,
                rejections=self.rejections,
                evictions=self.evictions,
                protected_bytes=self._protected_bytes,
                probation_bytes=self._probation_bytes,
            )


# ----------------------------------------------------------------------
# The process-wide default instance.  Delta chains resolve their cache
# through :func:`default_cache` on every read, so reconfiguring takes
# effect for every open graph and session at once.

_default = BlockCache()
_default_lock = threading.Lock()


def default_cache() -> BlockCache:
    """The process-wide shared cache instance."""
    return _default


def configure(max_bytes: int) -> BlockCache:
    """Replace the process-wide cache with a fresh one of ``max_bytes``.

    Called by ``HAM.open_graph(cache_bytes=...)``; returns the new
    instance.  Existing chains pick it up on their next read.
    """
    global _default
    with _default_lock:
        _default = BlockCache(max_bytes=max_bytes)
        return _default


def set_default(cache: BlockCache) -> BlockCache:
    """Install ``cache`` as the process-wide instance; returns the old one.

    Test hook: lets a suite swap in a private instance and restore the
    original afterwards.
    """
    global _default
    with _default_lock:
        previous = _default
        _default = cache
        return previous
