"""Content-addressable storage for node-content versions.

Every payload a version chain retains *whole* — a backward chain's
current version, a keyframe chain's keyframes, a file node's contents —
is keyed by its blake2b content hash in the owning graph's
:class:`BlobCatalog`.  The catalog interns payloads: identical bytes
checked into different versions, contexts (a context copy re-checks the
same contents into a fresh node), or nodes are stored once and shared by
reference, with a refcount tracking how many chain slots retain each
blob.

What the hashes buy:

- **Dedup accounting** — :meth:`BlobCatalog.stats` measures the
  logical-vs-stored byte ratio (benchmark B16's dedup column).
- **Cache keys** — a version's hash plus its chain's identity key the
  block cache (:mod:`repro.storage.blockcache`): the hash pins the
  exact bytes, so cached materializations are immutable facts that
  never need invalidating.
- **Manifest bootstrap** — ``repl_snapshot`` ships a *stripped*
  snapshot (payload sites replaced by ``None``; the hashes are already
  in every chain record) plus only the blobs the replica reports it
  does not hold, so re-bootstrapping a replica that kept its old
  snapshot transfers a near-empty diff
  (:func:`strip_snapshot_blobs` / :func:`inflate_snapshot_blobs`).

Transactions never release refs early: a :class:`CatalogJournal` wraps
the catalog for the life of a write-set overlay — interns land in the
shared catalog immediately (so concurrent transactions dedup against
each other), releases are deferred to commit, and abort releases only
what the transaction interned.  Readers never consult the catalog at
all: every chain keeps direct references to its payload bytes, so a
release can never snatch a blob out from under a pinned MVCC reader.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass

from repro.errors import StorageError
from repro.tools.metrics import CACHE as _CACHE

__all__ = ["BlobCatalog", "CatalogJournal", "CatalogStats", "DIGEST_SIZE",
           "MIN_SHIPPED_BLOB", "collect_snapshot_blobs", "content_hash",
           "inflate_snapshot_blobs", "strip_snapshot_blobs"]

#: blake2b digest width.  20 bytes (160 bits) keeps manifests compact
#: while leaving collision odds far below memory-corruption odds.
DIGEST_SIZE = 20

#: Payloads smaller than this ship inline in snapshots rather than as
#: catalog blobs: a 20-byte digest plus framing buys nothing on them.
MIN_SHIPPED_BLOB = 64


def content_hash(payload: bytes) -> bytes:
    """The content digest keying ``payload`` everywhere in the system."""
    return hashlib.blake2b(payload, digest_size=DIGEST_SIZE).digest()


@dataclass(frozen=True)
class CatalogStats:
    """Dedup accounting for one :class:`BlobCatalog`."""

    blobs: int
    refs: int
    stored_bytes: int
    logical_bytes: int

    @property
    def dedup_ratio(self) -> float:
        """Logical bytes per stored byte (1.0 = nothing deduplicated)."""
        if self.stored_bytes == 0:
            return 1.0
        return self.logical_bytes / self.stored_bytes


class BlobCatalog:
    """Refcounted intern pool of retained-whole payloads, hash-keyed.

    Thread-safe.  One per :class:`~repro.core.graph.GraphStore`; chains
    take one ref per slot that retains a payload whole and release it
    when the slot moves on (superseded current, rolled-back version,
    rewritten file contents).  Readers hold payload bytes directly and
    never go through the catalog, so refcounts govern only the manifest,
    the dedup accounting, and snapshot shipping — never liveness.
    """

    def __init__(self):
        self._lock = threading.Lock()
        #: digest -> [payload, refcount]
        self._blobs: dict[bytes, list] = {}

    def intern(self, payload: bytes,
               digest: bytes | None = None) -> tuple[bytes, bytes]:
        """Store (or find) ``payload``; returns ``(canonical, digest)``.

        The returned payload is the catalog's canonical object for those
        bytes — callers keep *it*, so identical contents share one
        object in memory, not just one catalog entry.
        """
        payload = bytes(payload)
        if digest is None:
            digest = content_hash(payload)
        with self._lock:
            entry = self._blobs.get(digest)
            if entry is None:
                self._blobs[digest] = [payload, 1]
                _CACHE.increment("interned_blobs")
            else:
                entry[1] += 1
                payload = entry[0]
                _CACHE.increment("dedup_hits")
        return payload, digest

    def release(self, digest: bytes) -> None:
        """Drop one ref on ``digest``; the entry goes at zero refs."""
        with self._lock:
            entry = self._blobs.get(digest)
            if entry is None:
                return  # already gone (idempotent under journal replays)
            entry[1] -= 1
            if entry[1] <= 0:
                del self._blobs[digest]

    def get(self, digest: bytes) -> bytes | None:
        with self._lock:
            entry = self._blobs.get(digest)
            return entry[0] if entry is not None else None

    def __contains__(self, digest: bytes) -> bool:
        with self._lock:
            return digest in self._blobs

    def __len__(self) -> int:
        with self._lock:
            return len(self._blobs)

    def manifest(self) -> list[bytes]:
        """Every digest currently retained, sorted."""
        with self._lock:
            return sorted(self._blobs)

    def payloads(self) -> dict[bytes, bytes]:
        """A ``digest -> payload`` copy (resync hands this to inflate)."""
        with self._lock:
            return {digest: entry[0]
                    for digest, entry in self._blobs.items()}

    def stats(self) -> CatalogStats:
        with self._lock:
            refs = 0
            stored = 0
            logical = 0
            for payload, count in self._blobs.values():
                refs += count
                stored += len(payload)
                logical += len(payload) * count
            return CatalogStats(blobs=len(self._blobs), refs=refs,
                                stored_bytes=stored, logical_bytes=logical)


class CatalogJournal:
    """Transaction-scoped catalog view: intern now, release at commit.

    A write-set overlay's cloned records intern through this journal so
    their dedup lands in the shared catalog immediately, while releases
    (superseded versions) stay pending until the transaction's fate is
    known:

    - :meth:`commit` applies the deferred releases — the superseded
      payloads really are no longer retained;
    - :meth:`abort` instead releases everything the transaction
      interned, restoring the catalog to its pre-transaction refcounts.
    """

    def __init__(self, base: BlobCatalog):
        self.base = base
        self._interned: list[bytes] = []
        self._released: list[bytes] = []

    def intern(self, payload: bytes,
               digest: bytes | None = None) -> tuple[bytes, bytes]:
        payload, digest = self.base.intern(payload, digest)
        self._interned.append(digest)
        return payload, digest

    def release(self, digest: bytes) -> None:
        self._released.append(digest)

    def get(self, digest: bytes) -> bytes | None:
        return self.base.get(digest)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self.base

    def commit(self) -> None:
        """The transaction published: apply its deferred releases."""
        released, self._released = self._released, []
        self._interned = []
        for digest in released:
            self.base.release(digest)

    def abort(self) -> None:
        """The transaction dropped: un-intern everything it added."""
        interned, self._interned = self._interned, []
        self._released = []
        for digest in interned:
            self.base.release(digest)


# ----------------------------------------------------------------------
# Snapshot blob surgery: the payload sites inside an encodable graph
# snapshot (see GraphStore.to_snapshot) whose digests the chain records
# already carry, so a payload can travel as a hash reference.

def _archive_sites(archive: dict):
    hashes = archive.get("hashes")
    if not hashes:
        return  # pre-catalog record: nothing addressable by hash
    yield archive, "current", bytes(hashes[-1])
    keyframes = archive.get("keyframes")
    if keyframes:
        for key in keyframes:
            yield keyframes, key, bytes(hashes[int(key)])


def _node_sites(record: dict):
    archive = record.get("archive")
    if archive is not None:
        yield from _archive_sites(archive)
    file_hash = record.get("file_hash")
    if file_hash is not None:
        yield record, "file_contents", bytes(file_hash)


def collect_snapshot_blobs(snapshot: dict) -> dict[bytes, bytes]:
    """``digest -> payload`` for every hash-addressable site present.

    Used by a restarting replica to harvest the blobs its previous
    on-disk snapshot already holds, so ``repl_snapshot(have=...)`` can
    skip shipping them.  Sites already stripped (``None``) or below the
    shipping threshold are ignored.
    """
    blobs: dict[bytes, bytes] = {}
    for record in snapshot.get("nodes", ()):
        for container, key, digest in _node_sites(record):
            payload = container[key]
            if payload is not None and len(payload) >= MIN_SHIPPED_BLOB:
                blobs[digest] = bytes(payload)
    return blobs


def strip_snapshot_blobs(snapshot: dict,
                         min_bytes: int = MIN_SHIPPED_BLOB,
                         ) -> dict[bytes, bytes]:
    """Replace large payloads with ``None``; returns ``digest -> payload``.

    Mutates ``snapshot`` in place — callers pass a freshly built
    snapshot they own.  The digests stay derivable from each record's
    ``hashes``/``file_hash`` fields, so no marker is needed: ``None`` at
    a payload site means "look it up by hash".
    """
    blobs: dict[bytes, bytes] = {}
    for record in snapshot.get("nodes", ()):
        for container, key, digest in _node_sites(record):
            payload = container[key]
            if payload is None or len(payload) < min_bytes:
                continue
            blobs[digest] = bytes(payload)
            container[key] = None
    return blobs


def inflate_snapshot_blobs(snapshot: dict, lookup) -> dict:
    """Restore stripped payload sites through ``lookup(digest)``.

    The inverse of :func:`strip_snapshot_blobs`; raises
    :class:`~repro.errors.StorageError` when a referenced blob is
    missing from both the shipped set and the local holdings.
    """
    for record in snapshot.get("nodes", ()):
        for container, key, digest in _node_sites(record):
            if container[key] is None:
                payload = lookup(digest)
                if payload is None:
                    raise StorageError(
                        f"snapshot references blob {digest.hex()} "
                        f"but it was neither shipped nor held locally")
                container[key] = bytes(payload)
    return snapshot
