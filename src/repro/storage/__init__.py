"""Low-level storage substrate for the HAM.

This package provides everything the Hypertext Abstract Machine needs to
persist a hypergraph on ordinary files:

- :mod:`repro.storage.diff` — Myers diff engine producing the Appendix's
  ``Difference`` records, plus a three-way merge used by contexts.
- :mod:`repro.storage.deltas` — RCS-style backward-delta store: the current
  version of a byte string is kept whole, older versions as reverse deltas.
- :mod:`repro.storage.serializer` — compact, checksummed binary record
  encoding used by the heap and the write-ahead log.
- :mod:`repro.storage.pager` — fixed-size page file with an in-memory cache.
- :mod:`repro.storage.heap` — variable-length record heap built on the pager.
- :mod:`repro.storage.log` — append-only write-ahead log with force-at-commit
  semantics and a recovery scanner.
"""

from repro.storage.diff import (
    Difference,
    DiffKind,
    diff_bytes,
    diff_lines,
    diff_sequences,
    apply_differences,
    apply_differences_bytes,
    invert_differences,
    merge3,
    merge3_bytes,
    MergeResult,
)
from repro.storage.deltas import DeltaStore, DeltaChainStats
from repro.storage.serializer import (
    pack_record,
    unpack_record,
    encode_value,
    decode_value,
)
from repro.storage.pager import Pager, PAGE_SIZE
from repro.storage.heap import RecordHeap, RecordId
from repro.storage.log import WriteAheadLog, LogRecord, LogRecordKind

__all__ = [
    "Difference",
    "DiffKind",
    "diff_bytes",
    "diff_lines",
    "diff_sequences",
    "apply_differences",
    "apply_differences_bytes",
    "invert_differences",
    "merge3",
    "merge3_bytes",
    "MergeResult",
    "DeltaStore",
    "DeltaChainStats",
    "pack_record",
    "unpack_record",
    "encode_value",
    "decode_value",
    "Pager",
    "PAGE_SIZE",
    "RecordHeap",
    "RecordId",
    "WriteAheadLog",
    "LogRecord",
    "LogRecordKind",
]
