"""Myers diff engine and three-way merge.

The Appendix defines the atomic domain ``Difference: a deletion, insertion
or replacement``; ``getNodeDifferences`` returns a ``Difference*`` between
two versions of a node.  This module computes such difference scripts with
the classic Myers O(ND) algorithm, applies them, and inverts them (the
inversion is what makes *backward* deltas cheap: storing the inverse script
of an edit lets us reconstruct the older version from the newer one).

Diffs operate on token sequences.  Node contents are uninterpreted bytes at
the HAM level, so the default tokenization splits on newlines when the data
looks line-structured and falls back to fixed-size byte chunks otherwise —
mirroring how RCS-style tools behave on text versus binary data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Sequence

__all__ = [
    "DiffKind",
    "Difference",
    "diff_sequences",
    "diff_lines",
    "diff_bytes",
    "apply_differences",
    "apply_differences_bytes",
    "invert_differences",
    "merge3",
    "merge3_bytes",
    "MergeResult",
]

#: Chunk size used when diffing binary (non line-structured) data.
_BINARY_CHUNK = 64


class DiffKind(enum.Enum):
    """The three difference kinds named by the paper's Appendix."""

    INSERT = "insert"
    DELETE = "delete"
    REPLACE = "replace"


@dataclass(frozen=True)
class Difference:
    """One edit in a difference script.

    Positions are token offsets into the *old* sequence.  ``old`` holds the
    tokens removed (empty for an insertion) and ``new`` the tokens added
    (empty for a deletion).  A replacement carries both.
    """

    kind: DiffKind
    position: int
    old: tuple
    new: tuple

    def __post_init__(self) -> None:
        if self.kind is DiffKind.INSERT and self.old:
            raise ValueError("insert difference must not remove tokens")
        if self.kind is DiffKind.DELETE and self.new:
            raise ValueError("delete difference must not add tokens")
        if self.kind is DiffKind.REPLACE and not (self.old and self.new):
            raise ValueError("replace difference needs both old and new")

    @property
    def old_length(self) -> int:
        """Number of tokens this edit consumes from the old sequence."""
        return len(self.old)

    @property
    def new_length(self) -> int:
        """Number of tokens this edit produces in the new sequence."""
        return len(self.new)


def _myers_matches(
    old: Sequence[Hashable],
    new: Sequence[Hashable],
    obase: int,
    nbase: int,
    out: list[tuple[int, int]],
) -> None:
    """Collect matched ``(old_index, new_index)`` pairs along a shortest
    edit path, using Myers' greedy algorithm with a recorded trace.

    Appended pairs are strictly increasing in both coordinates, offset by
    ``obase``/``nbase``.
    """
    n, m = len(old), len(new)
    if n == 0 or m == 0:
        return
    # Forward pass: v[k] is the furthest x on diagonal k after d edits.
    trace: list[dict[int, int]] = []
    v: dict[int, int] = {1: 0}
    found_d = -1
    for d in range(n + m + 1):
        trace.append(dict(v))
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v.get(k - 1, -1) < v.get(k + 1, -1)):
                x = v.get(k + 1, 0)
            else:
                x = v.get(k - 1, 0) + 1
            y = x - k
            while x < n and y < m and old[x] == new[y]:
                x += 1
                y += 1
            v[k] = x
            if x >= n and y >= m:
                found_d = d
                break
        if found_d >= 0:
            break
    # Backward pass: walk the trace from (n, m) back to (0, 0), emitting
    # the diagonal (snake) moves, which are the matched token pairs.
    matches_rev: list[tuple[int, int]] = []
    x, y = n, m
    for d in range(found_d, 0, -1):
        vd = trace[d]
        k = x - y
        if k == -d or (k != d and vd.get(k - 1, -1) < vd.get(k + 1, -1)):
            prev_k = k + 1
        else:
            prev_k = k - 1
        prev_x = vd.get(prev_k, 0)
        prev_y = prev_x - prev_k
        # One edit moves (prev_x, prev_y) to (mid_x, mid_y); the snake
        # (diagonal run of matches) then reaches (x, y).
        if prev_k == k + 1:
            mid_x, mid_y = prev_x, prev_y + 1  # insertion of new[prev_y]
        else:
            mid_x, mid_y = prev_x + 1, prev_y  # deletion of old[prev_x]
        while x > mid_x and y > mid_y:
            matches_rev.append((x - 1, y - 1))
            x -= 1
            y -= 1
        x, y = prev_x, prev_y
    # d == 0 tail: pure snake from the origin.
    while x > 0 and y > 0:
        matches_rev.append((x - 1, y - 1))
        x -= 1
        y -= 1
    for i, j in reversed(matches_rev):
        out.append((obase + i, nbase + j))


def diff_sequences(
    old: Sequence[Hashable],
    new: Sequence[Hashable],
) -> list[Difference]:
    """Compute a minimal difference script turning ``old`` into ``new``.

    The script is a list of :class:`Difference` ordered by position in the
    old sequence, with non-overlapping edits; adjacent delete+insert pairs
    are fused into a single :data:`DiffKind.REPLACE`.
    """
    old = list(old)
    new = list(new)
    # Trim the common prefix/suffix first: cheap and it keeps the Myers
    # recursion small for the typical append/patch edit.
    pre = 0
    limit = min(len(old), len(new))
    while pre < limit and old[pre] == new[pre]:
        pre += 1
    suf = 0
    while (
        suf < limit - pre
        and old[len(old) - 1 - suf] == new[len(new) - 1 - suf]
    ):
        suf += 1
    core_old = old[pre:len(old) - suf]
    core_new = new[pre:len(new) - suf]

    core_matches: list[tuple[int, int]] = []
    _myers_matches(core_old, core_new, pre, pre, out=core_matches)
    matches = (
        [(k, k) for k in range(pre)]
        + core_matches
        + [(len(old) - suf + k, len(new) - suf + k) for k in range(suf)]
    )

    script: list[Difference] = []
    oi = ni = 0
    for mi, mj in matches + [(len(old), len(new))]:
        removed = tuple(old[oi:mi])
        added = tuple(new[ni:mj])
        if removed and added:
            script.append(Difference(DiffKind.REPLACE, oi, removed, added))
        elif removed:
            script.append(Difference(DiffKind.DELETE, oi, removed, ()))
        elif added:
            script.append(Difference(DiffKind.INSERT, oi, (), added))
        oi, ni = mi + 1, mj + 1
    return script


def _split_tokens(data: bytes) -> tuple[list[bytes], bool]:
    """Tokenize node contents for diffing.

    Returns ``(tokens, line_mode)``.  Line mode keeps the trailing newline
    on each token so concatenating tokens reproduces the input exactly.
    """
    if b"\n" in data:
        tokens = data.splitlines(keepends=True)
        return tokens, True
    tokens = [
        data[i:i + _BINARY_CHUNK] for i in range(0, len(data), _BINARY_CHUNK)
    ]
    return tokens, False


def diff_lines(old: bytes, new: bytes) -> list[Difference]:
    """Diff two byte strings line-by-line (newlines kept on tokens)."""
    return diff_sequences(old.splitlines(keepends=True),
                          new.splitlines(keepends=True))


def diff_bytes(old: bytes, new: bytes) -> list[Difference]:
    """Diff two byte strings with automatic text/binary tokenization.

    Both inputs must agree on tokenization for the script to apply cleanly,
    so the mode is chosen from the *union* of the two: line mode whenever
    either side contains a newline.
    """
    if b"\n" in old or b"\n" in new:
        return diff_lines(old, new)
    old_tokens, __ = _split_tokens(old)
    new_tokens, __ = _split_tokens(new)
    return diff_sequences(old_tokens, new_tokens)


def apply_differences(
    old: Sequence[Hashable],
    script: Sequence[Difference],
) -> list:
    """Apply a difference script to ``old``, returning the new token list.

    Raises :class:`ValueError` if the script does not match ``old`` (wrong
    position or mismatched removed tokens) — a corrupted delta chain must
    fail loudly, never produce silently wrong contents.
    """
    result: list = []
    cursor = 0
    for diff in script:
        if diff.position < cursor:
            raise ValueError(
                f"difference at {diff.position} overlaps prior edit "
                f"ending at {cursor}"
            )
        result.extend(old[cursor:diff.position])
        cursor = diff.position
        actual = tuple(old[cursor:cursor + diff.old_length])
        if actual != diff.old:
            raise ValueError(
                f"difference at {diff.position} expected {diff.old!r}, "
                f"found {actual!r}"
            )
        result.extend(diff.new)
        cursor += diff.old_length
    result.extend(old[cursor:])
    return result


def apply_differences_bytes(old: bytes, script: Sequence[Difference]) -> bytes:
    """Apply a byte-level script produced by :func:`diff_bytes`."""
    if b"\n" in old or any(
        b"\n" in token for diff in script for token in (*diff.old, *diff.new)
    ):
        tokens = old.splitlines(keepends=True)
    else:
        tokens, __ = _split_tokens(old)
    return b"".join(apply_differences(tokens, script))


def invert_differences(script: Sequence[Difference]) -> list[Difference]:
    """Invert a script: the result turns *new* back into *old*.

    This is the core trick behind backward deltas: we diff old→new on
    check-in, invert, and store the inverse keyed to the old version.
    """
    inverted: list[Difference] = []
    shift = 0
    for diff in script:
        position = diff.position + shift
        if diff.kind is DiffKind.INSERT:
            inverted.append(
                Difference(DiffKind.DELETE, position, diff.new, ()))
        elif diff.kind is DiffKind.DELETE:
            inverted.append(
                Difference(DiffKind.INSERT, position, (), diff.old))
        else:
            inverted.append(
                Difference(DiffKind.REPLACE, position, diff.new, diff.old))
        shift += diff.new_length - diff.old_length
    return inverted


@dataclass(frozen=True)
class MergeResult:
    """Outcome of a three-way merge.

    ``merged`` is the merged token list; ``conflicts`` lists the regions
    (as ``(base_slice, ours, theirs)`` tuples) that could not be merged
    automatically.  When ``conflicts`` is empty the merge is clean.
    """

    merged: tuple
    conflicts: tuple

    @property
    def clean(self) -> bool:
        """True when the merge produced no conflicts."""
        return not self.conflicts


def _apply_cluster(chunk: list, edits: list[Difference], lo: int) -> list:
    """Apply a side's cluster edits (base coordinates) to ``chunk``."""
    rebased = [
        Difference(diff.kind, diff.position - lo, diff.old, diff.new)
        for diff in sorted(edits, key=lambda d: d.position)
    ]
    return apply_differences(chunk, rebased)


def merge3(
    base: Sequence[Hashable],
    ours: Sequence[Hashable],
    theirs: Sequence[Hashable],
) -> MergeResult:
    """Three-way merge of two descendants of a common base.

    Classic hunk-based diff3: diff base→ours and base→theirs, then walk
    the base.  Hunks whose base ranges don't overlap apply independently
    (edits to *different* regions always merge); overlapping hunks from
    both sides take the common change when identical, otherwise the region
    is recorded as a conflict (and "ours" is kept in the merged output,
    flagged in :attr:`MergeResult.conflicts`).
    """
    base = list(base)
    edits: list[tuple[Difference, int]] = (
        [(diff, 0) for diff in diff_sequences(base, list(ours))]
        + [(diff, 1) for diff in diff_sequences(base, list(theirs))]
    )
    edits.sort(key=lambda pair: (pair[0].position,
                                 pair[0].position + pair[0].old_length,
                                 pair[1]))
    merged: list = []
    conflicts: list[tuple] = []
    cursor = 0
    position = 0
    while position < len(edits):
        first, __ = edits[position]
        lo = first.position
        hi = max(lo, lo + first.old_length)
        cluster = [edits[position]]
        position += 1
        while position < len(edits):
            diff, side = edits[position]
            touches = diff.position < hi or (diff.position == hi == lo)
            if not touches:
                break
            cluster.append(edits[position])
            hi = max(hi, diff.position + diff.old_length)
            position += 1
        merged.extend(base[cursor:lo])
        chunk = base[lo:hi]
        sides = {side for __, side in cluster}
        ours_chunk = _apply_cluster(
            chunk, [diff for diff, side in cluster if side == 0], lo)
        theirs_chunk = _apply_cluster(
            chunk, [diff for diff, side in cluster if side == 1], lo)
        if sides == {0}:
            merged.extend(ours_chunk)
        elif sides == {1}:
            merged.extend(theirs_chunk)
        elif ours_chunk == theirs_chunk:
            merged.extend(ours_chunk)
        else:
            conflicts.append(
                (tuple(chunk), tuple(ours_chunk), tuple(theirs_chunk)))
            merged.extend(ours_chunk)
        cursor = hi
    merged.extend(base[cursor:])
    return MergeResult(tuple(merged), tuple(conflicts))


def merge3_bytes(base: bytes, ours: bytes, theirs: bytes) -> MergeResult:
    """Three-way merge of byte contents, tokenized like :func:`diff_bytes`."""
    if b"\n" in base or b"\n" in ours or b"\n" in theirs:
        tokenize = lambda data: data.splitlines(keepends=True)  # noqa: E731
    else:
        tokenize = lambda data: _split_tokens(data)[0]  # noqa: E731
    return merge3(tokenize(base), tokenize(ours), tokenize(theirs))
