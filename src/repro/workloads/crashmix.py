"""A crash-oriented workload with a built-in correctness oracle.

Drives one HAM (local or remote — the surface is identical) through a
deterministic mix of transactions while recording, *before* each
operation executes, exactly what that transaction will have written if
it commits.  After a crash and recovery the oracle knows three classes
of transactions:

- **committed** — ``commit()`` returned, so every recorded effect must
  be present byte-identically (force-at-commit durability);
- **losers** — explicitly aborted, so no recorded marker may be visible
  anywhere in the recovered graph;
- **maybe** — in flight when the crash hit: the recovered graph must
  show *all* of its effects or *none* (atomicity), never a mix.

Every written payload embeds a unique marker string
(``crashmix-s<seed>-t<step>``) so the verifier can sweep the whole
recovered graph for traces of transactions that must not exist.

Used by :mod:`repro.testing.crashmatrix`; importable on its own for
ad-hoc recovery experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.types import LinkPt

__all__ = ["CrashMix", "StagedTxn", "CommitOracle", "run_crash_mix"]


@dataclass(frozen=True)
class CrashMix:
    """Shape of the workload: how many transactions, what rhythm."""

    steps: int = 30
    seed: int = 7
    #: Run ``ham.checkpoint()`` after this step commits (None = never).
    checkpoint_at: int | None = None
    #: Every Nth transaction aborts instead of committing.
    abort_every: int = 5


@dataclass
class StagedTxn:
    """What one transaction wrote (recorded before each operation)."""

    step: int
    marker: str
    #: (node, version_time, contents) for every check-in.
    versions: list = field(default_factory=list)
    #: (node, attribute_index, value, stamp) for every attribute set.
    attrs: list = field(default_factory=list)
    #: (link, from_node, to_node) for every link added.
    links: list = field(default_factory=list)
    #: Nodes this transaction created.
    new_nodes: list = field(default_factory=list)

    def items(self) -> list:
        """Every recorded effect, as opaque comparable entries."""
        return ([("version",) + tuple(v) for v in self.versions]
                + [("attr",) + tuple(a) for a in self.attrs]
                + [("link",) + tuple(l) for l in self.links]
                + [("node", n) for n in self.new_nodes])


@dataclass
class CommitOracle:
    """Transaction outcomes as acknowledged to the workload driver."""

    #: step -> StagedTxn whose commit() returned.
    committed: dict = field(default_factory=dict)
    #: step -> StagedTxn that was explicitly aborted.
    losers: dict = field(default_factory=dict)
    #: step -> StagedTxn still in flight (crash interrupted it).
    maybe: dict = field(default_factory=dict)

    def stage(self, staged: StagedTxn) -> None:
        self.maybe[staged.step] = staged

    def record_commit(self, step: int) -> None:
        self.committed[step] = self.maybe.pop(step)

    def record_abort(self, step: int) -> None:
        self.losers[step] = self.maybe.pop(step)


def run_crash_mix(ham, oracle: CommitOracle, mix: CrashMix) -> None:
    """Run the workload; faults propagate to the caller mid-step.

    The oracle is mutated in place so its state is meaningful even when
    a fault aborts the run partway through — that is the whole point.
    """
    rng = random.Random(mix.seed)
    known_nodes: list[int] = []
    status_attr: int | None = None

    for step in range(1, mix.steps + 1):
        marker = f"crashmix-s{mix.seed}-t{step}"
        staged = StagedTxn(step=step, marker=marker)
        oracle.stage(staged)
        txn = ham.begin()
        try:
            for opno in range(rng.randint(1, 3)):
                choice = rng.random()
                if choice < 0.45 or not known_nodes:
                    node, __ = ham.add_node(txn)
                    staged.new_nodes.append(node)
                    contents = f"{marker}-op{opno}-created".encode()
                    time = ham.modify_node(
                        txn, node=node,
                        expected_time=ham.get_node_timestamp(node, txn=txn),
                        contents=contents)
                    staged.versions.append((node, time, contents))
                elif choice < 0.75:
                    node = rng.choice(known_nodes)
                    contents = f"{marker}-op{opno}-edit".encode()
                    time = ham.modify_node(
                        txn, node=node,
                        expected_time=ham.get_node_timestamp(node, txn=txn),
                        contents=contents)
                    staged.versions.append((node, time, contents))
                elif choice < 0.9 and len(known_nodes) >= 2:
                    source, target = rng.sample(known_nodes, 2)
                    link, __ = ham.add_link(
                        txn, from_pt=LinkPt(source), to_pt=LinkPt(target))
                    staged.links.append((link, source, target))
                else:
                    node = rng.choice(known_nodes)
                    if status_attr is None:
                        attr = ham.get_attribute_index("status", txn)
                    else:
                        attr = status_attr
                    value = f"{marker}-op{opno}-status"
                    ham.set_node_attribute_value(
                        txn, node=node, attribute=attr, value=value)
                    staged.attrs.append((node, attr, value, ham.now))
            if mix.abort_every and step % mix.abort_every == 0:
                txn.abort()
                oracle.record_abort(step)
            else:
                txn.commit()
                oracle.record_commit(step)
                known_nodes.extend(staged.new_nodes)
                # The attribute index is only durable once its interning
                # transaction commits; cache it no earlier.
                if status_attr is None and staged.attrs:
                    status_attr = staged.attrs[0][1]
        except BaseException:
            # Leave the step in oracle.maybe: the fault hit mid-flight.
            raise
        if mix.checkpoint_at is not None and step == mix.checkpoint_at:
            ham.checkpoint()
