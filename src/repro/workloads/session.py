"""A mixed-operation session simulator.

Drives one HAM (local or remote) with the operation mix of an editing
workstation: mostly reads (openNode, queries), a steady stream of
check-ins, occasional structure changes and annotations.  Deterministic
given its seed; reports per-operation counts so benchmarks can compute
honest per-op rates.

This is the closest thing to an overall "Neptune under load" workload —
benchmark B11 runs it against the in-process HAM and over RPC.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.types import LinkPt

__all__ = ["SessionMix", "SessionReport", "run_session"]


@dataclass(frozen=True)
class SessionMix:
    """Operation probabilities (normalized over their sum) and sizing."""

    operations: int = 200
    read_weight: float = 0.55
    modify_weight: float = 0.20
    query_weight: float = 0.10
    traverse_weight: float = 0.05
    annotate_weight: float = 0.05
    structure_weight: float = 0.05
    seed: int = 2718
    initial_nodes: int = 12
    body_lines: int = 6


@dataclass
class SessionReport:
    """What the session actually executed."""

    counts: dict = field(default_factory=dict)
    retries: int = 0

    @property
    def total(self) -> int:
        """Total operations performed."""
        return sum(self.counts.values())


def _seed_graph(ham, mix: SessionMix, rng: random.Random) -> list[int]:
    nodes = []
    with _txn(ham) as txn:
        for position in range(mix.initial_nodes):
            node, time = ham.add_node(txn)
            body = "".join(
                f"line {line} of node {position}\n"
                for line in range(mix.body_lines)).encode()
            ham.modify_node(txn, node=node, expected_time=time,
                            contents=body)
            nodes.append(node)
        document = ham.get_attribute_index("document", txn)
        for node in nodes:
            ham.set_node_attribute_value(
                txn, node=node, attribute=document,
                value=f"doc{rng.randrange(3)}")
        for position in range(1, len(nodes)):
            ham.add_link(txn,
                         from_pt=LinkPt(nodes[rng.randrange(position)]),
                         to_pt=LinkPt(nodes[position]))
    return nodes


def _txn(ham):
    from repro.apps._txn import in_txn
    return in_txn(ham, None)


def run_session(ham, mix: SessionMix = SessionMix()) -> SessionReport:
    """Run the mixed workload; returns per-operation counts."""
    from repro.errors import StaleVersionError

    rng = random.Random(mix.seed)
    nodes = _seed_graph(ham, mix, rng)
    report = SessionReport(counts={
        "read": 0, "modify": 0, "query": 0, "traverse": 0,
        "annotate": 0, "structure": 0,
    })
    weights = [
        ("read", mix.read_weight),
        ("modify", mix.modify_weight),
        ("query", mix.query_weight),
        ("traverse", mix.traverse_weight),
        ("annotate", mix.annotate_weight),
        ("structure", mix.structure_weight),
    ]
    names = [name for name, __ in weights]
    probabilities = [weight for __, weight in weights]

    for __ in range(mix.operations):
        operation = rng.choices(names, probabilities)[0]
        node = rng.choice(nodes)
        if operation == "read":
            ham.open_node(node)
        elif operation == "modify":
            try:
                contents, ___, ____, version = ham.open_node(node)
                ham.modify_node(node=node, expected_time=version,
                                contents=contents + b"edit\n")
            except StaleVersionError:
                report.retries += 1
                continue
        elif operation == "query":
            ham.get_graph_query(
                node_predicate=f"document = doc{rng.randrange(3)}")
        elif operation == "traverse":
            ham.linearize_graph(nodes[0])
        elif operation == "annotate":
            with _txn(ham) as txn:
                annotation, time = ham.add_node(txn)
                ham.modify_node(txn, node=annotation, expected_time=time,
                                contents=b"session note\n")
                ham.add_link(txn, from_pt=LinkPt(node),
                             to_pt=LinkPt(annotation))
            nodes.append(annotation)
        elif operation == "structure":
            source, target = rng.sample(nodes, 2)
            ham.add_link(txn=None, from_pt=LinkPt(source),
                         to_pt=LinkPt(target))
        report.counts[operation] += 1
    return report
