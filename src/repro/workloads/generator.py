"""Hyperdocument and hypergraph generators.

Everything is seeded and deterministic: benchmarks must measure the same
workload on every run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.documents import DocumentApplication, DocumentHandle
from repro.core.ham import HAM
from repro.core.types import LinkPt, NodeIndex

__all__ = [
    "DocumentShape",
    "GraphShape",
    "TraceShape",
    "build_hierarchical_document",
    "build_random_graph",
    "build_trace_scripts",
    "run_trace_script",
    "run_trace_script_pipelined",
    "setup_trace_graph",
]

_WORDS = (
    "hypertext node link version attribute demon graph browser query "
    "design layout compiler module procedure document annotation memex "
    "storage transaction server context merge history delta archive"
).split()


def _sentence(rng: random.Random, words: int = 8) -> str:
    return " ".join(rng.choice(_WORDS) for __ in range(words)).capitalize()


def _body(rng: random.Random, lines: int) -> bytes:
    return "".join(
        _sentence(rng) + ".\n" for __ in range(lines)).encode()


@dataclass(frozen=True)
class DocumentShape:
    """Shape of a generated hierarchical document."""

    depth: int = 3
    fanout: int = 3
    body_lines: int = 4
    seed: int = 1986

    @property
    def section_count(self) -> int:
        """Total sections including the root."""
        total = 1
        level = 1
        for __ in range(self.depth):
            level *= self.fanout
            total += level
        return total


def build_hierarchical_document(
    ham: HAM, shape: DocumentShape = DocumentShape(),
    name: str = "generated document",
) -> tuple[DocumentHandle, list[NodeIndex]]:
    """Create a ``fanout``-ary tree document of ``depth`` levels.

    Returns the document handle and all section nodes (root first).
    """
    rng = random.Random(shape.seed)
    app = DocumentApplication(ham)
    document = app.create_document(name)
    nodes = [document.root]
    frontier = [document.root]
    for level in range(shape.depth):
        next_frontier = []
        for parent in frontier:
            for child_n in range(shape.fanout):
                title = f"Section {level + 1}.{child_n + 1} of {parent}"
                node = app.add_section(
                    document, parent, title,
                    contents=_body(rng, shape.body_lines))
                nodes.append(node)
                next_frontier.append(node)
        frontier = next_frontier
    return document, nodes


@dataclass(frozen=True)
class GraphShape:
    """Shape of a generated attribute-rich random hypergraph."""

    nodes: int = 100
    extra_links: int = 150
    #: Attribute names attached to every node with random values.
    attributes: tuple[str, ...] = ("document", "contentType", "status")
    #: Distinct values per attribute (selectivity knob: matches per
    #: equality predicate average nodes/values).
    values_per_attribute: int = 5
    body_lines: int = 2
    seed: int = 7


def build_random_graph(ham: HAM, shape: GraphShape = GraphShape(),
                       ) -> list[NodeIndex]:
    """Create ``nodes`` attributed nodes wired with random links.

    Every node carries each attribute in ``shape.attributes`` with a
    value drawn from ``value0 .. value{k-1}``; a weak spanning chain
    keeps the graph connected, then ``extra_links`` random links are
    added on top.  Returns the node indexes.
    """
    rng = random.Random(shape.seed)
    nodes: list[NodeIndex] = []
    with ham.begin() as txn:
        attr_indexes = {
            name: ham.get_attribute_index(name, txn)
            for name in shape.attributes
        }
        for position in range(shape.nodes):
            node, time = ham.add_node(txn)
            ham.modify_node(
                txn, node=node, expected_time=time,
                contents=_body(rng, shape.body_lines))
            for name, attr in attr_indexes.items():
                value = f"value{rng.randrange(shape.values_per_attribute)}"
                ham.set_node_attribute_value(
                    txn, node=node, attribute=attr, value=value)
            nodes.append(node)
        for position in range(1, len(nodes)):
            parent = nodes[rng.randrange(position)]
            ham.add_link(txn, from_pt=LinkPt(parent),
                         to_pt=LinkPt(nodes[position]))
        for __ in range(shape.extra_links):
            from_node, to_node = rng.sample(nodes, 2)
            ham.add_link(txn, from_pt=LinkPt(from_node),
                         to_pt=LinkPt(to_node))
    return nodes


# ----------------------------------------------------------------------
# differential operation traces
#
# A trace is a *logical* script replayable against any driver exposing
# the HAM operation surface — the local HAM, a serial RemoteHAM, or a
# RemoteHAM pipeline — such that the final graph state is identical
# regardless of transport or interleaving.  Two rules make that true:
#
# 1. every node is created in a deterministic serial setup phase, so
#    node indexes correspond across drivers;
# 2. each simulated client only ever mutates its own slots (nodes), so
#    scripts from concurrent clients commute.
#
# Ops never embed timestamps: version preconditions (``expected_time``)
# are threaded through each slot's chain of results at replay time,
# because different interleavings stamp different times on the same
# logical history.


@dataclass(frozen=True)
class TraceShape:
    """Shape of a differential multi-client operation trace."""

    clients: int = 4
    #: Nodes owned by each client (its private mutation slots).
    slots: int = 6
    #: Operations per client script.
    steps: int = 40
    #: Attribute names registered during setup (scripts never create
    #: new attributes — interning order would diverge under concurrency).
    attributes: tuple[str, ...] = ("status", "owner", "label")
    values: int = 4
    #: Every N-th step becomes a small multi-op transaction block.
    txn_every: int = 9
    seed: int = 1986


def setup_trace_graph(driver, shape: TraceShape = TraceShape()) -> list:
    """Deterministic serial setup; returns one state dict per client.

    Run against each driver before its scripts: creates every slot node
    and registers every attribute, identically, so indexes line up
    across drivers.  Each state dict carries the client's ``nodes``,
    their current version ``times``, and the ``attrs`` name→index map.
    """
    attrs = {name: driver.get_attribute_index(name)
             for name in shape.attributes}
    states = []
    for client in range(shape.clients):
        nodes, times = [], {}
        for slot in range(shape.slots):
            node, time = driver.add_node()
            time = driver.modify_node(
                node=node, expected_time=time,
                contents=f"client {client} slot {slot} v0".encode())
            nodes.append(node)
            times[node] = time
        states.append({"nodes": nodes, "times": times, "attrs": attrs})
    return states


def build_trace_scripts(shape: TraceShape = TraceShape()) -> list[list[dict]]:
    """Generate one seeded op script per client.

    Ops reference slots and link *refs* (the n-th link the script
    created), never node indexes or timestamps, so the same script
    replays against any driver.  The generator tracks attribute
    attachment and link liveness so every generated op is valid.
    """
    scripts = []
    for client in range(shape.clients):
        rng = random.Random((shape.seed << 8) ^ client)
        script: list[dict] = []
        attached: set[tuple[int, str]] = set()
        live_links: list[int] = []
        made_links = 0

        def mutation(step: int) -> dict:
            nonlocal made_links
            slot = rng.randrange(shape.slots)
            choice = rng.random()
            if choice < 0.40:
                return {"op": "modify", "slot": slot,
                        "contents": (f"client {client} slot {slot} "
                                     f"step {step}: "
                                     + _sentence(rng)).encode()}
            if choice < 0.62:
                name = rng.choice(shape.attributes)
                attached.add((slot, name))
                return {"op": "set_attr", "slot": slot, "name": name,
                        "value": f"value{rng.randrange(shape.values)}"}
            if choice < 0.72 and attached:
                slot, name = rng.choice(sorted(attached))
                attached.discard((slot, name))
                return {"op": "del_attr", "slot": slot, "name": name}
            if choice < 0.85 or not live_links:
                ref = made_links
                made_links += 1
                live_links.append(ref)
                return {"op": "add_link",
                        "from_slot": rng.randrange(shape.slots),
                        "to_slot": rng.randrange(shape.slots),
                        "ref": ref}
            ref = live_links.pop(rng.randrange(len(live_links)))
            return {"op": "del_link", "ref": ref}

        for step in range(shape.steps):
            if shape.txn_every and step and step % shape.txn_every == 0:
                script.append({"op": "txn",
                               "body": [mutation(step)
                                        for __ in range(rng.randrange(2, 4))]})
            elif rng.random() < 0.18:
                script.append({"op": "read",
                               "slot": rng.randrange(shape.slots)})
            else:
                script.append(mutation(step))
        scripts.append(script)
    return scripts


def _apply_trace_op(driver, state: dict, links: dict, op: dict,
                    txn=None) -> None:
    """Execute one trace op synchronously against ``driver``."""
    nodes, times, attrs = state["nodes"], state["times"], state["attrs"]
    kind = op["op"]
    if kind == "modify":
        node = nodes[op["slot"]]
        times[node] = driver.modify_node(
            node=node, expected_time=times[node],
            contents=op["contents"], txn=txn)
    elif kind == "set_attr":
        driver.set_node_attribute_value(
            node=nodes[op["slot"]], attribute=attrs[op["name"]],
            value=op["value"], txn=txn)
    elif kind == "del_attr":
        driver.delete_node_attribute(
            node=nodes[op["slot"]], attribute=attrs[op["name"]], txn=txn)
    elif kind == "add_link":
        link, __ = driver.add_link(
            from_pt=LinkPt(nodes[op["from_slot"]]),
            to_pt=LinkPt(nodes[op["to_slot"]]), txn=txn)
        links[op["ref"]] = link
    elif kind == "del_link":
        driver.delete_link(link=links[op["ref"]], txn=txn)
    elif kind == "read":
        driver.open_node(node=nodes[op["slot"]])
    else:
        raise ValueError(f"unknown trace op {kind!r}")


def run_trace_script(driver, state: dict, script: list[dict]) -> None:
    """Replay one client script serially (local HAM or RemoteHAM)."""
    links: dict[int, int] = {}
    for op in script:
        if op["op"] == "txn":
            with driver.begin() as txn:
                for inner in op["body"]:
                    _apply_trace_op(driver, state, links, inner, txn=txn)
        else:
            _apply_trace_op(driver, state, links, op)


def run_trace_script_pipelined(client, state: dict,
                               script: list[dict]) -> int:
    """Replay one client script through ``client.pipeline()``.

    Ops stream without waiting wherever the script allows it; a sync
    point (resolving an earlier future) happens only where an op needs a
    value a previous reply carries — the ``expected_time`` of a slot's
    last modify, the link index behind a ``del_link`` ref, or a
    transaction handle.  Returns the pipeline's in-flight high-water
    mark (callers assert it exceeded 1, i.e. pipelining really
    happened).
    """
    nodes, times, attrs = state["nodes"], state["times"], state["attrs"]
    pending_time: dict[int, object] = {}   # node -> unresolved modify
    pending_link: dict[int, object] = {}   # ref  -> unresolved add_link
    links: dict[int, int] = {}
    futures: list = []

    def slot_time(node) -> int:
        future = pending_time.pop(node, None)
        if future is not None:
            times[node] = future.result()
        return times[node]

    def link_of(ref) -> int:
        future = pending_link.pop(ref, None)
        if future is not None:
            links[ref], __ = future.result()
        return links[ref]

    def issue(pipeline, op, txn=None) -> None:
        kind = op["op"]
        if kind == "modify":
            node = nodes[op["slot"]]
            pending_time[node] = pipeline.modify_node(
                node=node, expected_time=slot_time(node),
                contents=op["contents"], txn=txn)
        elif kind == "set_attr":
            futures.append(pipeline.set_node_attribute_value(
                node=nodes[op["slot"]], attribute=attrs[op["name"]],
                value=op["value"], txn=txn))
        elif kind == "del_attr":
            futures.append(pipeline.delete_node_attribute(
                node=nodes[op["slot"]], attribute=attrs[op["name"]],
                txn=txn))
        elif kind == "add_link":
            pending_link[op["ref"]] = pipeline.add_link(
                from_pt=LinkPt(nodes[op["from_slot"]]),
                to_pt=LinkPt(nodes[op["to_slot"]]), txn=txn)
        elif kind == "del_link":
            futures.append(pipeline.delete_link(
                link=link_of(op["ref"]), txn=txn))
        elif kind == "read":
            futures.append(pipeline.open_node(node=nodes[op["slot"]]))
        else:
            raise ValueError(f"unknown trace op {kind!r}")

    with client.pipeline() as pipeline:
        for op in script:
            if op["op"] == "txn":
                txn = pipeline.begin().result()  # the one txn sync point
                for inner in op["body"]:
                    issue(pipeline, inner, txn=txn)
                futures.append(pipeline.commit(txn))
            else:
                issue(pipeline, op)
    # The with-exit drained the wire: surface any buried server error.
    for future in futures:
        future.result()
    for node, future in pending_time.items():
        times[node] = future.result()
    for ref, future in pending_link.items():
        links[ref], __ = future.result()
    return pipeline.max_depth
