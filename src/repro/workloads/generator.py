"""Hyperdocument and hypergraph generators.

Everything is seeded and deterministic: benchmarks must measure the same
workload on every run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.documents import DocumentApplication, DocumentHandle
from repro.core.ham import HAM
from repro.core.types import LinkPt, NodeIndex

__all__ = [
    "DocumentShape",
    "GraphShape",
    "build_hierarchical_document",
    "build_random_graph",
]

_WORDS = (
    "hypertext node link version attribute demon graph browser query "
    "design layout compiler module procedure document annotation memex "
    "storage transaction server context merge history delta archive"
).split()


def _sentence(rng: random.Random, words: int = 8) -> str:
    return " ".join(rng.choice(_WORDS) for __ in range(words)).capitalize()


def _body(rng: random.Random, lines: int) -> bytes:
    return "".join(
        _sentence(rng) + ".\n" for __ in range(lines)).encode()


@dataclass(frozen=True)
class DocumentShape:
    """Shape of a generated hierarchical document."""

    depth: int = 3
    fanout: int = 3
    body_lines: int = 4
    seed: int = 1986

    @property
    def section_count(self) -> int:
        """Total sections including the root."""
        total = 1
        level = 1
        for __ in range(self.depth):
            level *= self.fanout
            total += level
        return total


def build_hierarchical_document(
    ham: HAM, shape: DocumentShape = DocumentShape(),
    name: str = "generated document",
) -> tuple[DocumentHandle, list[NodeIndex]]:
    """Create a ``fanout``-ary tree document of ``depth`` levels.

    Returns the document handle and all section nodes (root first).
    """
    rng = random.Random(shape.seed)
    app = DocumentApplication(ham)
    document = app.create_document(name)
    nodes = [document.root]
    frontier = [document.root]
    for level in range(shape.depth):
        next_frontier = []
        for parent in frontier:
            for child_n in range(shape.fanout):
                title = f"Section {level + 1}.{child_n + 1} of {parent}"
                node = app.add_section(
                    document, parent, title,
                    contents=_body(rng, shape.body_lines))
                nodes.append(node)
                next_frontier.append(node)
        frontier = next_frontier
    return document, nodes


@dataclass(frozen=True)
class GraphShape:
    """Shape of a generated attribute-rich random hypergraph."""

    nodes: int = 100
    extra_links: int = 150
    #: Attribute names attached to every node with random values.
    attributes: tuple[str, ...] = ("document", "contentType", "status")
    #: Distinct values per attribute (selectivity knob: matches per
    #: equality predicate average nodes/values).
    values_per_attribute: int = 5
    body_lines: int = 2
    seed: int = 7


def build_random_graph(ham: HAM, shape: GraphShape = GraphShape(),
                       ) -> list[NodeIndex]:
    """Create ``nodes`` attributed nodes wired with random links.

    Every node carries each attribute in ``shape.attributes`` with a
    value drawn from ``value0 .. value{k-1}``; a weak spanning chain
    keeps the graph connected, then ``extra_links`` random links are
    added on top.  Returns the node indexes.
    """
    rng = random.Random(shape.seed)
    nodes: list[NodeIndex] = []
    with ham.begin() as txn:
        attr_indexes = {
            name: ham.get_attribute_index(name, txn)
            for name in shape.attributes
        }
        for position in range(shape.nodes):
            node, time = ham.add_node(txn)
            ham.modify_node(
                txn, node=node, expected_time=time,
                contents=_body(rng, shape.body_lines))
            for name, attr in attr_indexes.items():
                value = f"value{rng.randrange(shape.values_per_attribute)}"
                ham.set_node_attribute_value(
                    txn, node=node, attribute=attr, value=value)
            nodes.append(node)
        for position in range(1, len(nodes)):
            parent = nodes[rng.randrange(position)]
            ham.add_link(txn, from_pt=LinkPt(parent),
                         to_pt=LinkPt(nodes[position]))
        for __ in range(shape.extra_links):
            from_node, to_node = rng.sample(nodes, 2)
            ham.add_link(txn, from_pt=LinkPt(from_node),
                         to_pt=LinkPt(to_node))
    return nodes
