"""This very paper as a hyperdocument.

Figures 1 and 2 of the paper are screenshots of Neptune browsing *the
paper itself* ("A graph browser that views this paper is shown in
Figure 1"; "Figure 2 shows a document browser viewing this paper").  The
figure-reproduction benchmarks therefore need the paper in the database;
this builder creates its section tree with representative text, plus an
annotation and a cross reference so every link flavour appears.
"""

from __future__ import annotations

from repro.apps.documents import DocumentApplication, DocumentHandle
from repro.core.ham import HAM
from repro.core.types import NodeIndex

__all__ = ["PAPER_SECTIONS", "build_paper_document"]

#: (depth, title, first line of body) for each section of the paper.
PAPER_SECTIONS: tuple[tuple[int, str, str], ...] = (
    (1, "Introduction",
     "Traditional databases have certain weaknesses for CAD."),
    (1, "Hypertext",
     "Hypertext in its essence is non-linear or nonsequential text."),
    (2, "Existing Hypertext Systems",
     "Vannevar Bush described his memex in 1945."),
    (2, "Properties of Hypertext Systems",
     "Editing, traversal, multimedia, multi-person access."),
    (2, "Applications of Hypertext",
     "The most obvious application of hypertext is documentation."),
    (1, "An Overview of Neptune",
     "Neptune is designed as a layered architecture."),
    (1, "Hypertext-based CAD Systems",
     "All project data stored in hyperdocuments."),
    (2, "Neptune's Documentation User Interface",
     "The user interface is implemented in Smalltalk-80."),
    (2, "Specializing Hypertext for a CASE Application",
     "How should Neptune's primitives be used for CAD?"),
    (1, "Conclusions",
     "Hypertext provides an appropriate storage model for CAD."),
    (1, "Appendix: HAM Specification",
     "Operations on graphs, nodes, links, attributes, and demons."),
)


def build_paper_document(ham: HAM) -> tuple[DocumentHandle,
                                            dict[str, NodeIndex]]:
    """Store the paper's structure; returns (handle, title → node)."""
    app = DocumentApplication(ham)
    document = app.create_document("Neptune: a Hypertext System for CAD")
    by_title: dict[str, NodeIndex] = {}
    parents = {0: document.root}
    for depth, title, first_line in PAPER_SECTIONS:
        parent = parents[depth - 1]
        node = app.add_section(document, parent, title,
                               contents=first_line.encode() + b"\n")
        by_title[title] = node
        parents[depth] = node
    # One annotation and one cross reference, as the browsers show.
    app.annotate(by_title["Introduction"], position=4,
                 text="See Bush 1945 for the memex.")
    app.cross_reference(by_title["Conclusions"], position=8,
                        to_node=by_title["An Overview of Neptune"])
    return document, by_title
