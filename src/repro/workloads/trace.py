"""Deterministic editing-session traces.

Benchmarks B1/B2 need "many versions of a node produced by realistic
edits" — mostly-local line insertions, deletions, and replacements, the
granularity the paper versions at ("complete version histories at the
granularity of 'writes' from a text editor").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["EditTrace", "generate_versions"]


@dataclass(frozen=True)
class EditTrace:
    """Parameters of a synthetic editing session."""

    initial_lines: int = 100
    versions: int = 50
    #: Line edits applied per version (one editor "write").
    edits_per_version: int = 3
    line_width: int = 40
    seed: int = 42


def _random_line(rng: random.Random, width: int) -> bytes:
    alphabet = "abcdefghijklmnopqrstuvwxyz "
    return ("".join(rng.choice(alphabet) for __ in range(width))
            ).encode() + b"\n"


def generate_versions(trace: EditTrace = EditTrace()) -> list[bytes]:
    """All versions of a document under ``trace``, initial first.

    Each step applies ``edits_per_version`` random line edits (45%
    replace, 30% insert, 25% delete) to the previous version.
    """
    rng = random.Random(trace.seed)
    lines = [_random_line(rng, trace.line_width)
             for __ in range(trace.initial_lines)]
    versions = [b"".join(lines)]
    for __ in range(trace.versions):
        for ___ in range(trace.edits_per_version):
            roll = rng.random()
            if roll < 0.45 and lines:
                lines[rng.randrange(len(lines))] = _random_line(
                    rng, trace.line_width)
            elif roll < 0.75:
                lines.insert(rng.randint(0, len(lines)),
                             _random_line(rng, trace.line_width))
            elif lines:
                del lines[rng.randrange(len(lines))]
        versions.append(b"".join(lines))
    return versions
