"""Synthetic Modula-2 projects for the CASE benchmarks.

Generates a project of interconnected modules with procedures whose
bodies call procedures of imported modules — enough realism that the toy
compiler's symbol tables and call lists are non-trivial.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.apps.case import CaseApplication, ModuleHandle, ModuleKind
from repro.core.ham import HAM
from repro.core.types import NodeIndex

__all__ = ["ProjectShape", "build_case_project"]


@dataclass(frozen=True)
class ProjectShape:
    """Shape of a generated software project."""

    modules: int = 5
    procedures_per_module: int = 6
    import_density: float = 0.3
    body_statements: int = 5
    seed: int = 11


def _procedure_source(rng: random.Random, name: str,
                      callables: list[str], statements: int) -> bytes:
    body_lines = [f"PROCEDURE {name};", "VAR temp;", "BEGIN"]
    for __ in range(statements):
        if callables and rng.random() < 0.5:
            body_lines.append(f"  {rng.choice(callables)}(temp);")
        else:
            body_lines.append(f"  temp := temp + {rng.randrange(100)};")
    body_lines.append(f"END {name};")
    return ("\n".join(body_lines) + "\n").encode()


def build_case_project(
    ham: HAM, shape: ProjectShape = ProjectShape(),
    project: str = "generated project",
) -> tuple[CaseApplication, list[ModuleHandle],
           dict[NodeIndex, list[NodeIndex]]]:
    """Create a project; returns (app, modules, module → procedures)."""
    rng = random.Random(shape.seed)
    case = CaseApplication(ham, project=project)
    modules: list[ModuleHandle] = []
    procedures: dict[NodeIndex, list[NodeIndex]] = {}
    known_names: list[str] = []
    for module_n in range(shape.modules):
        kind = (ModuleKind.DEFINITION if module_n % 4 == 0
                else ModuleKind.IMPLEMENTATION)
        module = case.create_module(
            f"Module{module_n}", kind,
            responsible=f"member{module_n % 3}")
        modules.append(module)
        procedures[module.node] = []
        for proc_n in range(shape.procedures_per_module):
            name = f"Proc{module_n}_{proc_n}"
            source = _procedure_source(
                rng, name, known_names, shape.body_statements)
            node = case.add_procedure(
                module, name, source,
                responsible=f"member{(module_n + proc_n) % 3}")
            procedures[module.node].append(node)
            known_names.append(name)
    for importer in modules:
        for imported in modules:
            if imported is importer:
                continue
            if rng.random() < shape.import_density:
                case.import_module(importer, imported)
    return case, modules, procedures
