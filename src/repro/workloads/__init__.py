"""Synthetic workload generators for benchmarks and examples.

- :mod:`repro.workloads.generator` — hierarchical documents and
  attribute-rich random hypergraphs of configurable size.
- :mod:`repro.workloads.trace` — deterministic editing-session traces
  (the version-storage workloads for benchmarks B1/B2).
- :mod:`repro.workloads.case_project` — synthetic Modula-2 projects for
  the CASE benchmarks.
- :mod:`repro.workloads.paper` — this very paper as a hyperdocument: the
  document the original Figures 1-3 were screenshotted browsing.
"""

from repro.workloads.generator import (
    build_hierarchical_document,
    build_random_graph,
    DocumentShape,
    GraphShape,
)
from repro.workloads.trace import EditTrace, generate_versions
from repro.workloads.case_project import build_case_project, ProjectShape
from repro.workloads.paper import build_paper_document, PAPER_SECTIONS
from repro.workloads.session import SessionMix, SessionReport, run_session

__all__ = [
    "SessionMix",
    "SessionReport",
    "run_session",
    "build_hierarchical_document",
    "build_random_graph",
    "DocumentShape",
    "GraphShape",
    "EditTrace",
    "generate_versions",
    "build_case_project",
    "ProjectShape",
    "build_paper_document",
    "PAPER_SECTIONS",
]
