"""Crash-matrix recovery testing: every fault point × every action.

One *case* = run the :mod:`repro.workloads.crashmix` workload against a
persistent graph with exactly one fault armed (a named injection point,
an action, and which hit triggers), let the fault crash or corrupt the
run mid-flight, reopen the graph through normal recovery, and check the
oracle's invariants against the recovered state:

- every transaction whose ``commit()`` returned is present
  byte-identically (durability — including delta-chain reconstruction
  of archived versions);
- no trace of an aborted transaction's markers is visible anywhere
  (complete recovery from any aborted transaction);
- the one transaction in flight at the crash is all-or-nothing
  (atomicity).

``run_local_case`` exercises the storage stack in-process;
``run_remote_case`` puts a :class:`repro.server.server.HAMServer` and a
resilient :class:`repro.server.client.RemoteHAM` in the loop so the
connection-level fault points get real sockets to corrupt.

This module is imported by tests on demand — keep it out of
``repro.testing.__init__`` so installing a fault plan never drags the
whole stack into :mod:`repro.storage` imports.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

from repro.core.ham import HAM
from repro.errors import NeptuneError
from repro.server.client import RemoteHAM, RetryPolicy
from repro.server.server import HAMServer
from repro.storage.log import WalStats
from repro.storage.serializer import RECORD_HEADER, unpack_record
from repro.testing import faults
from repro.workloads.crashmix import (
    CommitOracle,
    CrashMix,
    StagedTxn,
    run_crash_mix,
)

__all__ = ["CaseResult", "ConcurrentCaseResult", "FailoverCaseResult",
           "PipelinedCaseResult", "SubscriptionCaseResult", "abandon",
           "run_concurrent_case",
           "run_failover_case", "run_local_case", "run_pipelined_case",
           "run_remote_case", "run_subscription_case",
           "verify_invariants",
           "wal_record_boundaries", "FAILOVER_SCENARIOS"]


@dataclass
class CaseResult:
    """Outcome of one matrix cell (verification already passed)."""

    point: str
    action: str
    hit: int
    #: True when the armed fault actually triggered during the run.
    fired: bool
    #: What the workload raised mid-run, if anything.
    error: BaseException | None


def abandon(ham: HAM) -> None:
    """Drop a HAM the way a crash would: no checkpoint, no cleanup."""
    try:
        ham._log.close()
    except OSError:
        pass
    ham._closed = True


def _default_mix(seed: int) -> CrashMix:
    return CrashMix(steps=16, seed=seed + 11, checkpoint_at=8,
                    abort_every=5)


def _run_armed(ham_like, oracle: CommitOracle, mix: CrashMix,
               plan: faults.FaultPlan) -> tuple[bool, BaseException | None]:
    """Run the workload with ``plan`` installed; report (fired, error)."""
    injector = faults.install(plan)
    error: BaseException | None = None
    try:
        run_crash_mix(ham_like, oracle, mix)
    except (faults.SimulatedCrash, NeptuneError, OSError) as exc:
        error = exc
    finally:
        faults.uninstall()
    return bool(injector.fired), error


def run_local_case(directory, point: str, action: str, hit: int = 1,
                   seed: int = 0, mix: CrashMix | None = None,
                   ) -> CaseResult:
    """One matrix cell against an in-process HAM."""
    mix = mix if mix is not None else _default_mix(seed)
    path = os.path.join(os.fspath(directory), "graph")
    project_id, __ = HAM.create_graph(path)
    ham = HAM.open_graph(project_id, path)
    oracle = CommitOracle()
    plan = faults.FaultPlan(
        specs=(faults.FaultSpec(point, action, hit=hit),), seed=seed)
    fired, error = _run_armed(ham, oracle, mix, plan)
    abandon(ham)
    recovered = HAM.open_graph(project_id, path)
    try:
        verify_invariants(recovered, oracle)
    finally:
        abandon(recovered)  # plain close would checkpoint; keep it inert
    return CaseResult(point=point, action=action, hit=hit, fired=fired,
                      error=error)


def run_remote_case(directory, point: str, action: str, hit: int = 1,
                    seed: int = 0, mix: CrashMix | None = None,
                    ) -> CaseResult:
    """One matrix cell with a server and a resilient client in the loop."""
    mix = mix if mix is not None else _default_mix(seed)
    path = os.path.join(os.fspath(directory), "graph")
    project_id, __ = HAM.create_graph(path)
    ham = HAM.open_graph(project_id, path)
    server = HAMServer(ham)
    server.start()
    oracle = CommitOracle()
    plan = faults.FaultPlan(
        specs=(faults.FaultSpec(point, action, hit=hit),), seed=seed)
    try:
        client = RemoteHAM(*server.address, timeout=5.0,
                           retry=RetryPolicy(max_attempts=2,
                                             backoff_base=0.01,
                                             call_deadline=5.0,
                                             seed=seed))
        try:
            fired, error = _run_armed(client, oracle, mix, plan)
        finally:
            client.close()
    finally:
        # Leftover-transaction aborts during shutdown must write
        # normally, so the plan is already uninstalled by _run_armed.
        server.stop(disconnect_clients=True)
    abandon(ham)
    recovered = HAM.open_graph(project_id, path)
    try:
        verify_invariants(recovered, oracle)
    finally:
        abandon(recovered)
    return CaseResult(point=point, action=action, hit=hit, fired=fired,
                      error=error)


@dataclass
class ConcurrentCaseResult:
    """Outcome of one concurrent-committer cell."""

    point: str
    action: str
    hit: int
    fired: bool
    #: How many commits were acknowledged before the crash.
    acknowledged: int
    #: WAL counters at abandon time (group-commit accounting).
    wal: WalStats


def run_concurrent_case(directory, action: str, hit: int = 1,
                        seed: int = 0, threads: int = 4,
                        commits_per_thread: int = 8,
                        point: str = "wal.commit.force",
                        group_commit_window: float = 0.002,
                        ) -> ConcurrentCaseResult:
    """One matrix cell with ``threads`` committers killed mid-group-flush.

    Each worker hammers small write transactions against its *own*
    pre-created node (node-level locks only, so committers genuinely
    overlap inside :meth:`WriteAheadLog.force_up_to`) while one fault is
    armed at the group-commit fault point.  When the fault crashes the
    flush leader, waiting followers elect a new leader and die on the
    same sticky fault — exactly the all-die-together shape of a real
    process kill mid-fsync.  Recovery must then show every acknowledged
    commit byte-identically and each unacknowledged group member
    all-or-nothing.
    """
    path = os.path.join(os.fspath(directory), "graph")
    project_id, __ = HAM.create_graph(path)
    ham = HAM.open_graph(project_id, path,
                         group_commit_window=group_commit_window)
    oracle = CommitOracle()
    with ham.begin() as setup:
        nodes = []
        for __ in range(threads):
            node, _t = ham.add_node(setup)
            nodes.append(node)
        attr = ham.get_attribute_index("status", setup)

    def worker(worker_id: int) -> None:
        node = nodes[worker_id]
        for attempt in range(commits_per_thread):
            step = worker_id * 1_000 + attempt
            marker = f"concurrent-s{seed}-w{worker_id}-c{attempt}"
            staged = StagedTxn(step=step, marker=marker)
            oracle.stage(staged)
            try:
                txn = ham.begin()
                contents = f"{marker}-body".encode()
                time = ham.modify_node(
                    txn, node=node,
                    expected_time=ham.get_node_timestamp(node),
                    contents=contents)
                staged.versions.append((node, time, contents))
                value = f"{marker}-status"
                ham.set_node_attribute_value(
                    txn, node=node, attribute=attr, value=value)
                staged.attrs.append((node, attr, value, ham.now))
                txn.commit()
            except (faults.SimulatedCrash, NeptuneError, OSError):
                return  # the crash hit mid-flight; step stays in maybe
            oracle.record_commit(step)

    injector = faults.install(faults.FaultPlan(
        specs=(faults.FaultSpec(point, action, hit=hit),), seed=seed))
    try:
        pool = [threading.Thread(target=worker, args=(worker_id,),
                                 daemon=True)
                for worker_id in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30.0)
        stuck = [thread for thread in pool if thread.is_alive()]
        assert not stuck, (
            f"{len(stuck)} committer thread(s) wedged after the fault — "
            f"group-commit leader death must not strand followers")
    finally:
        faults.uninstall()
    wal = ham._log.stats()
    abandon(ham)
    recovered = HAM.open_graph(project_id, path)
    try:
        verify_invariants(recovered, oracle)
    finally:
        abandon(recovered)
    return ConcurrentCaseResult(
        point=point, action=action, hit=hit, fired=bool(injector.fired),
        acknowledged=len(oracle.committed), wal=wal)


@dataclass
class PipelinedCaseResult:
    """Outcome of one pipelined-client cell."""

    point: str
    action: str
    hit: int
    fired: bool
    #: Commits whose futures resolved successfully before the fault.
    acknowledged: int
    #: Requests the crash left unanswered — outcome genuinely unknown.
    unresolved: int
    #: Deepest client-side pipeline (in-flight futures) observed.
    max_depth: int


def run_pipelined_case(directory, point: str = "server.dispatch",
                       action: str = "raise", hit: int = 1, seed: int = 0,
                       clients: int = 2, slots: int = 3, rounds: int = 5,
                       ) -> PipelinedCaseResult:
    """One matrix cell with pipelined mutations in flight at the fault.

    Each client streams waves of ``modify_node`` requests — one per slot
    node it owns — through :meth:`RemoteHAM.pipeline`, so several
    single-operation transactions are in flight per session when the
    armed fault lands, and acknowledgements from the two sessions
    interleave out of order.  A resolved future is an acknowledged
    commit and goes into the oracle; a future answered with an error is
    a definite loser (``raise`` fires before the operation executes, and
    a failed single-operation transaction aborts whole); a future the
    crash abandoned is *unknown* — the server may or may not have
    committed it before dying.  After recovery:

    - every acknowledged commit is present byte-identically and every
      loser's marker is unseen (:func:`verify_invariants`);
    - each slot's current contents is either its last acknowledged
      version or its single unresolved in-flight write — the recovered
      graph is the acknowledged prefix of each session's ordered
      mutation stream, plus at most the one write racing the crash.
    """
    path = os.path.join(os.fspath(directory), "graph")
    project_id, __ = HAM.create_graph(path)
    ham = HAM.open_graph(project_id, path)
    oracle = CommitOracle()
    state: list[dict] = []
    with ham.begin() as setup:
        for cid in range(clients):
            for sid in range(slots):
                node, time = ham.add_node(setup)
                contents = f"pipelined-init-c{cid}-n{sid}".encode()
                time = ham.modify_node(setup, node=node,
                                       expected_time=time,
                                       contents=contents)
                state.append({"node": node, "time": time,
                              "last": contents, "inflight": None})
    server = HAMServer(ham)
    server.start()
    depths = [0] * clients
    # Connect before arming so handshake pings do not consume hits.
    remotes = [RemoteHAM(*server.address, timeout=5.0)
               for __ in range(clients)]

    def worker(cid: int) -> None:
        my_slots = state[cid * slots:(cid + 1) * slots]
        try:
            with remotes[cid].pipeline() as pipe:
                for rnd in range(rounds):
                    wave = []
                    for sid, slot in enumerate(my_slots):
                        step = (cid + 1) * 10_000 + rnd * 100 + sid
                        marker = (f"pipelined-s{seed}-c{cid}"
                                  f"-r{rnd}-n{sid}")
                        contents = f"{marker}-body".encode()
                        staged = StagedTxn(step=step, marker=marker)
                        oracle.stage(staged)
                        slot["inflight"] = (staged, contents)
                        future = pipe.modify_node(
                            node=slot["node"],
                            expected_time=slot["time"],
                            contents=contents)
                        wave.append((slot, staged, contents, future))
                        depths[cid] = max(depths[cid], pipe.max_depth)
                    for slot, staged, contents, future in wave:
                        try:
                            time = future.result()
                        except NeptuneError:
                            # The server answered with an error: the
                            # operation's transaction aborted whole.
                            oracle.record_abort(staged.step)
                            slot["inflight"] = None
                            continue
                        staged.versions.append(
                            (slot["node"], time, contents))
                        oracle.record_commit(staged.step)
                        slot["time"] = time
                        slot["last"] = contents
                        slot["inflight"] = None
        except OSError:
            return  # transport died; unanswered steps stay unknown

    injector = faults.install(faults.FaultPlan(
        specs=(faults.FaultSpec(point, action, hit=hit),), seed=seed))
    try:
        pool = [threading.Thread(target=worker, args=(cid,), daemon=True)
                for cid in range(clients)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30.0)
        stuck = [thread for thread in pool if thread.is_alive()]
        assert not stuck, (
            f"{len(stuck)} pipelined client(s) wedged after the fault — "
            f"a dead server must abandon futures, not strand them")
    finally:
        faults.uninstall()
    for client in remotes:
        client.close()
    server.stop(disconnect_clients=True)
    # Steps the crash left unanswered cannot go through the oracle's
    # marker sweep (the server may have legitimately committed them);
    # they are checked per slot below instead.
    unknown = dict(oracle.maybe)
    oracle.maybe.clear()
    abandon(ham)
    recovered = HAM.open_graph(project_id, path)
    try:
        verify_invariants(recovered, oracle)
        for slot in state:
            current = recovered.open_node(slot["node"])[0]
            allowed = {slot["last"]}
            if slot["inflight"] is not None:
                allowed.add(slot["inflight"][1])
            assert current in allowed, (
                f"node {slot['node']} recovered {current!r}; expected "
                f"the last acknowledged write {slot['last']!r}"
                + (f" or the in-flight write {slot['inflight'][1]!r}"
                   if slot["inflight"] else ""))
    finally:
        abandon(recovered)
    return PipelinedCaseResult(
        point=point, action=action, hit=hit, fired=bool(injector.fired),
        acknowledged=len(oracle.committed), unresolved=len(unknown),
        max_depth=max(depths))


# ======================================================================
# change-feed cells


@dataclass
class SubscriptionCaseResult:
    """Outcome of one change-feed cell (no-phantom check passed)."""

    point: str
    action: str
    hit: int
    fired: bool
    #: (node, attribute name, value, time) of every pushed event.
    pushed: list
    #: Marker commits acknowledged to the writer before the fault.
    acknowledged: int


def run_subscription_case(directory, point: str = "sub.deliver",
                          action: str = "raise", hit: int = 1,
                          seed: int = 0, commits: int = 10,
                          ) -> SubscriptionCaseResult:
    """One matrix cell with a live TCP subscriber at the fault.

    The no-phantom invariant: events are emitted only after their
    commit is durable and published, so everything the server ever
    *pushed* must survive recovery — a subscriber can never have been
    told about work the recovered graph discards.  (The converse is
    allowed: a crashed commit's events are simply never pushed, and a
    delivery fault costs the subscriber its feed, not the writer its
    commit.)
    """
    from repro.errors import SubscriptionError

    path = os.path.join(os.fspath(directory), "graph")
    project_id, __ = HAM.create_graph(path)
    ham = HAM.open_graph(project_id, path)
    server = HAMServer(ham)
    server.start()
    acknowledged = 0
    pushed: list = []
    try:
        subscriber = RemoteHAM(*server.address, timeout=5.0)
        try:
            watch = subscriber.watch(events=["setAttribute"])
            attr = ham.get_attribute_index("marker")
            injector = faults.install(faults.FaultPlan(
                specs=(faults.FaultSpec(point, action, hit=hit),),
                seed=seed))
            try:
                for step in range(commits):
                    try:
                        txn = ham.begin()
                        node, __ = ham.add_node(txn)
                        ham.set_node_attribute_value(
                            txn, node=node, attribute=attr,
                            value=f"sub-s{seed}-c{step}")
                        txn.commit()
                    except (faults.SimulatedCrash, NeptuneError,
                            OSError):
                        break
                    acknowledged += 1
            finally:
                faults.uninstall()
            # Drain everything the server actually pushed before the
            # crash; a fault-cancelled feed raises after its prefix.
            try:
                while True:
                    event = watch.poll(timeout=0.5)
                    if event is None:
                        break
                    pushed.append((event["node"],
                                   event["detail"]["attribute"],
                                   event["detail"]["value"],
                                   event["time"]))
            except SubscriptionError:
                pass
        finally:
            subscriber.close()
    finally:
        server.stop(disconnect_clients=True)
    abandon(ham)
    recovered = HAM.open_graph(project_id, path)
    try:
        registry = recovered.store.registry
        for node, name, value, stamp in pushed:
            attr_index = registry.lookup(name)
            assert attr_index is not None, (
                f"pushed attribute {name!r} unknown after recovery")
            got = recovered.store.node(node).attributes.value_at(
                attr_index, stamp, default=None)
            assert got == value, (
                f"phantom notification: pushed {value!r} for node "
                f"{node}@{stamp} but recovery holds {got!r}")
    finally:
        abandon(recovered)
    return SubscriptionCaseResult(
        point=point, action=action, hit=hit, fired=bool(injector.fired),
        pushed=pushed, acknowledged=acknowledged)


# ======================================================================
# replication failover cells


FAILOVER_SCENARIOS = ("primary-kill", "replica-kill", "torn-frames",
                      "bitflip-frames", "promote-during-replay")


@dataclass
class FailoverCaseResult:
    """Outcome of one replication failover cell."""

    scenario: str
    seed: int
    #: True when the armed fault (if any) actually triggered.
    fired: bool
    #: Commits acknowledged to the writer before the scenario's fault.
    acknowledged: int
    #: Structural fingerprint every surviving graph converged to.
    fingerprint: str


def _staged_failover_commit(ham, oracle: CommitOracle, node: int,
                            attr: int, seed: int, step: int) -> None:
    """One acknowledged write transaction, staged through the oracle."""
    marker = f"failover-s{seed}-c{step}"
    staged = StagedTxn(step=step, marker=marker)
    oracle.stage(staged)
    txn = ham.begin()
    contents = f"{marker}-body".encode()
    time = ham.modify_node(txn, node=node,
                           expected_time=ham.get_node_timestamp(node),
                           contents=contents)
    staged.versions.append((node, time, contents))
    value = f"{marker}-status"
    ham.set_node_attribute_value(txn, node=node, attribute=attr,
                                 value=value)
    staged.attrs.append((node, attr, value, ham.now))
    txn.commit()
    oracle.record_commit(step)


def _await_replayed(replica, target_lsn: int, timeout: float = 15.0) -> None:
    """Block until ``replica`` has replayed past ``target_lsn``."""
    import time as _time
    deadline = _time.monotonic() + timeout
    while replica.replayed_lsn < target_lsn:
        if _time.monotonic() > deadline:
            raise AssertionError(
                f"replica {replica.name} stalled at "
                f"{replica.replayed_lsn} < {target_lsn} "
                f"(failure: {replica.failure!r})")
        _time.sleep(0.02)


def run_failover_case(directory, scenario: str = "primary-kill",
                      seed: int = 0, commits: int = 12,
                      ) -> FailoverCaseResult:
    """One replication failover cell; asserts the failover contract.

    Every cell drives acknowledged write transactions through a
    replicated cluster while one well-placed disaster lands, then
    checks the two replication invariants: **no acknowledged commit is
    ever lost** (semi-sync acknowledgement means a replica replayed
    it), and every surviving graph converges to a
    **fingerprint-identical** state.

    - ``primary-kill``: semi-sync primary with two replicas dies
      abruptly with a commit racing the kill; the most-caught-up
      replica is promoted, the survivor re-targets to it, and both must
      hold every acknowledged commit and agree byte-for-byte.
    - ``replica-kill``: a :class:`~repro.testing.faults.SimulatedCrash`
      kills the apply loop mid-replay; a restarted replica re-bootstraps
      and must converge to the primary's fingerprint.
    - ``torn-frames`` / ``bitflip-frames``: the ``repl.fetch`` fault
      damages a shipped chunk in flight; the replica must detect the
      damage via frame checksums (resync) or torn-tail re-fetch and
      still converge.
    - ``promote-during-replay``: the replica is promoted while commits
      are still streaming; acknowledged commits must all be present on
      the promoted graph and it must serve as a valid source for a
      fresh replica.
    """
    from repro.replication.replica import Replica
    from repro.tools.verify import compare_graphs, fingerprint

    if scenario not in FAILOVER_SCENARIOS:
        raise ValueError(f"unknown failover scenario {scenario!r}")
    base = os.fspath(directory)
    path = os.path.join(base, "graph")
    project_id, __ = HAM.create_graph(path)
    ham = HAM.open_graph(project_id, path)
    hub = ham._replication_hub()
    oracle = CommitOracle()
    with ham.begin() as setup:
        node, __ = ham.add_node(setup)
        attr = ham.get_attribute_index("status", setup)

    if scenario == "primary-kill":
        return _failover_primary_kill(base, ham, hub, oracle, node, attr,
                                      seed, commits)
    if scenario == "replica-kill":
        return _failover_replica_kill(base, ham, oracle, node, attr,
                                      seed, commits)
    if scenario in ("torn-frames", "bitflip-frames"):
        action = "truncate" if scenario == "torn-frames" else "bitflip"
        return _failover_corrupt_frames(base, ham, oracle, node, attr,
                                        seed, commits, scenario, action)
    return _failover_promote_during_replay(base, ham, hub, oracle, node,
                                           attr, seed, commits)


def _failover_primary_kill(base, ham, hub, oracle, node, attr, seed,
                           commits) -> FailoverCaseResult:
    from repro.replication.replica import Replica
    from repro.tools.verify import compare_graphs, fingerprint
    rep_a = Replica(ham, os.path.join(base, "replica-a"), name="a",
                    poll_wait=0.5)
    rep_b = Replica(ham, os.path.join(base, "replica-b"), name="b",
                    poll_wait=0.5)
    hub.min_sync = 1
    hub.sync_timeout = 1.0
    try:
        for step in range(commits):
            _staged_failover_commit(ham, oracle, node, attr, seed, step)

        def racing_commit() -> None:
            try:
                _staged_failover_commit(ham, oracle, node, attr, seed,
                                        commits)
            except (NeptuneError, OSError):
                pass  # in flight at the kill: stays in oracle.maybe

        racer = threading.Thread(target=racing_commit, daemon=True)
        racer.start()
        abandon(ham)  # the kill: no checkpoint, no goodbye
        racer.join(timeout=10.0)
        assert not racer.is_alive(), "commit wedged across primary death"

        promoted = max((rep_a, rep_b), key=lambda rep: rep.replayed_lsn)
        survivor = rep_b if promoted is rep_a else rep_a
        promoted.promote()
        verify_invariants(promoted.ham, oracle)
        # The survivor re-routes to the promoted primary and catches up
        # on its existing cursor (same global LSNs, same epoch).
        survivor.retarget(promoted.ham)
        for step in range(commits + 10, commits + 13):
            _staged_failover_commit(promoted.ham, oracle, node, attr,
                                    seed, step)
        _await_replayed(survivor, promoted.ham._log.durable_end())
        verify_invariants(survivor.ham, oracle)
        mismatch = compare_graphs(promoted.ham, survivor.ham)
        assert not mismatch, f"divergence after failover: {mismatch}"
        digest = fingerprint(promoted.ham)
        return FailoverCaseResult(
            scenario="primary-kill", seed=seed, fired=True,
            acknowledged=len(oracle.committed), fingerprint=digest)
    finally:
        for rep in (rep_a, rep_b):
            try:
                rep.close()
            except NeptuneError:
                pass


def _failover_replica_kill(base, ham, oracle, node, attr, seed,
                           commits) -> FailoverCaseResult:
    from repro.replication.replica import Replica
    from repro.tools.verify import compare_graphs, fingerprint
    # Commit the workload first, then arm the fault and let a fresh
    # replica replay into it: a crash fault is sticky process-wide, so
    # arming it while the primary still commits would kill the writer
    # at ``txn.apply`` too — a different cell's scenario.
    for step in range(commits):
        _staged_failover_commit(ham, oracle, node, attr, seed, step)
    hit = max(2, commits // 2)
    injector = faults.install(faults.FaultPlan(
        specs=(faults.FaultSpec("repl.apply", "kill", hit=hit),),
        seed=seed))
    try:
        rep = Replica(ham, os.path.join(base, "replica-a"), name="a",
                      poll_wait=0.05)
        import time as _time
        end = _time.monotonic() + 15.0
        while not injector.fired and _time.monotonic() < end:
            _time.sleep(0.02)
        assert injector.fired, "repl.apply fault never triggered"
        rep._thread.join(timeout=10.0)
        assert isinstance(rep.failure, faults.SimulatedCrash), (
            f"expected the apply loop to die on SimulatedCrash, "
            f"got {rep.failure!r}")
    finally:
        faults.uninstall()
    rep.stop()
    try:
        rep.ham.close()
    except NeptuneError:
        pass
    # Restart over the same directory: the replica re-bootstraps from
    # the primary (a crashed replica's directory is not resumable) and
    # must converge to an identical graph.
    restarted = Replica(ham, os.path.join(base, "replica-a"), name="a2",
                        poll_wait=0.05)
    try:
        _await_replayed(restarted, ham._log.durable_end())
        verify_invariants(restarted.ham, oracle)
        mismatch = compare_graphs(ham, restarted.ham)
        assert not mismatch, f"replica diverged after restart: {mismatch}"
        digest = fingerprint(ham)
    finally:
        restarted.close()
        ham.close()
    return FailoverCaseResult(
        scenario="replica-kill", seed=seed, fired=True,
        acknowledged=len(oracle.committed), fingerprint=digest)


def _failover_corrupt_frames(base, ham, oracle, node, attr, seed,
                             commits, scenario, action,
                             ) -> FailoverCaseResult:
    from repro.replication.replica import Replica
    from repro.tools.verify import compare_graphs, fingerprint
    injector = faults.install(faults.FaultPlan(
        specs=(faults.FaultSpec("repl.fetch", action, hit=1),),
        seed=seed))
    try:
        rep = Replica(ham, os.path.join(base, "replica-a"), name="a",
                      poll_wait=0.05)
        try:
            for step in range(commits):
                _staged_failover_commit(ham, oracle, node, attr, seed,
                                        step)
            import time as _time
            end = _time.monotonic() + 15.0
            while not injector.fired and _time.monotonic() < end:
                _time.sleep(0.02)
            assert injector.fired, f"repl.fetch {action} never triggered"
        finally:
            faults.uninstall()
        _await_replayed(rep, ham._log.durable_end())
        verify_invariants(rep.ham, oracle)
        mismatch = compare_graphs(ham, rep.ham)
        assert not mismatch, (
            f"replica diverged after {scenario}: {mismatch}")
        digest = fingerprint(ham)
    finally:
        faults.uninstall()
        try:
            rep.close()
        except (NeptuneError, UnboundLocalError):
            pass
        ham.close()
    return FailoverCaseResult(
        scenario=scenario, seed=seed, fired=True,
        acknowledged=len(oracle.committed), fingerprint=digest)


def _failover_promote_during_replay(base, ham, hub, oracle, node, attr,
                                    seed, commits) -> FailoverCaseResult:
    from repro.errors import ReplicaLagError
    from repro.replication.replica import Replica
    from repro.tools.verify import compare_graphs, fingerprint
    rep = Replica(ham, os.path.join(base, "replica-a"), name="a",
                  poll_wait=0.05)
    hub.min_sync = 1
    hub.sync_timeout = 1.0
    stop = threading.Event()

    def writer() -> None:
        step = 0
        while not stop.is_set() and step < commits * 4:
            try:
                _staged_failover_commit(ham, oracle, node, attr, seed,
                                        step)
            except ReplicaLagError:
                return  # the replica stopped acking: promotion landed
            except (NeptuneError, OSError):
                return
            step += 1

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    import time as _time
    end = _time.monotonic() + 15.0
    while (len(oracle.committed) < max(2, commits // 2)
           and thread.is_alive() and _time.monotonic() < end):
        _time.sleep(0.01)
    rep.promote()  # mid-stream: commits may still be in flight
    stop.set()
    thread.join(timeout=15.0)
    assert not thread.is_alive(), "writer wedged across promotion"
    abandon(ham)  # the old primary is fenced off
    try:
        # Every acknowledged commit must be on the promoted graph: the
        # semi-sync gate only acked commits this replica replayed.
        verify_invariants(rep.ham, oracle)
        # The promoted graph accepts writes and serves as a source.
        _staged_failover_commit(rep.ham, oracle, node, attr, seed,
                                commits * 4 + 1)
        fresh = Replica(rep.ham, os.path.join(base, "replica-b"),
                        name="b", poll_wait=0.05)
        try:
            _await_replayed(fresh, rep.ham._log.durable_end())
            verify_invariants(fresh.ham, oracle)
            mismatch = compare_graphs(rep.ham, fresh.ham)
            assert not mismatch, (
                f"post-promotion divergence: {mismatch}")
            digest = fingerprint(rep.ham)
        finally:
            fresh.close()
    finally:
        rep.close()
    return FailoverCaseResult(
        scenario="promote-during-replay", seed=seed, fired=True,
        acknowledged=len(oracle.committed), fingerprint=digest)


# ======================================================================
# the oracle checks


def verify_invariants(ham: HAM, oracle: CommitOracle) -> None:
    """Assert the recovery contract against a freshly recovered HAM."""
    for staged in oracle.committed.values():
        _assert_fully_present(ham, staged)
    absent_markers = [staged.marker for staged in oracle.losers.values()]
    for staged in oracle.losers.values():
        _assert_attrs_absent(ham, staged)
    for staged in oracle.maybe.values():
        items = staged.items()
        present = [item for item in items if _item_present(ham, item)]
        assert not present or len(present) == len(items), (
            f"step {staged.step} ({staged.marker}) recovered partially: "
            f"{len(present)} of {len(items)} effects present")
        if not present:
            absent_markers.append(staged.marker)
            _assert_attrs_absent(ham, staged)
    _assert_markers_unseen(ham, absent_markers)


def _assert_fully_present(ham: HAM, staged) -> None:
    for node, time, contents in staged.versions:
        recovered = ham.open_node(node, time=time)[0]
        assert recovered == contents, (
            f"step {staged.step}: node {node}@{time} recovered "
            f"{recovered!r}, committed {contents!r}")
    for node, attr, value, stamp in staged.attrs:
        recovered = ham.store.node(node).attributes.value_at(
            attr, stamp, default=None)
        assert recovered == value, (
            f"step {staged.step}: node {node} attribute {attr}@{stamp} "
            f"recovered {recovered!r}, committed {value!r}")
    for link, from_node, to_node in staged.links:
        assert ham.get_from_node(link)[0] == from_node
        assert ham.get_to_node(link)[0] == to_node
    for node in staged.new_nodes:
        ham.store.node(node)  # raises NodeNotFoundError if lost


def _item_present(ham: HAM, item) -> bool:
    kind = item[0]
    if kind == "version":
        __, node, time, contents = item
        record = ham.store.nodes.get(node)
        if record is None or time not in record.content_version_times():
            return False
        return record.contents_at(time) == contents
    if kind == "attr":
        __, node, attr, value, stamp = item
        record = ham.store.nodes.get(node)
        if record is None:
            return False
        return record.attributes.value_at(attr, stamp,
                                          default=None) == value
    if kind == "link":
        __, link, from_node, to_node = item
        record = ham.store.links.get(link)
        return record is not None
    if kind == "node":
        return item[1] in ham.store.nodes
    raise AssertionError(f"unknown staged item {item!r}")


def _assert_attrs_absent(ham: HAM, staged) -> None:
    """Targeted check: a dead transaction's attribute values are gone."""
    for node, attr, value, stamp in staged.attrs:
        record = ham.store.nodes.get(node)
        if record is None:
            continue
        for probe in (stamp, 0):  # at the write's stamp and currently
            recovered = record.attributes.value_at(attr, probe,
                                                   default=None)
            assert recovered != value, (
                f"step {staged.step}: aborted attribute value {value!r} "
                f"visible on node {node} at time {probe}")


def _assert_markers_unseen(ham: HAM, markers: list[str]) -> None:
    """Sweep every content version of every node for dead markers."""
    if not markers:
        return
    needles = [marker.encode() for marker in markers]
    for index, record in ham.store.nodes.items():
        for time in record.content_version_times():
            contents = record.contents_at(time)
            for needle in needles:
                assert needle not in contents, (
                    f"marker {needle!r} of a dead transaction survives "
                    f"in node {index}@{time}")


# ======================================================================
# log-boundary sweep support


def wal_record_boundaries(path) -> list[int]:
    """Byte offsets after each complete record frame in a WAL file."""
    with open(path, "rb") as handle:
        data = handle.read()
    boundaries = []
    offset = 0
    while offset + RECORD_HEADER.size <= len(data):
        try:
            __, offset = unpack_record(data, offset)
        except NeptuneError:
            break
        boundaries.append(offset)
    return boundaries
