"""Deterministic fault injection for the storage and server stacks.

The paper's HAM promises "complete recovery from any aborted
transaction" (§2.2); that promise is only as good as the failure paths
nobody exercises.  This module provides *named injection points* woven
through the WAL, pager, heap, and server, each of which can be told —
via a seeded, replayable :class:`FaultPlan` — to fail in one of four
ways on its N-th traversal:

- ``raise``    — raise :class:`repro.errors.FaultError` (a transient
  software error: the process lives, the operation fails);
- ``kill``     — simulate a process kill: raise :class:`SimulatedCrash`
  (a ``BaseException``) and go *sticky*: every later traversal of any
  point also crashes, so close/flush handlers cannot quietly complete
  the work a dead process never would have;
- ``truncate`` — write only a random prefix of the bytes that were
  about to reach the medium (a torn write), then crash sticky;
- ``bitflip``  — flip one random bit in the data (silent medium
  corruption), then crash sticky.  Socket points corrupt the outgoing
  frame and drop the connection instead (the process lives).

Injection points
----------------

======================  ================================================
``wal.append.pre-fsync``   before a WAL record's bytes reach the file
``wal.append.post-fsync``  after the write, before any fsync covers it
``wal.commit.force``       before the commit-time fsync (corruption is
                           confined to the not-yet-forced region)
``pager.write``            before a dirty page writes through
``heap.write``             before a heap record's bytes are placed
``server.send``            before a response frame is sent
``server.recv``            before a request frame is read
``server.dispatch``        in a worker, before an admitted (possibly
                           pipelined) request executes
``session.dispatch``       before a decoded request dispatches
``txn.apply``              after the commit blob is appended (and any
                           synchronous force paid), before the write-set
                           publishes into the in-memory store
``repl.ship``              on the primary, before durable log bytes are
                           served to a replication subscriber
``repl.fetch``             on a replica, when a fetched chunk arrives —
                           corruption actions tear or bit-flip the
                           in-flight chunk (the replica must survive)
``repl.apply``             on a replica, before a shipped commit group
                           publishes into the replica's store
``sub.deliver``            in the subscription hub, after a commit is
                           durable and published, before its events are
                           handed to one subscriber's delivery callback
======================  ================================================

Zero-cost when disabled: call sites guard with
``if faults.INJECTOR is not None`` — one global read and a comparison.

Usage::

    plan = FaultPlan((FaultSpec("wal.commit.force", "truncate", hit=3),),
                     seed=42)
    with faults.injected(plan):
        run_workload()          # the 3rd commit force tears the log tail
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from random import Random

from repro.errors import FaultError

__all__ = [
    "ACTIONS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "INJECTOR",
    "POINTS",
    "SimulatedCrash",
    "fire",
    "injected",
    "install",
    "uninstall",
]

#: Every injection point woven into the stacks (see module docstring).
POINTS = (
    "wal.append.pre-fsync",
    "wal.append.post-fsync",
    "wal.commit.force",
    "pager.write",
    "heap.write",
    "server.send",
    "server.recv",
    "server.dispatch",
    "session.dispatch",
    "txn.apply",
    "repl.ship",
    "repl.fetch",
    "repl.apply",
    "sub.deliver",
)

#: Supported fault actions.
ACTIONS = ("raise", "kill", "truncate", "bitflip")


class SimulatedCrash(BaseException):
    """The process model died at an injection point.

    Deliberately a ``BaseException``: ``except Exception`` handlers in
    the code under test must not be able to swallow a crash.
    """

    def __init__(self, point: str):
        super().__init__(f"simulated crash at {point}")
        self.point = point


@dataclass(frozen=True)
class FaultSpec:
    """One fault: fire ``action`` on the ``hit``-th traversal of ``point``."""

    point: str
    action: str
    hit: int = 1

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.hit < 1:
            raise ValueError("hit counts from 1")


@dataclass(frozen=True)
class FaultPlan:
    """A replayable set of faults: specs plus the corruption RNG seed."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0


class FaultInjector:
    """Counts traversals of injection points and triggers planned faults.

    Thread-safe.  All randomness (how many bytes a torn write keeps,
    which bit flips) comes from ``Random(plan.seed)``, so a failing case
    replays exactly from its (plan, seed) pair.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = Random(plan.seed)
        self._lock = threading.Lock()
        self._hits: dict[str, int] = {}
        #: Specs that have fired, in firing order.
        self.fired: list[FaultSpec] = []
        #: True once a kill/truncate/bitflip crash fired; every later
        #: traversal of any point raises :class:`SimulatedCrash`.
        self.crashed = False

    # ------------------------------------------------------------------

    def hits(self, point: str) -> int:
        """How many times ``point`` has been traversed."""
        with self._lock:
            return self._hits.get(point, 0)

    def fire(self, point: str, **ctx) -> None:
        """Called from an injection point; triggers a planned fault."""
        with self._lock:
            if self.crashed:
                raise SimulatedCrash(point)
            count = self._hits.get(point, 0) + 1
            self._hits[point] = count
            spec = self._match(point, count)
            if spec is None:
                return
            self.fired.append(spec)
        self._count_injected()
        self._trigger(spec, ctx)

    def _match(self, point: str, count: int) -> FaultSpec | None:
        for spec in self.plan.specs:
            if spec.point == point and spec.hit == count:
                return spec
        return None

    @staticmethod
    def _count_injected() -> None:
        # Imported lazily: repro.tools pulls in repro.core.ham, which
        # imports the storage modules that import this module.
        try:
            from repro.tools.metrics import RESILIENCE
        except Exception:  # pragma: no cover - partial interpreter teardown
            return
        RESILIENCE.increment("injected_faults")

    # ------------------------------------------------------------------
    # actions

    def _trigger(self, spec: FaultSpec, ctx: dict) -> None:
        if spec.action == "raise":
            raise FaultError(f"injected fault at {spec.point}")
        if spec.action == "kill":
            self.crashed = True
            raise SimulatedCrash(spec.point)
        # truncate / bitflip: pick the corruption strategy from the
        # context the injection point supplied.
        if "sock" in ctx:
            self._corrupt_sock(spec, ctx)
        elif "buffer" in ctx:
            self._corrupt_buffer(spec, ctx)
        elif "data" in ctx:
            self._corrupt_pre_write(spec, ctx)
        elif ctx.get("length"):
            self._corrupt_region(spec, ctx)
        else:
            # Nothing to corrupt at this point (e.g. an empty region or a
            # pure dispatch point): degrade to a kill.
            self.crashed = True
            raise SimulatedCrash(spec.point)

    def _flip_one_bit(self, data: bytes) -> bytes:
        if not data:
            return data
        mutated = bytearray(data)
        mutated[self._rng.randrange(len(mutated))] ^= \
            1 << self._rng.randrange(8)
        return bytes(mutated)

    def _corrupt_pre_write(self, spec: FaultSpec, ctx: dict) -> None:
        """Corrupt a write that has NOT happened yet.

        The injector performs the (torn or bit-flipped) write itself via
        its own descriptor, then crashes sticky so the intact write
        never lands.
        """
        path, offset = ctx["path"], ctx["offset"]
        data = bytes(ctx["data"])
        if spec.action == "truncate":
            keep = self._rng.randrange(len(data)) if data else 0
            written = data[:keep]
        else:
            written = self._flip_one_bit(data)
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            size = os.fstat(fd).st_size
            os.lseek(fd, offset, os.SEEK_SET)
            if written:
                os.write(fd, written)
            if spec.action == "truncate" and offset + len(data) >= size:
                # The torn write was extending the file: leave it short.
                os.ftruncate(fd, offset + len(written))
            os.fsync(fd)
        finally:
            os.close(fd)
        self.crashed = True
        raise SimulatedCrash(spec.point)

    def _corrupt_region(self, spec: FaultSpec, ctx: dict) -> None:
        """Corrupt an already-written (but not yet forced) byte region."""
        path, offset, length = ctx["path"], ctx["offset"], ctx["length"]
        fd = os.open(path, os.O_RDWR, 0o644)
        try:
            if spec.action == "truncate":
                os.ftruncate(fd, offset + self._rng.randrange(length))
            else:
                os.lseek(fd, offset, os.SEEK_SET)
                region = os.read(fd, length)
                os.lseek(fd, offset, os.SEEK_SET)
                os.write(fd, self._flip_one_bit(region))
            os.fsync(fd)
        finally:
            os.close(fd)
        self.crashed = True
        raise SimulatedCrash(spec.point)

    def _corrupt_buffer(self, spec: FaultSpec, ctx: dict) -> None:
        """Corrupt an in-memory chunk in place (a torn network read).

        Not a process crash, and — unlike every other corruption — not
        an error either: the damaged chunk is *delivered*, exactly as a
        torn read would deliver it, and the receiving side must detect
        the damage itself (frame checksums) and recover.  The injector
        does not go sticky.
        """
        buffer = ctx["buffer"]
        if len(buffer):
            if spec.action == "truncate":
                del buffer[self._rng.randrange(len(buffer)):]
            else:
                buffer[self._rng.randrange(len(buffer))] ^= \
                    1 << self._rng.randrange(8)

    def _corrupt_sock(self, spec: FaultSpec, ctx: dict) -> None:
        """Corrupt a wire frame and drop the connection.

        Network faults are not process crashes: the server survives and
        only this connection dies, so the error raised here is a plain
        :class:`FaultError` and the injector does not go sticky.
        """
        sock = ctx["sock"]
        frame = ctx.get("frame")
        try:
            if frame:
                frame = bytes(frame)
                if spec.action == "truncate":
                    keep = self._rng.randrange(len(frame))
                    if keep:
                        sock.sendall(frame[:keep])
                elif len(frame) > 4:
                    # Flip a bit after the length prefix — corrupting the
                    # prefix would stall the peer on a bogus huge read
                    # instead of failing its checksum.
                    mutated = bytearray(frame)
                    mutated[4 + self._rng.randrange(len(frame) - 4)] ^= \
                        1 << self._rng.randrange(8)
                    sock.sendall(bytes(mutated))
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass
        raise FaultError(
            f"injected connection fault ({spec.action}) at {spec.point}")


# ----------------------------------------------------------------------
# module-level switch

#: The installed injector, or None.  Hot paths read this once; when it
#: is None the injection point costs one global load and a comparison.
INJECTOR: FaultInjector | None = None


def install(plan: FaultPlan) -> FaultInjector:
    """Install ``plan`` process-wide; returns the live injector."""
    global INJECTOR
    INJECTOR = FaultInjector(plan)
    return INJECTOR


def uninstall() -> None:
    """Remove any installed injector."""
    global INJECTOR
    INJECTOR = None


@contextmanager
def injected(plan: FaultPlan):
    """``with faults.injected(plan) as injector:`` — install then clean up."""
    injector = install(plan)
    try:
        yield injector
    finally:
        uninstall()


def fire(point: str, **ctx) -> None:
    """Traverse an injection point (no-op when nothing is installed)."""
    injector = INJECTOR
    if injector is not None:
        injector.fire(point, **ctx)
