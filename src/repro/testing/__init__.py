"""Test infrastructure that ships with the library.

- :mod:`repro.testing.faults` — deterministic fault injection with named
  points woven through the storage and server stacks;
- :mod:`repro.testing.crashmatrix` — the crash-matrix recovery harness
  (imported on demand; it pulls in the full HAM stack).

Only the fault-injection surface is re-exported here: the storage
modules import this package at startup, so it must stay dependency-free.
"""

from repro.testing.faults import (
    ACTIONS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    POINTS,
    SimulatedCrash,
    injected,
    install,
    uninstall,
)

__all__ = [
    "ACTIONS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "POINTS",
    "SimulatedCrash",
    "injected",
    "install",
    "uninstall",
]
