"""Replica-side replay: turn a shipped WAL stream into a live HAM.

A :class:`Replica` bootstraps from the primary's ``replSnapshot`` (the
snapshot anchoring byte 0 of the current log epoch), then pulls durable
log bytes with ``replSubscribe`` and feeds them through the *same* redo
machinery crash recovery uses: frames decode to
:class:`~repro.storage.log.LogRecord` s, UPDATE records group per
transaction, and a COMMIT publishes the group through a
:class:`~repro.txn.writeset.WriteSet` overlay via
:meth:`~repro.txn.manager.TransactionManager.apply_replicated` — the
apply-seqlock bracket — so the replica's lock-free MVCC snapshot readers
see exactly the atomic publication discipline the primary's readers do.

Correctness notes:

- The shipped bytes are appended verbatim to the replica's own
  write-ahead log (and fsynced) *before* they are applied, so an
  acknowledged replay position is also durable on the replica, and a
  promoted replica can serve the identical byte stream onward to the
  surviving replicas (its log keeps the primary's global LSNs via
  ``base_lsn``).
- Applying commits in log order reproduces publication order: any two
  conflicting transactions were serialized by the primary's strict-2PL
  locks, which are held across publication, so their log order equals
  their publication order; non-conflicting transactions commute.
- A torn fetch (bytes missing from the tail of a chunk) is harmless:
  the cursor advances only past bytes actually received, so the next
  fetch re-reads the missing tail.  A corrupt frame (checksum or
  decode failure) forces a full resynchronization from a fresh
  snapshot, as does a primary log truncation (epoch change).
- Mid-stream CHECKPOINT records are ignored: the primary quiesces all
  transactions before checkpointing, so the marker's snapshot equals
  the replayed state at that point, and the truncation that follows it
  triggers an epoch resync anyway.
"""

from __future__ import annotations

import os
import threading

from repro.core.graph import GraphDirectory, GraphStore
from repro.core.ham import _APPLY, HAM
from repro.core.types import Protections
from repro.errors import NeptuneError, RecoveryError, StorageError
from repro.query.index import AttributeValueIndex
from repro.query.stats import AttributeStatistics
from repro.storage.cas import collect_snapshot_blobs, inflate_snapshot_blobs
from repro.storage.log import (
    MARK_SUFFIX,
    LogRecord,
    LogRecordKind,
    WriteAheadLog,
)
from repro.storage.serializer import RECORD_HEADER, decode_value, unpack_record
from repro.testing import faults
from repro.tools.metrics import REPLICATION
from repro.txn.writeset import WriteSet

__all__ = ["Replica"]

#: A frame longer than this cannot be legitimate (commit blobs are far
#: smaller); a bit flip in a length prefix would otherwise stall the
#: stream waiting for bytes that never come.
_MAX_FRAME = 1 << 26


class Replica:
    """A live, read-only copy of a primary graph, fed by its WAL stream."""

    def __init__(self, source, directory: str | os.PathLike, *,
                 name: str | None = None,
                 poll_wait: float = 1.0,
                 max_bytes: int = 1 << 20,
                 retry_interval: float = 0.2,
                 use_attribute_index: bool = True,
                 lock_timeout: float = 10.0,
                 start: bool = True):
        #: Anything answering ``repl_snapshot``/``repl_subscribe`` — the
        #: primary :class:`~repro.core.ham.HAM` itself (in-process) or a
        #: :class:`~repro.server.client.RemoteHAM` bound to it.
        self._source = source
        self._directory_path = os.fspath(directory)
        self.name = name or f"replica-{os.getpid()}-{id(self):x}"
        self.poll_wait = poll_wait
        self.max_bytes = max_bytes
        self.retry_interval = retry_interval
        self._use_index = use_attribute_index
        self._lock_timeout = lock_timeout
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        #: Serializes ingest/resync against promotion and status reads.
        self._apply_lock = threading.RLock()
        self._promoted = False
        #: Last exception that killed or stalled the apply loop.
        self.failure: BaseException | None = None
        #: Transfer accounting for the most recent bootstrap/resync:
        #: bytes actually shipped, blobs shipped, blobs satisfied from
        #: payloads this replica already held (manifest reuse).
        self.bootstrap_bytes = 0
        self.bootstrap_blobs_shipped = 0
        self.bootstrap_blobs_reused = 0
        self.ham: HAM
        self._bootstrap()
        if start:
            self.start()

    # ------------------------------------------------------------------
    # bootstrap and resynchronization

    def _harvest_local_blobs(self) -> dict[bytes, bytes]:
        """Payloads a previous incarnation's on-disk snapshot holds.

        These seed the ``have`` manifest sent with ``replSnapshot``: the
        primary then ships only blobs this replica is missing, so a
        re-bootstrap after a brief disconnect transfers a near-empty
        diff instead of the whole content history.
        """
        graph_dir = GraphDirectory(self._directory_path)
        try:
            meta = graph_dir.read_meta()
            snapshot = graph_dir.load_snapshot_record(meta["snapshot"])
            return collect_snapshot_blobs(snapshot)
        except (NeptuneError, OSError, KeyError, TypeError):
            # No previous incarnation (or one too damaged to read):
            # bootstrap with an empty manifest and take the full ship.
            return {}

    def _build_store(self, snap: dict,
                     have: dict[bytes, bytes]) -> GraphStore:
        """Decode a ``replSnapshot`` reply into a live store.

        Manifest-form replies arrive stripped: payload sites are hash
        references, resolved from the shipped ``blobs`` first and the
        locally held ``have`` pool second.  Legacy whole-snapshot
        replies pass straight through.
        """
        snapshot = decode_value(snap["snapshot"])
        shipped = {bytes(digest): bytes(payload)
                   for digest, payload in (snap.get("blobs") or [])}
        transferred = len(snap["snapshot"]) + sum(
            len(digest) + len(payload)
            for digest, payload in shipped.items())
        reused = 0
        if snap.get("manifest") is not None:
            reused = sum(1 for digest in snap["manifest"]
                         if bytes(digest) not in shipped)

            def lookup(digest: bytes) -> bytes | None:
                payload = shipped.get(digest)
                if payload is None:
                    payload = have.get(digest)
                return payload

            inflate_snapshot_blobs(snapshot, lookup)
        self.bootstrap_bytes = transferred
        self.bootstrap_blobs_shipped = len(shipped)
        self.bootstrap_blobs_reused = reused
        REPLICATION.record("bootstrap_bytes", transferred)
        REPLICATION.record("bootstrap_blobs_shipped", len(shipped))
        REPLICATION.record("bootstrap_blobs_reused", reused)
        return GraphStore.from_snapshot(snapshot)

    def _bootstrap(self) -> None:
        have = self._harvest_local_blobs()
        snap = self._source.repl_snapshot(have=sorted(have))
        store = self._build_store(snap, have)
        os.makedirs(self._directory_path, exist_ok=True)
        graph_dir = GraphDirectory(self._directory_path)
        # A replica directory is always rebuilt from the primary: stale
        # files from an earlier incarnation are not resumable state.
        for path in (graph_dir.meta_path, graph_dir.snapshots_path,
                     graph_dir.wal_path, graph_dir.wal_path + MARK_SUFFIX):
            if os.path.exists(path):
                os.remove(path)
        snapshot_id = graph_dir.append_snapshot(store)
        graph_dir.write_meta({
            "project": store.project_id,
            "created": store.created_at,
            "protections": snap.get("protections",
                                    Protections.READ_WRITE.value),
            "snapshot": snapshot_id,
        })
        log = WriteAheadLog(graph_dir.wal_path, base_lsn=snap["lsn"])
        log.epoch = int(snap["epoch"])
        ham = HAM(store, graph_dir, log,
                  use_attribute_index=self._use_index,
                  lock_timeout=self._lock_timeout)
        ham._accept_writes = False
        ham._repl_applier = self
        self.ham = ham
        self._reset_cursor(int(snap["lsn"]), int(snap["epoch"]))

    def _reset_cursor(self, lsn: int, epoch: int) -> None:
        self._epoch = epoch
        #: Global LSN of the first byte of ``_buffer``.
        self._parse_lsn = lsn
        self._buffer = bytearray()
        #: Global LSN one past the last byte received (the fetch cursor).
        self._stream_end = lsn
        #: Global LSN one past the last fully processed record.
        self.replayed_lsn = lsn
        #: In-flight transaction groups, exactly as recovery builds them.
        self._pending: dict[int, list[tuple[str, dict]]] = {}
        self._max_txn_id = 0
        self._source_durable = lsn
        self._commits = 0

    def _resync(self) -> None:
        """Rebuild from a fresh snapshot after corruption or truncation."""
        ham = self.ham
        # The live catalog is the richest ``have`` pool: it holds every
        # payload the replayed state retains, so a resync ships only
        # what the primary wrote since.
        have = ham._store.catalog.payloads()
        snap = self._source.repl_snapshot(have=sorted(have))
        store = self._build_store(snap, have)
        graph_dir = ham._directory
        snapshot_id = graph_dir.append_snapshot(store)
        meta = graph_dir.read_meta()
        meta["previous"] = meta.get("snapshot")
        meta["snapshot"] = snapshot_id
        graph_dir.write_meta(meta)
        ham._log.rebase(int(snap["lsn"]), int(snap["epoch"]))

        def swap() -> None:
            ham._store = store
            if ham._index is not None:
                ham._index = AttributeValueIndex()
                ham._stats = AttributeStatistics()
                ham._rebuild_index()

        ham._txns.resync_base(store.clock, swap)
        self._reset_cursor(int(snap["lsn"]), int(snap["epoch"]))

    # ------------------------------------------------------------------
    # the apply loop

    def start(self) -> None:
        """Start the background fetch-and-apply thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"repl-{self.name}", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        try:
            while not self._stop.is_set():
                self._step()
        except BaseException as exc:  # SimulatedCrash must escape too
            self.failure = exc
            raise

    def _step(self) -> None:
        try:
            reply = self._source.repl_subscribe(
                from_lsn=self._stream_end, epoch=self._epoch,
                max_bytes=self.max_bytes, wait=self.poll_wait,
                ack=self.replayed_lsn, subscriber=self.name)
        except NeptuneError as exc:
            self.failure = exc
            self._stop.wait(self.retry_interval)
            return
        except OSError as exc:
            self.failure = exc
            self._stop.wait(self.retry_interval)
            return
        if self._stop.is_set():
            return
        with self._apply_lock:
            if self._stop.is_set():
                return
            if reply.get("resync"):
                self._resync()
                return
            self._source_durable = int(reply["durable_lsn"])
            data = reply.get("data") or b""
            if data:
                self._ingest(data)
            lag = max(0, self._source_durable - self.replayed_lsn)
            REPLICATION.record("lag_bytes", lag)

    def _ingest(self, data: bytes) -> None:
        chunk = bytearray(data)
        if faults.INJECTOR is not None:
            faults.fire("repl.fetch", buffer=chunk)
        # Durability before apply: an acknowledged replay position must
        # survive a replica crash, and a promoted replica must be able
        # to re-ship these exact bytes.
        self.ham._log.append_raw(bytes(chunk))
        self.ham._log.force()
        self._buffer.extend(chunk)
        try:
            self._drain_frames()
        except (StorageError, RecoveryError):
            # Checksum or decode failure inside a *complete* frame: the
            # stream is damaged beyond the torn-tail tolerance.  Start
            # over from a fresh snapshot.
            self._resync()

    def _drain_frames(self) -> None:
        buf = self._buffer
        size = len(buf)
        offset = 0
        header = RECORD_HEADER.size
        while offset + header <= size:
            length, _crc = RECORD_HEADER.unpack_from(buf, offset)
            if length > _MAX_FRAME:
                raise StorageError(
                    f"replication frame claims {length} bytes "
                    f"(corrupt length prefix)")
            end = offset + header + length
            if end > size:
                break  # incomplete frame: the next fetch completes it
            payload, _next = unpack_record(bytes(buf[offset:end]), 0)
            record = LogRecord.decode(payload,
                                      lsn=self._parse_lsn + offset)
            self._process(record, self._parse_lsn + end)
            offset = end
        if offset:
            del buf[:offset]
            self._parse_lsn += offset
        self._stream_end = self._parse_lsn + len(buf)

    def _process(self, record: LogRecord, end_lsn: int) -> None:
        if record.txn_id > self._max_txn_id:
            self._max_txn_id = record.txn_id
        kind = record.kind
        if kind is LogRecordKind.BEGIN:
            self._pending.setdefault(record.txn_id, [])
        elif kind is LogRecordKind.UPDATE:
            payload = record.payload
            self._pending.setdefault(record.txn_id, []).append(
                (payload["op"], payload["args"]))
        elif kind is LogRecordKind.ABORT:
            self._pending.pop(record.txn_id, None)
        elif kind is LogRecordKind.COMMIT:
            updates = self._pending.pop(record.txn_id, [])
            if updates:
                self._apply_commit(updates)
            self._commits += 1
        # CHECKPOINT: ignored — see the module docstring.
        REPLICATION.record("lag_commits", len(self._pending))
        self.replayed_lsn = end_lsn
        REPLICATION.record_max("replayed_lsn", end_lsn)

    def _apply_commit(self, updates: list[tuple[str, dict]]) -> None:
        if faults.INJECTOR is not None:
            faults.fire("repl.apply")
        ham = self.ham
        writeset = WriteSet(ham._store, ham._index, ham._stats)
        for operation, args in updates:
            _APPLY[operation](writeset, args)
            self._queue_index(writeset, operation, args)
        ham._txns.apply_replicated(writeset)

    @staticmethod
    def _queue_index(writeset: WriteSet, operation: str,
                     args: dict) -> None:
        """Derive the deferred index ops the primary queued structurally.

        The redo records carry attribute *indices*; the index sinks key
        on names, resolved against the write-set overlay so attributes
        interned by the same transaction are visible.
        """
        if operation == "set_node_attribute":
            name = writeset.registry.name_of(args["attribute"])
            writeset.queue_index("set", args["node"], name, args["value"])
        elif operation == "delete_node_attribute":
            name = writeset.registry.name_of(args["attribute"])
            writeset.queue_index("delete", args["node"], name)
        elif operation == "delete_node":
            writeset.queue_index("drop", args["index"])

    # ------------------------------------------------------------------
    # watermarks, promotion, lifecycle

    def status(self) -> dict:
        """The ``replStatus`` answer while this applier is attached."""
        with self._apply_lock:
            log = self.ham._log
            alive = self._thread is not None and self._thread.is_alive()
            return {
                "role": "primary" if self._promoted else "replica",
                "epoch": self._epoch,
                "base_lsn": log.base_lsn,
                "end_lsn": self._stream_end,
                "durable_lsn": log.durable_end(),
                "replayed_lsn": self.replayed_lsn,
                "source_durable_lsn": self._source_durable,
                "lag_bytes": max(0,
                                 self._source_durable - self.replayed_lsn),
                "watermark": self.ham._txns.watermark,
                "commits_applied": self._commits,
                "subscriber": self.name,
                "streaming": alive and not self._stop.is_set(),
            }

    def promote(self) -> None:
        """Turn this replica into a primary (idempotent).

        Stops the stream, then re-opens the graph for writes at exactly
        the state the shipped bytes reached: transaction numbering
        resumes above every id seen in the stream, and the HAM flips
        ``accept_writes``.  The local log keeps the primary's global
        LSNs, so surviving replicas can re-subscribe to this graph with
        their existing cursors.
        """
        with self._apply_lock:
            if self._promoted:
                return
            self._promoted = True
        self.stop()
        with self._apply_lock:
            self.ham._repl_applier = None
            self.ham._txns.resume_after(self._max_txn_id)
            # The shipped stream can end mid-frame: ingest appends (and
            # fsyncs) bytes before parsing them, so the local log may
            # carry a torn frame past the last complete-frame boundary.
            # Cut it before accepting writes — post-promotion commits
            # must append after a clean tail, or recovery and
            # ``repl_snapshot``'s anchor scan would find damage below
            # the durability mark, and re-shipping the log would feed
            # surviving replicas a corrupt stream.
            if self._buffer:
                self.ham._log.discard_tail(self._parse_lsn)
                self._buffer = bytearray()
                self._stream_end = self._parse_lsn
            # Discard in-flight groups whose COMMIT never arrived: they
            # are the unacknowledged tail, exactly what crash recovery
            # would discard.
            self._pending.clear()
        self.ham.repl_promote()
        REPLICATION.increment("promotions")

    def retarget(self, source) -> None:
        """Follow a promotion: stream from a new primary.

        The cursor carries over untouched — the promoted replica's log
        holds the identical global byte stream (same ``base_lsn``, same
        epoch), so the next fetch simply continues; if the new primary
        has since checkpointed, the epoch mismatch resyncs as usual.
        """
        with self._apply_lock:
            self._source = source

    def stop(self) -> None:
        """Stop the fetch thread (the replica keeps serving reads)."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=30.0)

    def close(self) -> None:
        """Stop streaming and close the underlying HAM."""
        self.stop()
        self.ham.close()

    def __enter__(self) -> "Replica":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
