"""WAL-shipping replication (extension; see DESIGN.md).

The primary ships its write-ahead log, byte for byte, to any number of
replicas; each replica replays the stream through the same redo path
crash recovery uses and serves MVCC snapshot reads from the result.
Three pieces:

- :class:`~repro.replication.hub.ReplicationHub` — primary side.  Tails
  the :class:`~repro.storage.log.WriteAheadLog`, answers
  ``replSubscribe`` long-polls with framed durable bytes, tracks
  subscriber acknowledgements, and (optionally) gates commit
  acknowledgement on a minimum replica count (semi-synchronous mode).
- :class:`~repro.replication.replica.Replica` — replica side.
  Bootstraps from ``replSnapshot``, appends the shipped bytes to its
  own log, applies committed transactions through the write-set
  publication path, and publishes an advancing replay watermark.
  :meth:`~repro.replication.replica.Replica.promote` turns the replica
  into a primary at exactly the state the shipped stream reached.
- :class:`~repro.replication.router.ReplicatedHAM` — client side.
  Routes reads to replicas and mutations to the primary with bounded
  staleness and read-your-writes session guarantees, and fails over to
  the most-caught-up replica when the primary dies.
"""

from repro.replication.hub import ReplicationHub
from repro.replication.replica import Replica
from repro.replication.router import ReplicaEndpoint, ReplicatedHAM

__all__ = ["ReplicationHub", "Replica", "ReplicaEndpoint", "ReplicatedHAM"]
