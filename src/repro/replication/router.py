"""Replication-aware routing: reads to replicas, writes to the primary.

A :class:`ReplicatedHAM` fronts one primary and any number of replicas
(each an ordinary :class:`~repro.server.client.RemoteHAM` session) and
exposes the registry operation surface.  Routing is derived from the
operation registry itself — :attr:`~repro.core.operations.Operation.read_only`
marks what a replica may answer — plus one rule: a call that carries a
transaction always follows that transaction home to the connection that
began it.

Consistency guarantees:

- **Read-your-writes.**  The session records the commit LSN of every
  mutation it acknowledges (``RemoteHAM.last_commit_lsn``); a replica is
  only eligible for a read once its replay watermark has passed that
  LSN.  Watermarks only advance, so a cached watermark that satisfies
  the requirement proves it without a round trip.
- **Bounded staleness.**  A replica whose replay lag exceeds
  ``staleness_budget`` bytes is ineligible.  Lag is sampled from
  ``replStatus`` at most every ``status_interval`` seconds, so the
  bound holds at that granularity.
- **Wait-or-fail.**  When no replica qualifies, the router polls for up
  to ``ryw_timeout`` seconds, then either falls back to the primary
  (``fallback_to_primary=True``, the default — counted in
  ``stale_rejects``) or raises :class:`~repro.errors.ReplicaLagError`.

Failover: when the primary connection dies (or answers
:class:`~repro.errors.NotPrimaryError` after an unseen promotion), the
router probes every replica's ``replStatus``, promotes the
most-caught-up one with the idempotent ``replPromote``, re-targets, and
re-issues the failed call — but only when re-issuing is safe: a
non-idempotent request whose outcome is unknown still surfaces
:class:`~repro.errors.RetryableError` exactly as a single-connection
client would.
"""

from __future__ import annotations

import threading
import time as _time

from repro.core.operations import REGISTRY, Operation
from repro.errors import NotPrimaryError, ReplicaLagError, RetryableError
from repro.server.client import RemoteHAM, RemoteTransaction, RetryPolicy
from repro.tools.metrics import REPLICATION

__all__ = ["ReplicaEndpoint", "ReplicatedHAM"]

_OPS: dict[str, Operation] = {op.name: op for op in REGISTRY}

#: Connection-level failures that make an endpoint unusable.  Re-routing
#: after one is safe for exactly the calls RemoteHAM itself would have
#: retried — anything else already surfaced as RetryableError.
_TRANSPORT_ERRORS = (ConnectionError, TimeoutError, OSError)


class ReplicaEndpoint:
    """Where one replica listens, with its cached replication status."""

    def __init__(self, host: str, port: int, name: str | None = None):
        self.host = host
        self.port = port
        self.name = name or f"{host}:{port}"
        self.client: RemoteHAM | None = None
        self.healthy = True
        #: Cached ``replStatus`` fields (watermarks only ever advance,
        #: so a satisfied cached requirement stays satisfied).
        self.replayed_lsn = 0
        self.lag_bytes = 0
        self.checked_at = 0.0

    def refresh(self) -> bool:
        """Re-sample ``replStatus``; returns False on a dead endpoint."""
        try:
            status = self.client.repl_status()
        except _TRANSPORT_ERRORS:
            self.healthy = False
            return False
        self.replayed_lsn = max(self.replayed_lsn,
                                int(status.get("replayed_lsn", 0)))
        self.lag_bytes = int(status.get("lag_bytes", 0))
        self.checked_at = _time.monotonic()
        self.healthy = True
        return True


class ReplicatedHAM:
    """Route HAM operations across a primary and its replicas."""

    def __init__(self, primary: tuple[str, int],
                 replicas: tuple[tuple[str, int], ...] = (), *,
                 staleness_budget: int | None = 1 << 20,
                 read_your_writes: bool = True,
                 ryw_timeout: float = 2.0,
                 status_interval: float = 0.25,
                 fallback_to_primary: bool = True,
                 timeout: float = 30.0,
                 retry: RetryPolicy | None = None,
                 client_factory=RemoteHAM):
        self.staleness_budget = staleness_budget
        self.read_your_writes = read_your_writes
        self.ryw_timeout = ryw_timeout
        self.status_interval = status_interval
        self.fallback_to_primary = fallback_to_primary
        self._timeout = timeout
        self._retry = retry
        self._client_factory = client_factory
        self._failover_lock = threading.Lock()
        self._rotation = 0
        #: How many times this router promoted a replica and re-targeted.
        self.failovers = 0
        #: Reads the replica tier could not serve within its guarantees.
        self.stale_rejects = 0
        self._primary = self._connect(*primary)
        self._readers: list[ReplicaEndpoint] = []
        for host, port in replicas:
            endpoint = ReplicaEndpoint(host, port)
            endpoint.client = self._connect(host, port)
            self._readers.append(endpoint)

    def _connect(self, host: str, port: int) -> RemoteHAM:
        return self._client_factory(host, port, timeout=self._timeout,
                                    retry=self._retry)

    # ------------------------------------------------------------------
    # operation surface (generated routing wrappers)

    def __getattr__(self, name: str):
        operation = _OPS.get(name)
        if operation is None or operation.kind == "session":
            raise AttributeError(
                f"{type(self).__name__!s} has no attribute {name!r}")
        if operation.kind == "ham_property":
            return getattr(self._route_target(operation, (), {}), name)

        def call(*args, **kwargs):
            return self._dispatch(operation, name, args, kwargs)

        call.__name__ = name
        call.__doc__ = operation.doc
        self.__dict__[name] = call
        return call

    def _dispatch(self, operation: Operation, name: str, args, kwargs):
        txn_client = self._transaction_home(args, kwargs)
        if txn_client is not None:
            return getattr(txn_client, name)(*args, **kwargs)
        if operation.read_only:
            return self._call_read(name, args, kwargs)
        return self._call_primary(
            lambda client: getattr(client, name)(*args, **kwargs))

    @staticmethod
    def _transaction_home(args, kwargs) -> RemoteHAM | None:
        """A call carrying a transaction goes to the connection that
        began it — the transaction only exists in that session."""
        for value in args:
            if isinstance(value, RemoteTransaction):
                return value._client
        txn = kwargs.get("txn")
        if isinstance(txn, RemoteTransaction):
            return txn._client
        return None

    def _route_target(self, operation: Operation, args, kwargs) -> RemoteHAM:
        client = self._transaction_home(args, kwargs)
        if client is not None:
            return client
        if operation.read_only:
            return self._reader()
        return self._primary

    # ------------------------------------------------------------------
    # sessions

    def begin(self, read_only: bool = False) -> RemoteTransaction:
        """Open a transaction: read-only on a replica, writes on the
        primary.  Every later call carrying the transaction follows it
        home automatically."""
        if read_only:
            client = self._reader()
            if client is not self._primary:
                try:
                    return client.begin(read_only=True)
                except _TRANSPORT_ERRORS:
                    self._mark_dead(client)
            # Fall through: the replica died under us, or none qualify.
        return self._call_primary(
            lambda client: client.begin(read_only=read_only))

    transaction = begin

    def batch(self):
        """A primary-session batch (batches may carry mutations)."""
        return self._primary.batch()

    def pipeline(self, max_inflight: int | None = None):
        """A primary-session pipeline (pipelines may carry mutations)."""
        return self._primary.pipeline(max_inflight=max_inflight)

    def ping(self) -> bool:
        return self._call_primary(lambda client: client.ping())

    @property
    def primary(self) -> RemoteHAM:
        """The current primary session (mutations and fallback reads)."""
        return self._primary

    @property
    def last_commit_lsn(self) -> int:
        """Highest commit LSN this session has been acknowledged."""
        return self._primary.last_commit_lsn

    def close(self) -> None:
        self._primary.close()
        for endpoint in self._readers:
            if endpoint.client is not None:
                endpoint.client.close()

    def __enter__(self) -> "ReplicatedHAM":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def cluster_status(self) -> dict:
        """Router-level view: primary status, per-replica lag, counters."""
        try:
            primary = self._primary.repl_status()
        except _TRANSPORT_ERRORS as exc:
            primary = {"error": str(exc)}
        replicas = []
        for endpoint in self._readers:
            entry = {"name": endpoint.name, "healthy": endpoint.healthy,
                     "replayed_lsn": endpoint.replayed_lsn,
                     "lag_bytes": endpoint.lag_bytes}
            replicas.append(entry)
        return {"primary": primary, "replicas": replicas,
                "failovers": self.failovers,
                "stale_rejects": self.stale_rejects,
                "last_commit_lsn": self.last_commit_lsn}

    # ------------------------------------------------------------------
    # read routing

    def _call_read(self, name: str, args, kwargs):
        while True:
            client = self._reader()
            if client is self._primary:
                return self._call_primary(
                    lambda c: getattr(c, name)(*args, **kwargs))
            try:
                return getattr(client, name)(*args, **kwargs)
            except _TRANSPORT_ERRORS:
                self._mark_dead(client)
            except NotPrimaryError:
                # A promotion happened under us and this "replica" now
                # refuses... cannot happen for reads; defensive only.
                self._mark_dead(client)

    def _reader(self) -> RemoteHAM:
        """Pick a replica satisfying the session guarantees, else wait,
        else fall back to the primary (or raise)."""
        need = self._primary.last_commit_lsn if self.read_your_writes else 0
        deadline = _time.monotonic() + self.ryw_timeout
        while True:
            candidates = [endpoint for endpoint in self._readers
                          if endpoint.healthy and endpoint.client is not None]
            if not candidates:
                break
            now = _time.monotonic()
            for offset in range(len(candidates)):
                endpoint = candidates[
                    (self._rotation + offset) % len(candidates)]
                if self._qualifies(endpoint, need, now):
                    self._rotation += 1
                    return endpoint.client
            # Nobody qualifies on cached state: refresh and re-check.
            for endpoint in candidates:
                endpoint.refresh()
            now = _time.monotonic()
            for offset in range(len(candidates)):
                endpoint = candidates[
                    (self._rotation + offset) % len(candidates)]
                if endpoint.healthy and self._qualifies(endpoint, need, now):
                    self._rotation += 1
                    return endpoint.client
            if _time.monotonic() >= deadline:
                break
            _time.sleep(0.02)
        # A stale reject means a replica tier exists but could not serve
        # this read within its guarantees.  A router configured with no
        # replicas at all routes every read to the primary by design —
        # counting those would make the counter useless.
        if self._readers:
            REPLICATION.increment("stale_rejects")
            self.stale_rejects += 1
        if self.fallback_to_primary or not any(
                endpoint.healthy for endpoint in self._readers):
            return self._primary
        raise ReplicaLagError(
            f"no replica within the staleness budget "
            f"({self.staleness_budget} bytes) has replayed past lsn "
            f"{need} after {self.ryw_timeout}s")

    def _qualifies(self, endpoint: ReplicaEndpoint, need: int,
                   now: float) -> bool:
        if endpoint.replayed_lsn < need:
            return False
        if self.staleness_budget is None:
            return True
        # The lag sample must be recent for the bound to mean anything.
        if now - endpoint.checked_at > self.status_interval:
            return False
        return endpoint.lag_bytes <= self.staleness_budget

    def _mark_dead(self, client: RemoteHAM) -> None:
        for endpoint in self._readers:
            if endpoint.client is client:
                endpoint.healthy = False

    # ------------------------------------------------------------------
    # failover

    def _call_primary(self, fn):
        client = self._primary
        try:
            return fn(client)
        except RetryableError:
            raise  # outcome unknown: never silently re-route a mutation
        except NotPrimaryError as exc:
            self._failover(client, exc)
            return fn(self._primary)
        except _TRANSPORT_ERRORS as exc:
            self._failover(client, exc)
            return fn(self._primary)

    def failover(self) -> RemoteHAM:
        """Force a failover (for tests and operator tooling)."""
        self._failover(self._primary, None)
        return self._primary

    def _failover(self, dead: RemoteHAM, cause: BaseException | None) -> None:
        """Promote the most-caught-up replica and re-target the router."""
        with self._failover_lock:
            if self._primary is not dead:
                return  # another caller already failed us over
            best = None
            best_key = None
            for endpoint in self._readers:
                if endpoint.client is None:
                    continue
                try:
                    status = endpoint.client.repl_status()
                except _TRANSPORT_ERRORS:
                    endpoint.healthy = False
                    continue
                if status.get("role") == "primary":
                    key = (1, 0)  # someone already promoted it: adopt
                else:
                    key = (0, int(status.get("replayed_lsn", 0)))
                if best is None or key > best_key:
                    best, best_key = endpoint, key
            if best is None:
                if cause is not None:
                    raise cause
                raise NotPrimaryError(
                    "failover requested but no replica is reachable")
            best.client.repl_promote()
            self._readers.remove(best)
            old, self._primary = self._primary, best.client
            # Carry the session's read-your-writes watermark across the
            # failover: acknowledged commits are, by the semi-sync
            # contract, already replayed on the promoted replica.
            self._primary.last_commit_lsn = max(
                self._primary.last_commit_lsn, old.last_commit_lsn)
            self.failovers += 1
            try:
                old.close()
            except OSError:
                pass
