"""Primary-side log shipper: the ``replSubscribe`` implementation.

The hub never reads the live store.  It serves *durable log bytes only*
(:meth:`~repro.storage.log.WriteAheadLog.read_durable`), which makes the
shipped stream exactly the input crash recovery would see — a replica
that replays it lands on the same state a post-crash reopen of the
primary would.  Subscribers pull with a long-poll: a fetch from a
caught-up cursor parks on a condition variable that every commit's
acknowledgement gate notifies, so replication latency is one
commit-to-fetch handoff, not a polling interval.

Semi-synchronous mode (``min_sync > 0``) turns the same gate around:
commit acknowledgement blocks until ``min_sync`` subscribers have
*acknowledged replaying* past the commit's LSN, or
:class:`~repro.errors.ReplicaLagError` is raised after ``sync_timeout``.
The commit itself is durable and published either way — the gate only
decides when the client may learn that — which is what lets the crash
matrix treat "acknowledged" as "survives failover".
"""

from __future__ import annotations

import threading
import time as _time

from repro.errors import ReplicaLagError
from repro.testing import faults
from repro.tools.metrics import REPLICATION

__all__ = ["ReplicationHub"]


class ReplicationHub:
    """Tail a primary's write-ahead log for pull-based subscribers."""

    def __init__(self, ham, min_sync: int = 0, sync_timeout: float = 5.0):
        self._ham = ham
        self._log = ham._log
        self._cond = threading.Condition()
        #: Highest LSN each subscriber reported as *replayed* (not
        #: merely received) — the semi-sync gate counts these.
        self._acks: dict[str, int] = {}
        #: Commits to gate on ``min_sync`` replica acknowledgements
        #: before acknowledging to the client; 0 = asynchronous.
        self.min_sync = min_sync
        #: How long a semi-sync commit waits for replicas before
        #: raising :class:`ReplicaLagError`.
        self.sync_timeout = sync_timeout
        ham._txns.commit_gate = self._gate

    # ------------------------------------------------------------------
    # subscriber side

    def fetch(self, from_lsn: int, epoch: int, max_bytes: int = 1 << 20,
              wait: float = 0.0, ack: int | None = None,
              subscriber: str | None = None) -> dict:
        """Serve durable log bytes starting at global LSN ``from_lsn``.

        Blocks up to ``wait`` seconds when the cursor is caught up.
        Answers ``resync=True`` (with the current epoch and base LSN)
        when the subscriber's ``epoch`` is stale — the primary
        checkpointed and truncated, so the requested bytes no longer
        exist — or when the cursor lies outside the log entirely.
        """
        log = self._log
        if subscriber is not None and ack is not None:
            self._record_ack(subscriber, int(ack))
        deadline = _time.monotonic() + max(0.0, wait)
        while True:
            if epoch != log.epoch or from_lsn < log.base_lsn:
                return self._resync()
            # Bytes are only shippable once fsynced; an asynchronous
            # primary (or one inside a group-commit window) may have
            # appended past its durable horizon — force so the stream
            # keeps flowing rather than waiting on the next checkpoint.
            if log.durable_end() < log.end_lsn:
                log.force()
            durable = log.durable_end()
            if from_lsn > durable:
                return self._resync()
            if durable > from_lsn:
                break
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                break
            with self._cond:
                self._cond.wait(min(remaining, 0.05))
        durable = log.durable_end()
        if epoch != log.epoch:
            return self._resync()
        data = log.read_durable(from_lsn, max_bytes=max_bytes)
        if faults.INJECTOR is not None:
            # ``repl.ship``: damage (or crash) the primary-side shipper
            # just before the bytes leave.  A ``buffer=`` context lets
            # corruption plans deliver torn or bit-flipped frames that
            # the replica must detect via frame checksums.
            shipped = bytearray(data)
            faults.fire("repl.ship", buffer=shipped)
            data = bytes(shipped)
        return {
            "resync": False,
            "data": data,
            "next_lsn": from_lsn + len(data),
            "epoch": log.epoch,
            "durable_lsn": durable,
            "end_lsn": log.end_lsn,
        }

    def _resync(self) -> dict:
        log = self._log
        return {
            "resync": True,
            "data": b"",
            "next_lsn": log.base_lsn,
            "epoch": log.epoch,
            "durable_lsn": log.durable_end(),
            "end_lsn": log.end_lsn,
        }

    def _record_ack(self, subscriber: str, ack: int) -> None:
        with self._cond:
            if ack > self._acks.get(subscriber, -1):
                self._acks[subscriber] = ack
                self._cond.notify_all()
        lag = max(0, self._log.durable_end() - ack)
        REPLICATION.record("lag_bytes", lag)

    def subscriber_acks(self) -> dict[str, int]:
        """Replayed-LSN acknowledgement per known subscriber."""
        with self._cond:
            return dict(self._acks)

    # ------------------------------------------------------------------
    # primary side: the commit acknowledgement gate

    def _gate(self, commit_lsn: int) -> None:
        """Installed as ``TransactionManager.commit_gate``.

        Runs after the commit is durable, published, and unlocked.
        Always wakes parked long-polls (the commit produced new durable
        bytes); in semi-sync mode it additionally withholds the
        caller's acknowledgement until enough replicas replayed past
        ``commit_lsn``.
        """
        with self._cond:
            self._cond.notify_all()
            if self.min_sync <= 0:
                return
            deadline = _time.monotonic() + self.sync_timeout
            while self._synced_count(commit_lsn) < self.min_sync:
                remaining = deadline - _time.monotonic()
                if remaining <= 0:
                    raise ReplicaLagError(
                        f"commit at lsn {commit_lsn} durable and "
                        f"published, but only "
                        f"{self._synced_count(commit_lsn)} of the "
                        f"required {self.min_sync} replicas replayed "
                        f"it within {self.sync_timeout}s")
                self._cond.wait(remaining)

    def _synced_count(self, lsn: int) -> int:
        return sum(1 for ack in self._acks.values() if ack >= lsn)
