"""Reproduction of *Neptune: a Hypertext System for CAD Applications*
(Delisle & Schwartz, SIGMOD 1986).

The public API mirrors the paper's layers:

- :class:`repro.HAM` — the Hypertext Abstract Machine (Appendix spec):
  versioned nodes/links/attributes/demons, transactions, queries.
- :mod:`repro.server` — the central HAM server and its RPC client
  ("accessible over a local area network from a variety of workstations").
- :mod:`repro.apps` — application layers: documentation and CASE.
- :mod:`repro.browsers` — the user-interface layer, rendered as text.
- :mod:`repro.workloads` — synthetic workload generators for benchmarks.

Quickstart::

    from repro import HAM, LinkPt

    ham = HAM.ephemeral()
    with ham.begin() as txn:
        section, t = ham.add_node(txn)
        ham.modify_node(txn, node=section, expected_time=t,
                        contents=b"1. Introduction\\n")
"""

from repro.core.ham import HAM
from repro.core.types import (
    CURRENT,
    LinkPt,
    NodeKind,
    Protections,
    Version,
)
from repro.core.demons import DemonEvent, DemonRegistry, EventKind
from repro.core.contexts import Context, ContextManager, MergeReport
from repro.errors import NeptuneError

__version__ = "1.0.0"

__all__ = [
    "HAM",
    "CURRENT",
    "LinkPt",
    "NodeKind",
    "Protections",
    "Version",
    "DemonEvent",
    "DemonRegistry",
    "EventKind",
    "Context",
    "ContextManager",
    "MergeReport",
    "NeptuneError",
    "__version__",
]
