"""Exception hierarchy for the Neptune reproduction.

Every error raised by the public API derives from :class:`NeptuneError`, so
applications can catch one base class.  The Appendix of the paper models
failure as a boolean ``result_0``; we raise typed exceptions instead, which
is the idiomatic Python rendering of the same contract.
"""

from __future__ import annotations


class NeptuneError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(NeptuneError):
    """A graph-level operation failed (bad project id, missing graph...)."""


class GraphExistsError(GraphError):
    """Attempt to create a graph in a directory that already holds one."""


class GraphNotFoundError(GraphError):
    """The requested graph does not exist or the ProjectId does not match."""


class NodeNotFoundError(NeptuneError):
    """The requested node does not exist (or not at the requested time)."""


class LinkNotFoundError(NeptuneError):
    """The requested link does not exist (or not at the requested time)."""


class AttributeNotFoundError(NeptuneError):
    """The requested attribute is not defined on the target at that time."""


class VersionError(NeptuneError):
    """A version-related precondition failed.

    Raised e.g. when ``modifyNode`` is given a stale timestamp (the paper:
    "Time must be equal to the version time of the current version"), or
    when a version lookup names a time before the object existed.
    """


class StaleVersionError(VersionError):
    """Optimistic check-in failed: the node changed since it was opened."""


class ProtectionError(NeptuneError):
    """The operation is forbidden by the node's protection mode."""


class TransactionError(NeptuneError):
    """Transaction machinery failure (not active, already finished...)."""


class DeadlockError(TransactionError):
    """The lock manager chose this transaction as a deadlock victim."""


class LockTimeoutError(TransactionError):
    """A lock could not be acquired within the configured timeout."""


class RecoveryError(NeptuneError):
    """The write-ahead log is unreadable or inconsistent during recovery."""


class StorageError(NeptuneError):
    """Low-level storage failure (corrupt page, bad checksum, short read)."""


class ChecksumError(StorageError):
    """A stored record failed its checksum validation."""


class PredicateSyntaxError(NeptuneError):
    """The predicate text could not be parsed."""


class PredicateEvalError(NeptuneError):
    """The predicate could not be evaluated against an attribute set."""


class ContextError(NeptuneError):
    """Context (version-thread) operation failed."""


class MergeConflictError(ContextError):
    """A context merge found conflicting edits that need manual resolution."""


class DemonError(NeptuneError):
    """A demon could not be registered, resolved, or executed."""


class SubscriptionError(NeptuneError):
    """A change-feed subscription could not be created or has failed."""


class SubscriptionOverflowError(SubscriptionError):
    """A subscriber fell too far behind and its feed was cancelled.

    Delivery must never stall commits: when a subscriber's outbound
    queue would exceed the server's ``max_outbuf_bytes`` bound, the hub
    drops the whole feed (not individual events — a silent gap would
    break the gap-free stream guarantee) and pushes one final typed
    cancel frame carrying this error's name.  The client may resubscribe
    and resynchronize from its last-seen LSN.
    """


class FaultError(NeptuneError):
    """An injected fault fired (see :mod:`repro.testing.faults`).

    Only ever raised while a fault plan is installed; production code
    paths never construct one themselves.
    """


class RetryableError(NeptuneError):
    """The outcome of a remote call is unknown.

    Raised by :class:`repro.server.client.RemoteHAM` when the connection
    died after a non-idempotent request was sent but before its reply
    arrived: the server may or may not have executed it, so the client
    must not silently re-issue it.  The caller decides whether to check
    state and retry.
    """


class ReplicaLagError(NeptuneError):
    """A replica could not serve a read within its staleness budget.

    Raised by a replica (or the replication-aware router) when the
    replica's replay watermark is too far behind the primary for the
    configured bounded-staleness budget, or has not yet reached the LSN
    a read-your-writes session requires.  The read was *rejected*, not
    answered stale; callers may retry, widen their budget, or fall back
    to the primary.
    """


class NotPrimaryError(NeptuneError):
    """A mutation was sent to a replica.

    Replicas apply shipped log records only; they never originate
    writes.  Routers catch this to re-route the mutation to the current
    primary (possibly after a promotion they have not yet observed).
    """


class ServerBusyError(NeptuneError):
    """The server refused a new session: its connection cap is reached.

    A graceful rejection, not a hang: the server accepts the socket just
    long enough to answer the first request with this error, then closes
    the connection.  Clients should back off and retry later.
    """


class ProtocolError(NeptuneError):
    """Client/server wire-protocol violation."""


class RemoteError(NeptuneError):
    """The server reported an error executing a remote operation.

    Carries the remote exception's class name so clients can re-raise a
    matching local type when one exists.
    """

    def __init__(self, remote_type: str, message: str):
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_message = message
