"""Text-rendering primitives: panes, frames, and column layouts.

Every browser composes its display from :class:`Pane` objects — a titled
block of lines — arranged by :func:`frame` (stacked) and :func:`columns`
(side by side), drawn with ASCII box characters so output is stable
across terminals and in test expectations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Pane", "frame", "columns"]


@dataclass
class Pane:
    """A titled rectangular block of text lines."""

    title: str
    lines: list[str] = field(default_factory=list)
    min_width: int = 0

    @property
    def width(self) -> int:
        """Inner width needed to show title and every line.

        Titles get one extra column for the leading space frames add.
        """
        content = max((len(line) for line in self.lines), default=0)
        title_width = len(self.title) + 2 if self.title else 0
        return max(content, title_width, self.min_width)

    def clipped(self, width: int, height: int | None = None) -> list[str]:
        """Lines clipped/padded to ``width`` (and ``height`` if given)."""
        lines = [line[:width].ljust(width) for line in self.lines]
        if height is not None:
            lines = lines[:height]
            while len(lines) < height:
                lines.append(" " * width)
        return lines


def _bar(width: int, left: str = "+", fill: str = "-",
         right: str = "+") -> str:
    return left + fill * width + right


def frame(panes: list[Pane], width: int | None = None,
          heading: str | None = None) -> str:
    """Stack panes vertically inside one bordered frame."""
    inner = width if width is not None else max(
        (pane.width for pane in panes), default=20)
    inner = max(inner, len(heading or "") + 2)
    rows: list[str] = []
    if heading is None:
        rows.append(_bar(inner))
    else:
        label = f" {heading} "
        rows.append("+" + label + "-" * max(0, inner - len(label)) + "+")
    for position, pane in enumerate(panes):
        if pane.title:
            rows.append("|" + f" {pane.title}".ljust(inner)[:inner] + "|")
            rows.append("|" + ("-" * inner) + "|")
        for line in pane.clipped(inner):
            rows.append("|" + line + "|")
        if position != len(panes) - 1:
            rows.append(_bar(inner, "+", "=", "+"))
    rows.append(_bar(inner))
    return "\n".join(rows)


def columns(panes: list[Pane], height: int | None = None,
            gap: str = " | ") -> Pane:
    """Lay panes side by side, producing one combined pane."""
    if height is None:
        height = max((len(pane.lines) for pane in panes), default=0)
    widths = [pane.width for pane in panes]
    header = gap.join(
        pane.title.ljust(width)[:width]
        for pane, width in zip(panes, widths))
    divider = gap.join("-" * width for width in widths)
    body_rows = []
    clipped = [pane.clipped(width, height)
               for pane, width in zip(panes, widths)]
    for row in range(height):
        body_rows.append(gap.join(block[row] for block in clipped))
    lines = [header, divider] + body_rows
    return Pane(title="", lines=lines)
