"""A node editor model: text edits that carry link attachments along.

§3: link attachments to the current version form "an automatic update
mechanism: a history of link attachment offsets is saved, allowing the
link to be attached to different offsets for each version of the node."
§4.1: "Link icons can be edited just like regular characters using the
editing operations of the Smalltalk paragraph editor (copy/cut/paste)."

The HAM side of this is ``modifyNode``'s attachment list; *computing*
the new offsets is the editor's job.  :class:`NodeEditor` is that
editor: it loads a node's text and its out-link attachment offsets,
lets the caller insert/delete text and cut/paste link icons, shifts
every attachment the way a text editor shifts its embedded objects, and
checks everything in atomically on :meth:`save`.

Offset rules (the ones every embedded-object editor uses):

- insert at p: attachments at offsets >= p shift right by the length;
- delete [p, p+n): attachments beyond the span shift left by n;
  attachments *inside* the span collapse to p (the link survives,
  re-anchored at the cut point — links are first-class and must not be
  silently destroyed by text edits);
- cut/paste moves one attachment to an explicit new offset.
"""

from __future__ import annotations

from repro.core.ham import HAM
from repro.core.types import CURRENT, LinkIndex, NodeIndex, Time
from repro.errors import LinkNotFoundError, NeptuneError

__all__ = ["NodeEditor"]


class NodeEditor:
    """In-memory editing session over one node's current version."""

    def __init__(self, ham: HAM, node: NodeIndex,
                 encoding: str = "utf-8"):
        self.ham = ham
        self.node = node
        self.encoding = encoding
        contents, link_points, __, version = ham.open_node(node)
        self._text = contents.decode(encoding)
        self._base_version: Time = version
        #: (link, end-name) → current offset, tracking endpoints only.
        #: openNode returns exactly the endpoints attached to this node,
        #: so every tracking point belongs in the editing session.
        self._offsets: dict[tuple[LinkIndex, str], int] = {
            (link_index, end): pt.position
            for link_index, end, pt in link_points
            if pt.track_current
        }
        self._dirty = False

    # ------------------------------------------------------------------
    # state

    @property
    def text(self) -> str:
        """The working text (not yet checked in)."""
        return self._text

    @property
    def dirty(self) -> bool:
        """True when there are unsaved edits."""
        return self._dirty

    def offset_of(self, link: LinkIndex, end: str = "from") -> int:
        """Current working offset of one attachment."""
        try:
            return self._offsets[(link, end)]
        except KeyError:
            raise LinkNotFoundError(
                f"link {link} ({end}) is not attached to node "
                f"{self.node}") from None

    def attachments(self) -> list[tuple[LinkIndex, str, int]]:
        """Every tracked attachment with its working offset."""
        return sorted(
            (link, end, offset)
            for (link, end), offset in self._offsets.items())

    # ------------------------------------------------------------------
    # editing operations

    def insert(self, position: int, text: str) -> None:
        """Insert ``text`` at ``position``; attachments at or beyond it
        shift right."""
        if not 0 <= position <= len(self._text):
            raise NeptuneError(
                f"insert position {position} outside text of length "
                f"{len(self._text)}")
        self._text = self._text[:position] + text + self._text[position:]
        shift = len(text)
        for key, offset in self._offsets.items():
            if offset >= position:
                self._offsets[key] = offset + shift
        self._dirty = True

    def delete(self, position: int, length: int) -> str:
        """Delete ``length`` characters at ``position``; returns them.

        Attachments beyond the span shift left; attachments inside it
        re-anchor at the cut point.
        """
        if length < 0 or not 0 <= position <= len(self._text) - length:
            raise NeptuneError(
                f"delete [{position}, {position + length}) outside text "
                f"of length {len(self._text)}")
        removed = self._text[position:position + length]
        self._text = self._text[:position] + self._text[position + length:]
        end_of_span = position + length
        for key, offset in self._offsets.items():
            if offset >= end_of_span:
                self._offsets[key] = offset - length
            elif offset > position:
                self._offsets[key] = position
        self._dirty = True
        return removed

    def replace(self, position: int, length: int, text: str) -> None:
        """Delete then insert at the same position."""
        self.delete(position, length)
        self.insert(position, text)

    def move_link(self, link: LinkIndex, position: int,
                  end: str = "from") -> None:
        """Cut/paste a link icon to a new offset."""
        if not 0 <= position <= len(self._text):
            raise NeptuneError(
                f"link position {position} outside text of length "
                f"{len(self._text)}")
        self.offset_of(link, end)  # must exist
        self._offsets[(link, end)] = position
        self._dirty = True

    def append(self, text: str) -> None:
        """Insert at the end of the text."""
        self.insert(len(self._text), text)

    # ------------------------------------------------------------------
    # check-in

    def save(self, explanation: str = "edited", txn=None) -> Time:
        """Check in the text and every shifted attachment atomically.

        Uses the optimistic check: if someone else checked in since this
        editor opened the node, :class:`repro.errors.StaleVersionError`
        propagates and nothing changes — re-open and re-apply.
        """
        new_time = self.ham.modify_node(
            txn, node=self.node, expected_time=self._base_version,
            contents=self._text.encode(self.encoding),
            attachments=self.attachments(),
            explanation=explanation)
        self._base_version = new_time
        self._dirty = False
        return new_time

    def reload(self) -> None:
        """Drop unsaved edits and re-open the current version."""
        self.__init__(self.ham, self.node, self.encoding)
