"""The attribute browser: attribute/value pairs of a node or link.

§4.1 lists "attribute browsers" among Neptune's additional browsers.
Renders ``getNodeAttributes`` / ``getLinkAttributes`` at any time, which
also makes it the natural way to eyeball as-of attribute state.
"""

from __future__ import annotations

from repro.browsers.render import Pane, frame
from repro.core.ham import HAM
from repro.core.types import CURRENT, Time

__all__ = ["AttributeBrowser"]


class AttributeBrowser:
    """Lists the attributes of one node or one link."""

    def __init__(self, ham: HAM, node: int | None = None,
                 link: int | None = None):
        if (node is None) == (link is None):
            raise ValueError("give exactly one of node or link")
        self.ham = ham
        self.node = node
        self.link = link

    @property
    def target_label(self) -> str:
        """Human-readable name of the browsed entity."""
        if self.node is not None:
            return f"node {self.node}"
        return f"link {self.link}"

    def rows(self, time: Time = CURRENT) -> list[str]:
        """``name = value`` lines, sorted by attribute name."""
        if self.node is not None:
            entries = self.ham.get_node_attributes(self.node, time)
        else:
            entries = self.ham.get_link_attributes(self.link, time)
        return [f"{name} = {value}" for name, __, value in entries]

    def render(self, time: Time = CURRENT) -> str:
        """The full attribute browser."""
        when = "now" if time == CURRENT else f"t={time}"
        pane = Pane(
            title=f"attributes of {self.target_label} ({when})",
            lines=self.rows(time) or ["(none)"])
        return frame([pane], heading="Attribute Browser")
