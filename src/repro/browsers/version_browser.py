"""The version browser: a node's major and minor version history.

§4.1 lists "version browsers" among the additional browsers Neptune
provides; this one renders ``getNodeVersions`` — content versions
(major) starred, related updates (minor) dashed — oldest first.
"""

from __future__ import annotations

from repro.browsers.render import Pane, frame
from repro.core.ham import HAM
from repro.core.types import NodeIndex
from repro.versioning.history import node_history

__all__ = ["VersionBrowser"]


class VersionBrowser:
    """Lists every version of one node."""

    def __init__(self, ham: HAM, node: NodeIndex):
        self.ham = ham
        self.node = node

    def rows(self) -> list[str]:
        """One line per version event, oldest first."""
        history = node_history(self.ham, self.node)
        lines = []
        for version, is_major in history.entries:
            marker = "*" if is_major else "-"
            kind = "content" if is_major else "related"
            text = version.explanation or "(no explanation)"
            lines.append(f"{marker} t={version.time:<6} {kind:<8} {text}")
        return lines

    def render(self) -> str:
        """The full version browser."""
        pane = Pane(title=f"versions of node {self.node}",
                    lines=self.rows())
        legend = Pane(title="",
                      lines=["* major (content)   - minor (related)"])
        return frame([pane, legend], heading="Version Browser")
