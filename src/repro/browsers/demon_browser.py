"""The demon browser: active demons of the graph and its nodes.

§4.1 lists "demon browsers" among Neptune's additional browsers.  Shows
``getGraphDemons`` plus ``getNodeDemons`` for every node carrying one.
"""

from __future__ import annotations

from repro.browsers.render import Pane, frame
from repro.core.ham import HAM
from repro.core.types import CURRENT, Time

__all__ = ["DemonBrowser"]


class DemonBrowser:
    """Lists every active demon binding in the graph."""

    def __init__(self, ham: HAM):
        self.ham = ham

    def graph_rows(self, time: Time = CURRENT) -> list[str]:
        """``event -> demon`` lines for graph-level demons."""
        return [f"{event.value} -> {name}"
                for event, name in self.ham.get_graph_demons(time)]

    def node_rows(self, time: Time = CURRENT) -> list[str]:
        """``node N: event -> demon`` lines for node-level demons."""
        lines = []
        for node in sorted(self.ham.store.node_demons):
            for event, name in self.ham.get_node_demons(node, time):
                lines.append(f"node {node}: {event.value} -> {name}")
        return lines

    def render(self, time: Time = CURRENT) -> str:
        """The full demon browser."""
        graph_pane = Pane(title="graph demons",
                          lines=self.graph_rows(time) or ["(none)"])
        node_pane = Pane(title="node demons",
                         lines=self.node_rows(time) or ["(none)"])
        return frame([graph_pane, node_pane], heading="Demon Browser")
