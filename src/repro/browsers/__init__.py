"""The user-interface layer: every browser of §4.1, rendered as text.

The paper's UI is Smalltalk-80 windows; the figures are screenshots of
three browsers.  Here each browser renders its pane layout to a plain
string, which is what the figure-reproduction benchmarks and examples
print and compare:

- :mod:`repro.browsers.graph_browser` — Figure 1: pictorial sub-graph
  view with icon-named node boxes and four panes (graph, scroll area,
  node/link visibility predicate editors).
- :mod:`repro.browsers.document_browser` — Figure 2: five panes: four
  miller-column node lists plus an embedded node browser.
- :mod:`repro.browsers.node_browser` — Figure 3: node contents with link
  icons placed at their attachment offsets.
- :mod:`repro.browsers.version_browser` — a node's version history.
- :mod:`repro.browsers.attribute_browser` — attributes of a node/link.
- :mod:`repro.browsers.differences_browser` — two versions side-by-side
  with differences highlighted.
- :mod:`repro.browsers.demon_browser` — active demons.
"""

from repro.browsers.render import Pane, frame, columns
from repro.browsers.graph_browser import GraphBrowser
from repro.browsers.document_browser import DocumentBrowser
from repro.browsers.node_browser import NodeBrowser
from repro.browsers.version_browser import VersionBrowser
from repro.browsers.attribute_browser import AttributeBrowser
from repro.browsers.differences_browser import NodeDifferencesBrowser
from repro.browsers.demon_browser import DemonBrowser
from repro.browsers.shell import NeptuneShell
from repro.browsers.editor import NodeEditor

__all__ = [
    "NeptuneShell",
    "NodeEditor",
    "Pane",
    "frame",
    "columns",
    "GraphBrowser",
    "DocumentBrowser",
    "NodeBrowser",
    "VersionBrowser",
    "AttributeBrowser",
    "NodeDifferencesBrowser",
    "DemonBrowser",
]
