"""A command shell over the HAM and its browsers.

The paper's user-interface layer provides "a windowed interface for
browsing and editing hypertext data and for controlling application
layer programs" (§3).  This is the terminal rendition: one command per
line, browsers rendered as text, every command scriptable (each returns
its output as a string, so tests and demos drive it directly).

Commands::

    nodes                       list live nodes with their icons
    open NODE [TIME]            node browser (optionally as of TIME)
    graph [NODE-PRED [LINK-PRED]]   graph browser
    doc ROOT                    document browser rooted at ROOT
    append NODE TEXT...         append a line to a node (new version)
    annotate NODE POS TEXT...   the bundled annotate command
    link FROM POS TO [RELATION] create a link
    set NODE NAME VALUE         set a node attribute
    attrs NODE [TIME]           attribute browser
    versions NODE               version browser
    blame NODE [TIME]           per-line provenance
    diff NODE T1 T2             node differences browser
    query PREDICATE...          getGraphQuery node list
    explain PREDICATE...        show the query plan without running it
    linearize NODE [LINK-PRED...]   linearizeGraph node list
    demons                      demon browser
    trail start NODE | follow LINK | back | save NAME | list
    stats                       graph statistics
    cache                       block cache and blob catalog report
    repl                        replication status and counters
    verify                      run the integrity checker
    time                        current graph time
    help                        this text
"""

from __future__ import annotations

import shlex

from repro.apps.documents import DocumentApplication
from repro.apps.trails import TrailRecorder
from repro.browsers.attribute_browser import AttributeBrowser
from repro.browsers.demon_browser import DemonBrowser
from repro.browsers.differences_browser import NodeDifferencesBrowser
from repro.browsers.document_browser import DocumentBrowser
from repro.browsers.graph_browser import GraphBrowser
from repro.browsers.node_browser import NodeBrowser
from repro.browsers.version_browser import VersionBrowser
from repro.core.ham import HAM
from repro.core.types import CURRENT, LinkPt
from repro.errors import NeptuneError

__all__ = ["NeptuneShell"]


class NeptuneShell:
    """Executes shell commands against one opened HAM."""

    def __init__(self, ham: HAM):
        self.ham = ham
        self.app = DocumentApplication(ham)
        self.trail = TrailRecorder(ham)

    # ------------------------------------------------------------------
    # driving

    def execute(self, line: str) -> str:
        """Run one command line; returns its output (never raises for
        user errors — they come back as ``error: …`` text)."""
        words = shlex.split(line)
        if not words:
            return ""
        command, args = words[0], words[1:]
        handler = getattr(self, f"_cmd_{command}", None)
        if handler is None:
            return f"error: unknown command {command!r} (try 'help')"
        try:
            return handler(args)
        except NeptuneError as exc:
            return f"error: {exc}"
        except (ValueError, IndexError) as exc:
            return f"error: bad arguments for {command!r}: {exc}"

    def run(self, script: str) -> str:
        """Run a multi-line script; returns the concatenated outputs."""
        outputs = []
        for line in script.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            output = self.execute(line)
            if output:
                outputs.append(output)
        return "\n".join(outputs)

    # ------------------------------------------------------------------
    # commands

    def _cmd_help(self, args) -> str:
        return __doc__.split("Commands::", 1)[1].strip("\n")

    def _cmd_time(self, args) -> str:
        return f"t={self.ham.now}"

    def _cmd_nodes(self, args) -> str:
        icon = self.ham.get_attribute_index("icon")
        hits = self.ham.get_graph_query(node_attributes=[icon])
        lines = [f"{index:>5}  {values[0] or ''}"
                 for index, values in hits.nodes]
        return "\n".join(lines) if lines else "(no nodes)"

    def _cmd_open(self, args) -> str:
        node = int(args[0])
        time = int(args[1]) if len(args) > 1 else CURRENT
        return NodeBrowser(self.ham, node).render(time)

    def _cmd_graph(self, args) -> str:
        node_pred = args[0] if len(args) > 0 else None
        link_pred = args[1] if len(args) > 1 else None
        return GraphBrowser(self.ham, node_pred, link_pred).render()

    def _cmd_doc(self, args) -> str:
        browser = DocumentBrowser(self.ham)
        browser.select(0, int(args[0]))
        return browser.render()

    def _cmd_append(self, args) -> str:
        node = int(args[0])
        text = " ".join(args[1:])
        contents, __, ___, version = self.ham.open_node(node)
        new_time = self.ham.modify_node(
            node=node, expected_time=version,
            contents=contents + text.encode() + b"\n",
            explanation="appended via shell")
        return f"node {node} now at t={new_time}"

    def _cmd_annotate(self, args) -> str:
        node, position = int(args[0]), int(args[1])
        text = " ".join(args[2:])
        annotation, link = self.app.annotate(node, position, text)
        return f"annotation node {annotation} attached via link {link}"

    def _cmd_link(self, args) -> str:
        from_node, position, to_node = (int(args[0]), int(args[1]),
                                        int(args[2]))
        link, __ = self.ham.add_link(
            from_pt=LinkPt(from_node, position=position),
            to_pt=LinkPt(to_node))
        if len(args) > 3:
            relation = self.ham.get_attribute_index("relation")
            self.ham.set_link_attribute_value(
                link=link, attribute=relation, value=args[3])
        return f"link {link} created"

    def _cmd_set(self, args) -> str:
        node, name, value = int(args[0]), args[1], args[2]
        attr = self.ham.get_attribute_index(name)
        self.ham.set_node_attribute_value(node=node, attribute=attr,
                                          value=value)
        return f"node {node}: {name} = {value}"

    def _cmd_attrs(self, args) -> str:
        node = int(args[0])
        time = int(args[1]) if len(args) > 1 else CURRENT
        return AttributeBrowser(self.ham, node=node).render(time)

    def _cmd_versions(self, args) -> str:
        return VersionBrowser(self.ham, int(args[0])).render()

    def _cmd_blame(self, args) -> str:
        from repro.versioning.blame import render_blame
        node = int(args[0])
        time = int(args[1]) if len(args) > 1 else CURRENT
        return render_blame(self.ham, node, time)

    def _cmd_diff(self, args) -> str:
        node, time1, time2 = int(args[0]), int(args[1]), int(args[2])
        return NodeDifferencesBrowser(self.ham, node, time1,
                                      time2).render()

    def _cmd_query(self, args) -> str:
        predicate = " ".join(args)
        hits = self.ham.get_graph_query(node_predicate=predicate)
        return f"nodes: {hits.node_indexes}  links: {hits.link_indexes}"

    def _cmd_explain(self, args) -> str:
        predicate = " ".join(args)
        return self.ham.explain_query(node_predicate=predicate or None)

    def _cmd_linearize(self, args) -> str:
        node = int(args[0])
        link_pred = " ".join(args[1:]) or None
        result = self.ham.linearize_graph(node, link_predicate=link_pred)
        return f"nodes: {result.node_indexes}"

    def _cmd_demons(self, args) -> str:
        return DemonBrowser(self.ham).render()

    def _cmd_stats(self, args) -> str:
        from repro.tools.stats import graph_stats
        return graph_stats(self.ham).render()

    def _cmd_cache(self, args) -> str:
        from repro.tools.stats import render_cache
        return render_cache(self.ham)

    def _cmd_repl(self, args) -> str:
        from repro.tools.stats import render_replication
        status = self.ham.repl_status()
        counters = render_replication()
        return (f"{render_replication(status)}\n"
                f"-- process-wide counters --\n{counters}")

    def _cmd_verify(self, args) -> str:
        from repro.tools.verify import verify_graph
        violations = verify_graph(self.ham)
        if not violations:
            return "graph is healthy (0 violations)"
        return "\n".join(str(violation) for violation in violations)

    def _cmd_trail(self, args) -> str:
        action = args[0]
        if action == "start":
            contents = self.trail.start(int(args[1]))
            return (f"reading node {self.trail.current_node}: "
                    f"{contents.decode(errors='replace').splitlines()[0]!r}"
                    if contents else
                    f"reading node {self.trail.current_node}: (empty)")
        if action == "follow":
            contents = self.trail.follow(int(args[1]))
            first = contents.decode(errors="replace").splitlines()
            return (f"now at node {self.trail.current_node}: "
                    f"{first[0]!r}" if first else
                    f"now at node {self.trail.current_node}: (empty)")
        if action == "back":
            return f"back at node {self.trail.back()}"
        if action == "save":
            node = self.trail.save(args[1])
            return f"trail saved as node {node}"
        if action == "list":
            return f"saved trails: {self.trail.saved_trails()}"
        return f"error: unknown trail action {action!r}"


def main() -> None:  # pragma: no cover - interactive entry point
    """Interactive REPL over an ephemeral graph."""
    shell = NeptuneShell(HAM.ephemeral())
    print("Neptune shell over an ephemeral graph — 'help' for commands.")
    while True:
        try:
            line = input("neptune> ")
        except (EOFError, KeyboardInterrupt):
            print()
            break
        output = shell.execute(line)
        if output:
            print(output)


if __name__ == "__main__":  # pragma: no cover
    main()
