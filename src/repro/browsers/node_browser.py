"""The node browser (paper Figure 3): contents with inline link icons.

"The node browser allows the contents of an individual node to be edited
and supports both navigation via links and the creation of new links …
Within a node browser, a link appears as an icon composed using the value
of the node's *icon* attribute … if the attribute *icon* is attached to
the link its value will be used to compose the icon, otherwise a default
icon is used."

Rendering: the node's text with ``{icon}`` markers spliced in at each
out-link's attachment offset — the text analogue of the Smalltalk
paragraph editor's embedded link icons.
"""

from __future__ import annotations

from repro.browsers.render import Pane, frame
from repro.core.ham import HAM
from repro.core.types import CURRENT, LinkIndex, NodeIndex, Time

__all__ = ["NodeBrowser"]


class NodeBrowser:
    """Views one node with its link icons placed at their offsets."""

    def __init__(self, ham: HAM, node: NodeIndex):
        self.ham = ham
        self.node = node

    # ------------------------------------------------------------------
    # data

    def link_icon(self, link: LinkIndex, target: NodeIndex,
                  time: Time = CURRENT) -> str:
        """Icon text for a link: its own *icon*, the target node's, or a
        default."""
        icon = self.ham.get_attribute_index("icon")
        link_attrs = dict(
            (index, value) for __, index, value
            in self.ham.get_link_attributes(link, time))
        if icon in link_attrs:
            return link_attrs[icon]
        node_attrs = dict(
            (index, value) for __, index, value
            in self.ham.get_node_attributes(target, time))
        return node_attrs.get(icon, f"link{link}")

    def text_with_icons(self, time: Time = CURRENT) -> str:
        """Node contents with ``{icon}`` markers at out-link offsets."""
        contents, link_points, __, ___ = self.ham.open_node(
            self.node, time)
        text = contents.decode("utf-8", errors="replace")
        markers: list[tuple[int, str]] = []
        for link_index, end, pt in link_points:
            if end != "from":
                continue
            target, __ = self.ham.get_to_node(link_index, time)
            markers.append(
                (pt.position, "{" + self.link_icon(link_index, target,
                                                   time) + "}"))
        # Splice right-to-left so earlier offsets stay valid.
        for position, marker in sorted(markers, reverse=True):
            position = min(position, len(text))
            text = text[:position] + marker + text[position:]
        return text

    def title(self, time: Time = CURRENT) -> str:
        """The node's own icon name plus its index."""
        icon = self.ham.get_attribute_index("icon")
        attrs = dict(
            (index, value) for __, index, value
            in self.ham.get_node_attributes(self.node, time))
        name = attrs.get(icon, f"node{self.node}")
        return f"{name} (node {self.node})"

    # ------------------------------------------------------------------
    # rendering

    def content_pane(self, time: Time = CURRENT) -> Pane:
        """The editable-text pane with inline icons."""
        return Pane(title=self.title(time),
                    lines=self.text_with_icons(time).splitlines())

    def render(self, time: Time = CURRENT) -> str:
        """The full node browser (Figure 3)."""
        commands = Pane(
            title="commands",
            lines=["follow link | annotate | new link | versions"])
        return frame([self.content_pane(time), commands],
                     heading="Node Browser")
