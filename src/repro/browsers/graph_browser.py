"""The graph browser (paper Figure 1): a pictorial hyperdocument view.

"The graph browser shows a pictorial view of a hyperdocument or a portion
of a hyperdocument … Each node is represented by an icon that consists of
a name enclosed in a rectangle.  The user specifies the name associated
with a node by attaching the attribute *icon* to the node … The graph
browser itself has four panes: the upper pane contains the view of the
graph, the lower left pane is a scroll area for zoom and pan operations,
the two panes on the lower right contain text editors used to define the
visibility predicates on nodes and links."

The pictorial view uses a layered layout: nodes are placed on rows by
their depth from the sub-graph roots, boxed with their icon names, and
edges are listed as ``from --> to`` connector lines (an honest text
stand-in for Smalltalk line drawing).
"""

from __future__ import annotations

from collections import deque

from repro.browsers.render import Pane, columns, frame
from repro.core.ham import HAM
from repro.core.types import CURRENT, NodeIndex, Time

__all__ = ["GraphBrowser"]


class _Canvas:
    """A sparse 2D character grid for line drawing."""

    def __init__(self) -> None:
        self._cells: dict[tuple[int, int], str] = {}

    def write(self, row: int, column: int, text: str) -> None:
        """Place ``text`` starting at (row, column), overwriting."""
        for offset, char in enumerate(text):
            self._cells[(row, column + offset)] = char

    def line_char(self, row: int, column: int, char: str) -> None:
        """Place a line character; crossings become ``+``."""
        existing = self._cells.get((row, column))
        if existing in ("|", "-", "+") and existing != char:
            char = "+"
        self._cells[(row, column)] = char

    def lines(self) -> list[str]:
        """Render the grid to left-aligned text lines."""
        if not self._cells:
            return []
        max_row = max(row for row, __ in self._cells)
        rendered = []
        for row in range(max_row + 1):
            columns = [column for (r, column) in self._cells if r == row]
            if not columns:
                rendered.append("")
                continue
            width = max(columns) + 1
            line = [" "] * width
            for column in range(width):
                char = self._cells.get((row, column))
                if char is not None:
                    line[column] = char
            rendered.append("".join(line).rstrip())
        return rendered


class GraphBrowser:
    """Renders the predicate-filtered sub-graph around a hyperdocument."""

    def __init__(self, ham: HAM,
                 node_predicate: str | None = None,
                 link_predicate: str | None = None):
        self.ham = ham
        self.node_predicate = node_predicate
        self.link_predicate = link_predicate

    # ------------------------------------------------------------------
    # data

    def visible_subgraph(self, time: Time = CURRENT,
                         focus: NodeIndex | None = None,
                         radius: int = 2,
                         ) -> tuple[list[NodeIndex],
                                    list[tuple[NodeIndex, NodeIndex]]]:
        """(nodes, edges) admitted by the visibility predicates.

        ``focus`` zooms the view to the BFS ball of ``radius`` hops
        around one node (both link directions) — the zoom/pan the
        figure's scroll pane provides, for graphs too big to draw whole.
        """
        icon = self.ham.get_attribute_index("icon")
        result = self.ham.get_graph_query(
            time, self.node_predicate, self.link_predicate,
            node_attributes=[icon])
        nodes = result.node_indexes
        edges = []
        for link_index, __ in result.links:
            from_node, ___ = self.ham.get_from_node(link_index, time)
            to_node, ___ = self.ham.get_to_node(link_index, time)
            edges.append((from_node, to_node))
        if focus is not None:
            neighbours: dict[NodeIndex, set[NodeIndex]] = {}
            for from_node, to_node in edges:
                neighbours.setdefault(from_node, set()).add(to_node)
                neighbours.setdefault(to_node, set()).add(from_node)
            ball = {focus}
            frontier = {focus}
            for __ in range(radius):
                frontier = {
                    nearby
                    for node in frontier
                    for nearby in neighbours.get(node, ())
                } - ball
                ball |= frontier
            nodes = [node for node in nodes if node in ball]
            edges = [(a, b) for a, b in edges if a in ball and b in ball]
        return nodes, edges

    def icon_of(self, node: NodeIndex, time: Time = CURRENT) -> str:
        """The node's *icon* attribute, or a default name."""
        icon = self.ham.get_attribute_index("icon")
        attrs = dict(
            (index, value) for __, index, value
            in self.ham.get_node_attributes(node, time))
        return attrs.get(icon) or f"node{node}"

    def _layers(self, nodes: list[NodeIndex],
                edges: list[tuple[NodeIndex, NodeIndex]],
                ) -> list[list[NodeIndex]]:
        """Assign nodes to rows by BFS depth from the sub-graph roots."""
        targets = {to_node for __, to_node in edges}
        roots = [node for node in nodes if node not in targets] or nodes[:1]
        children: dict[NodeIndex, list[NodeIndex]] = {}
        for from_node, to_node in edges:
            children.setdefault(from_node, []).append(to_node)
        depth: dict[NodeIndex, int] = {}
        queue = deque((root, 0) for root in roots)
        while queue:
            node, level = queue.popleft()
            if node in depth:
                continue
            depth[node] = level
            for child in children.get(node, []):
                queue.append((child, level + 1))
        for node in nodes:  # disconnected leftovers go to the bottom row
            depth.setdefault(node, (max(depth.values()) + 1) if depth else 0)
        layers: list[list[NodeIndex]] = []
        for node in nodes:
            level = depth[node]
            while len(layers) <= level:
                layers.append([])
            layers[level].append(node)
        return layers

    # ------------------------------------------------------------------
    # rendering

    def graph_pane(self, time: Time = CURRENT,
                   focus: NodeIndex | None = None,
                   radius: int = 2) -> Pane:
        """The upper pane: boxed icons with drawn edge connectors.

        Edges to the next-lower layer are drawn as ``|``/``-`` poly-lines
        with a ``v`` arrowhead (the text rendition of the figure's line
        drawing); edges the layout cannot draw (upward, layer-skipping)
        are listed underneath so no link goes unshown.
        """
        nodes, edges = self.visible_subgraph(time, focus, radius)
        layers = self._layers(nodes, edges)
        canvas = _Canvas()
        # Place boxes: each layer a band of 3 rows + 2 connector rows.
        centers: dict[NodeIndex, tuple[int, int]] = {}
        layer_of: dict[NodeIndex, int] = {}
        for layer_index, layer in enumerate(layers):
            top = layer_index * 6
            cursor = 0
            for node in layer:
                name = self.icon_of(node, time)
                width = len(name) + 4
                canvas.write(top, cursor, "+" + "-" * (width - 2) + "+")
                canvas.write(top + 1, cursor, f"| {name} |")
                canvas.write(top + 2, cursor, "+" + "-" * (width - 2) + "+")
                centers[node] = (top, cursor + width // 2)
                layer_of[node] = layer_index
                cursor += width + 2
        undrawn: list[tuple[NodeIndex, NodeIndex]] = []
        for from_node, to_node in edges:
            drawable = (
                from_node in layer_of and to_node in layer_of
                and layer_of[to_node] == layer_of[from_node] + 1)
            if not drawable:
                undrawn.append((from_node, to_node))
                continue
            from_top, from_x = centers[from_node]
            to_top, to_x = centers[to_node]
            jog_row = from_top + 3          # below the source box
            canvas.line_char(jog_row, from_x, "|")
            for x in range(min(from_x, to_x), max(from_x, to_x) + 1):
                canvas.line_char(jog_row + 1, x, "-")
            canvas.line_char(jog_row + 1, from_x, "+")
            canvas.line_char(jog_row + 1, to_x, "+")
            canvas.write(jog_row + 2, to_x, "v")
        lines = canvas.lines()
        if undrawn:
            lines.append("")
            lines.append("other links:")
            for from_node, to_node in undrawn:
                lines.append(
                    f"  [{self.icon_of(from_node, time)}] --> "
                    f"[{self.icon_of(to_node, time)}]")
        return Pane(title="", lines=lines)

    def render(self, time: Time = CURRENT,
               focus: NodeIndex | None = None, radius: int = 2) -> str:
        """The full four-pane browser (Figure 1).

        ``focus``/``radius`` zoom the pictorial pane to a neighbourhood.
        """
        graph = self.graph_pane(time, focus, radius)
        zoom_state = (f"zoom: node {focus} r={radius}"
                      if focus is not None else "<zoom>")
        scroll = Pane(title="scroll",
                      lines=[zoom_state, "<pan >"], min_width=8)
        node_pred = Pane(
            title="node visibility",
            lines=[self.node_predicate or "true"], min_width=20)
        link_pred = Pane(
            title="link visibility",
            lines=[self.link_predicate or "true"], min_width=20)
        bottom = columns([scroll, node_pred, link_pred], height=2)
        return frame([graph, bottom], heading="Graph Browser")
