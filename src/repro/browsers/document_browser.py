"""The document browser (paper Figure 2): five-pane hierarchy viewer.

"It consists of five panes: the four upper panes contain lists of names
of nodes, the lower pane is a node browser … The node-list in the
upper-left pane is formed by executing a getGraphQuery HAM operation …
The node-list in each pane to the right is formed by accessing the
immediate descendents of the selected node in the left adjacent pane via
the linearizeGraph HAM operation.  Commands are available to shift the
panes in order to view deeply nested hierarchies."

This is the miller-column pattern: pane 1 = query results, panes 2-4 =
children of the selection to their left; the bottom pane shows the final
selection's contents through a :class:`NodeBrowser`.
"""

from __future__ import annotations

from repro.browsers.node_browser import NodeBrowser
from repro.browsers.render import Pane, columns, frame
from repro.core.ham import HAM
from repro.core.types import CURRENT, NodeIndex, Time

__all__ = ["DocumentBrowser"]

#: Number of node-list panes across the top (per Figure 2).
PANE_COUNT = 4


class DocumentBrowser:
    """Navigates hierarchical hyperdocuments via queries and traversal."""

    def __init__(self, ham: HAM, query_predicate: str | None = None,
                 structure_predicate: str = "relation = isPartOf"):
        self.ham = ham
        #: Predicate building the upper-left pane (a getGraphQuery).
        self.query_predicate = query_predicate
        #: Link predicate defining the hierarchy (isPartOf by default).
        self.structure_predicate = structure_predicate
        #: Selected node per pane (None = nothing selected yet).
        self.selection: list[NodeIndex | None] = [None] * PANE_COUNT
        #: How many levels the panes have been shifted right.
        self.shift = 0

    # ------------------------------------------------------------------
    # data

    def icon_of(self, node: NodeIndex, time: Time = CURRENT) -> str:
        """The node's *icon* attribute, or a default name."""
        icon = self.ham.get_attribute_index("icon")
        attrs = dict(
            (index, value) for __, index, value
            in self.ham.get_node_attributes(node, time))
        return attrs.get(icon) or f"node{node}"

    def roots(self, time: Time = CURRENT) -> list[NodeIndex]:
        """Upper-left pane contents: the getGraphQuery node list."""
        return self.ham.get_graph_query(
            time, node_predicate=self.query_predicate).node_indexes

    def children_of(self, node: NodeIndex,
                    time: Time = CURRENT) -> list[NodeIndex]:
        """Immediate structural descendants via ``linearizeGraph``.

        The full traversal is depth-first; the browser pane wants only
        depth-1 nodes, so results are filtered to direct children.
        """
        result = self.ham.linearize_graph(
            node, time, link_predicate=self.structure_predicate)
        direct: list[NodeIndex] = []
        for link_index in result.link_indexes:
            from_node, __ = self.ham.get_from_node(link_index, time)
            to_node, __ = self.ham.get_to_node(link_index, time)
            if from_node == node:
                direct.append(to_node)
        return direct

    # ------------------------------------------------------------------
    # interaction

    def select(self, pane: int, node: NodeIndex) -> None:
        """Select a node in ``pane`` (0-based); clears panes to the right."""
        if not 0 <= pane < PANE_COUNT:
            raise ValueError(f"pane must be 0..{PANE_COUNT - 1}")
        self.selection[pane] = node
        for position in range(pane + 1, PANE_COUNT):
            self.selection[position] = None

    def shift_right(self) -> None:
        """View one level deeper ("commands are available to shift")."""
        self.shift += 1

    def shift_left(self) -> None:
        """Back up one level."""
        if self.shift > 0:
            self.shift -= 1

    def pane_contents(self, time: Time = CURRENT) -> list[list[NodeIndex]]:
        """Node lists for the four upper panes, honouring selections."""
        panes: list[list[NodeIndex]] = []
        base = self.roots(time)
        for __ in range(self.shift):
            # Shifting re-roots the columns at the first selection chain.
            if base and self.selection[0] is not None:
                base = self.children_of(self.selection[0], time)
        panes.append(base)
        for position in range(1, PANE_COUNT):
            selected = self.selection[position - 1]
            if selected is None:
                panes.append([])
            else:
                panes.append(self.children_of(selected, time))
        return panes

    # ------------------------------------------------------------------
    # rendering

    def render(self, time: Time = CURRENT) -> str:
        """The full five-pane browser (Figure 2)."""
        pane_lists = self.pane_contents(time)
        top_panes = []
        for position, nodes in enumerate(pane_lists):
            lines = []
            for node in nodes:
                marker = ">" if self.selection[position] == node else " "
                lines.append(f"{marker}{self.icon_of(node, time)}")
            top_panes.append(Pane(title=f"pane {position + 1}",
                                  lines=lines, min_width=14))
        top = columns(top_panes)
        viewed = next(
            (node for node in reversed(self.selection) if node is not None),
            None)
        if viewed is not None:
            bottom = NodeBrowser(self.ham, viewed).content_pane(time)
        else:
            bottom = Pane(title="node browser",
                          lines=["(select a node above)"])
        return frame([top, bottom], heading="Document Browser")
