"""The node differences browser: two versions side by side.

§4.1: "A special browser called a *node differences browser* places two
node browsers side-by-side, each viewing a specific version of a node
with highlighting used to show differences between the two versions."

Text highlighting: changed lines are prefixed ``<`` (only in the old
version), ``>`` (only in the new), and common lines with two spaces.
"""

from __future__ import annotations

from repro.browsers.render import Pane, columns, frame
from repro.core.ham import HAM
from repro.core.types import NodeIndex, Time
from repro.storage.diff import diff_lines

__all__ = ["NodeDifferencesBrowser"]


class NodeDifferencesBrowser:
    """Compares two versions of one node."""

    def __init__(self, ham: HAM, node: NodeIndex, time1: Time, time2: Time):
        self.ham = ham
        self.node = node
        self.time1 = time1
        self.time2 = time2

    def _sides(self) -> tuple[list[str], list[str]]:
        old = self.ham.open_node(self.node, self.time1)[0]
        new = self.ham.open_node(self.node, self.time2)[0]
        script = diff_lines(old, new)
        old_lines = [line.decode("utf-8", errors="replace").rstrip("\n")
                     for line in old.splitlines(keepends=True)]
        new_lines = [line.decode("utf-8", errors="replace").rstrip("\n")
                     for line in new.splitlines(keepends=True)]
        left = [f"  {line}" for line in old_lines]
        right = [f"  {line}" for line in new_lines]
        # Mark edited lines on each side.
        new_cursor_shift = 0
        for diff in script:
            for offset in range(diff.old_length):
                position = diff.position + offset
                if 0 <= position < len(left):
                    left[position] = "<" + left[position][1:]
            new_position = diff.position + new_cursor_shift
            for offset in range(diff.new_length):
                position = new_position + offset
                if 0 <= position < len(right):
                    right[position] = ">" + right[position][1:]
            new_cursor_shift += diff.new_length - diff.old_length
        return left, right

    def render(self) -> str:
        """The side-by-side differences browser."""
        left, right = self._sides()
        side1 = Pane(title=f"node {self.node} @ t={self.time1}",
                     lines=left, min_width=20)
        side2 = Pane(title=f"node {self.node} @ t={self.time2}",
                     lines=right, min_width=20)
        body = columns([side1, side2])
        legend = Pane(title="", lines=["< removed   > added"])
        return frame([body, legend], heading="Node Differences Browser")
