"""Push-based change feeds: commit-ordered subscriptions over demons.

The paper's demons (§3, §5) invoke code "when a specific HAM event
occurs" — but only in-process.  This module lifts them into
*subscriptions*: a watcher registers an event-kind set and an optional
predicate, and receives every matching change event **after the commit
that produced it is durable and published**, stamped with the commit
LSN.  The server (protocol v7) forwards these as unsolicited push
frames; :meth:`repro.core.ham.HAM.watch` consumes them in-process.

Guarantees (see HAM_SPEC "Subscriptions and change feeds"):

- **Durability.** An event is emitted only after its commit's WAL blob
  is durable and its write-set has published — never for aborted,
  crashed, or unacknowledged work.  Crash recovery can therefore never
  discard a commit a subscriber was told about (no phantom
  notifications).
- **Order.** Each subscription's stream is non-decreasing in commit
  LSN, and events inside one commit arrive in firing order.  Commit
  *publication* is not LSN-ordered (two committers may publish either
  way around), so the hub re-serializes: committers stage their LSN
  while still holding the log-append bracket (stage order = LSN order)
  and seal it with the fired events after publication; the hub emits
  strictly from the head of the staging queue.
- **Gap-freedom.** Every frame carries a per-subscription sequence
  number incremented only when that subscription is actually sent a
  frame, so a consumer detects a lost frame even though predicate
  filtering legitimately skips commits.
- **Non-blocking.** Delivery must never stall a commit.  A subscriber
  that cannot keep up loses its *whole feed* with a typed
  :class:`~repro.errors.SubscriptionOverflowError` cancel — never a
  silent gap — and may resubscribe from its last-seen LSN; a bounded
  replay ring answers the catch-up when the gap is short enough.
"""

from __future__ import annotations

import itertools
import queue
import threading
from collections import OrderedDict, deque

from repro.core.demons import MUTATION_EVENTS, DemonEvent, EventKind
from repro.errors import (
    NodeNotFoundError,
    SubscriptionError,
    SubscriptionOverflowError,
)
from repro.testing import faults
from repro.tools.metrics import SUBSCRIPTIONS

__all__ = ["SubscriptionHub", "Subscription", "LocalWatch", "wire_event",
           "CANCEL_OVERFLOW", "CANCEL_ERROR", "CANCEL_CLOSED"]

#: Reasons a feed-cancel notification can carry.
CANCEL_OVERFLOW = "overflow"
CANCEL_ERROR = "error"
CANCEL_CLOSED = "closed"

#: Staging-queue sentinels: a staged LSN whose commit has not decided
#: yet, and one whose commit failed after staging (poisoned manager).
_PENDING = object()
_DISCARDED = object()


def _unresolved(tree) -> bool:
    """Does a compiled predicate tree reference an un-interned name?"""
    op = tree[0]
    if op in ("cmp", "exists"):
        return tree[1] is None
    if op in ("and", "or"):
        return any(_unresolved(child) for child in tree[1])
    if op == "not":
        return _unresolved(tree[1])
    return False


def wire_event(event: DemonEvent) -> dict:
    """Encode one fired event as its wire/document form."""
    return {
        "kind": event.kind.value,
        "time": event.time,
        "node": event.node,
        "link": event.link,
        "transaction": event.transaction,
        "detail": dict(event.detail) if event.detail else {},
    }


class Subscription:
    """One attached watcher: filter + delivery callbacks + sequence.

    ``deliver(sub, lsn, seq, events)`` receives this subscription and
    wire-form event dicts; it must be non-blocking and may raise
    :class:`SubscriptionOverflowError` to signal that the consumer's
    bounded queue is full — the hub then cancels the feed.  ``fail``
    (best-effort, never raises into the hub) is invoked exactly once
    with ``(sub, reason, dropped, lsn, message)`` when the feed dies.
    """

    __slots__ = ("sub_id", "kinds", "predicate", "predicate_stale",
                 "deliver", "fail",
                 "seq", "last_lsn", "delivered", "dropped", "cancelled")

    def __init__(self, sub_id, kinds, predicate, deliver, fail):
        self.sub_id = sub_id
        self.kinds = kinds          # frozenset[EventKind] | None (= all)
        #: True while the compiled predicate references an attribute
        #: name nobody has interned yet — a long-lived subscription may
        #: legitimately predate its attribute's first use, so the hub
        #: re-resolves against the live registry until every name binds.
        self.predicate_stale = (predicate is not None
                                and _unresolved(predicate.tree))
        self.predicate = predicate  # CompiledPredicate | None
        self.deliver = deliver
        self.fail = fail
        self.seq = 0
        self.last_lsn = 0
        self.delivered = 0
        self.dropped = 0
        self.cancelled = False


class SubscriptionHub:
    """Per-graph fan-out point between committers and subscribers.

    The transaction manager drives the staging protocol
    (:meth:`stage` under :attr:`append_lock` → :meth:`seal` /
    :meth:`discard`); :meth:`subscribe` / :meth:`unsubscribe` attach
    and detach watchers.  Emission happens on whichever committer
    thread seals the oldest staged LSN, under the hub lock, so every
    subscriber observes one globally serialized, LSN-ordered stream.
    """

    def __init__(self, store, replay_limit: int = 512):
        #: The shared (post-publish) store predicates evaluate against.
        self._store = store
        #: Held by committers around ``log.append_many`` + :meth:`stage`
        #: so staging order equals LSN order.
        self.append_lock = threading.Lock()
        self._lock = threading.Lock()
        self._pending: OrderedDict = OrderedDict()
        self._subs: dict[int, Subscription] = {}
        self._ids = itertools.count(1)
        #: Stage tickets key :attr:`_pending` instead of the LSN itself
        #: because ephemeral graphs log to a null WAL where every
        #: commit reports LSN 0 — duplicate keys would drop events.
        self._tickets = itertools.count(1)
        #: Bounded replay history: (lsn, tuple[DemonEvent]) of emitted
        #: commits, answering resubscribe-with-``from_lsn`` catch-up.
        self._replay: deque = deque(maxlen=replay_limit)
        #: Highest LSN ever evicted from the replay ring: a ``from_lsn``
        #: below this cannot be caught up and forces a resync.
        self._evicted_lsn = 0
        self._last_emitted_lsn = 0

    # ------------------------------------------------------------------
    # committer side (driven by TransactionManager.finish_commit)

    def stage(self, lsn: int) -> int:
        """Reserve ``lsn``'s emission slot (call under append_lock).

        Returns a ticket to pass to :meth:`seal` or :meth:`discard`.
        Ticket order equals staging order equals LSN order.
        """
        with self._lock:
            ticket = next(self._tickets)
            self._pending[ticket] = (lsn, _PENDING)
            return ticket

    def seal(self, ticket: int, events) -> None:
        """The ticket's commit is durable and published: emit in order."""
        with self._lock:
            entry = self._pending.get(ticket)
            if entry is not None:
                self._pending[ticket] = (entry[0], tuple(events))
            self._drain_locked()

    def discard(self, ticket: int) -> None:
        """The ticket's commit failed after staging: unblock the queue."""
        with self._lock:
            entry = self._pending.get(ticket)
            if entry is not None and entry[1] is _PENDING:
                self._pending[ticket] = (entry[0], _DISCARDED)
            self._drain_locked()

    def _drain_locked(self) -> None:
        while self._pending:
            ticket, (lsn, outcome) = next(iter(self._pending.items()))
            if outcome is _PENDING:
                return  # an older commit is still deciding
            del self._pending[ticket]
            if outcome is _DISCARDED or not outcome:
                continue
            self._emit_locked(lsn, outcome)

    def _emit_locked(self, lsn: int, events) -> None:
        if len(self._replay) == self._replay.maxlen:
            self._evicted_lsn = self._replay[0][0]
        self._replay.append((lsn, events))
        self._last_emitted_lsn = lsn
        for sub in list(self._subs.values()):
            self._offer_locked(sub, lsn, events)

    def _offer_locked(self, sub: Subscription, lsn: int, events) -> None:
        if sub.cancelled:
            return
        matched = [event for event in events if self._matches(sub, event)]
        if not matched:
            return
        SUBSCRIPTIONS.increment("fired", len(matched))
        try:
            if faults.INJECTOR is not None:
                faults.fire("sub.deliver")
            sub.seq += 1
            sub.deliver(sub, lsn, sub.seq,
                        [wire_event(event) for event in matched])
        except SubscriptionOverflowError as exc:
            SUBSCRIPTIONS.increment("overflows")
            self._cancel_locked(sub, CANCEL_OVERFLOW, len(matched), lsn,
                                str(exc))
            return
        except Exception as exc:
            # A commit must never fail because one watcher's delivery
            # did (an injected sub.deliver fault, a torn socket): the
            # feed dies, the commit proceeds.  SimulatedCrash is a
            # BaseException and still propagates — a crash is a crash.
            self._cancel_locked(sub, CANCEL_ERROR, len(matched), lsn,
                                f"{type(exc).__name__}: {exc}")
            return
        sub.last_lsn = lsn
        sub.delivered += len(matched)
        SUBSCRIPTIONS.increment("delivered", len(matched))

    def _cancel_locked(self, sub: Subscription, reason: str, count: int,
                       lsn: int, message: str) -> None:
        sub.cancelled = True
        self._subs.pop(sub.sub_id, None)
        SUBSCRIPTIONS.record("active", len(self._subs))
        sub.dropped += count
        SUBSCRIPTIONS.increment("dropped", count)
        try:
            sub.fail(sub, reason, count, lsn, message)
        except Exception:
            pass  # best-effort: the consumer may already be gone

    def _matches(self, sub: Subscription, event: DemonEvent) -> bool:
        if sub.kinds is not None and event.kind not in sub.kinds:
            return False
        if sub.predicate is None:
            return True
        if sub.predicate_stale:
            # The predicate names an attribute that had never been
            # interned when the subscription compiled it; re-resolve
            # against the live registry until every name binds.
            from repro.query.planner import compile_predicate
            recompiled = compile_predicate(sub.predicate.predicate,
                                           self._store.registry)
            sub.predicate = recompiled
            sub.predicate_stale = _unresolved(recompiled.tree)
        if event.node is None:
            return False  # a node predicate cannot match a node-less event
        try:
            record = self._store.node(event.node)
        except NodeNotFoundError:
            return False
        return sub.predicate.matches_record(record.attributes, event.time)

    # ------------------------------------------------------------------
    # subscriber side

    def subscribe(self, deliver, fail, events=None, predicate=None,
                  from_lsn: int | None = None) -> tuple[int, bool]:
        """Attach a watcher; returns ``(sub_id, resync_required)``.

        ``events`` is an iterable of :class:`EventKind` (None = every
        mutation kind); ``predicate`` a compiled predicate or None.
        With ``from_lsn``, retained commits above it replay through the
        filter *before* the subscription attaches — atomically under
        the hub lock, so no live emission can interleave with (or be
        missed after) the catch-up.  ``resync_required`` is True when
        the ring no longer reaches back to ``from_lsn``: the stream is
        gap-free only from now on, and the consumer must re-read state.
        """
        kinds = None
        if events is not None:
            kinds = frozenset(EventKind(event) for event in events)
            for kind in kinds:
                if kind not in MUTATION_EVENTS:
                    raise SubscriptionError(
                        f"cannot subscribe to non-mutation event "
                        f"{kind.value!r}")
        with self._lock:
            sub = Subscription(next(self._ids), kinds, predicate,
                               deliver, fail)
            resync = False
            if from_lsn is not None:
                resync = from_lsn < self._evicted_lsn
                for lsn, events_ in self._replay:
                    if lsn <= from_lsn:
                        continue
                    self._offer_locked(sub, lsn, events_)
                    if sub.cancelled:
                        break
            if not sub.cancelled:
                # A replay overflow already cancelled the feed (and told
                # the consumer); the id is still reported so the caller
                # can correlate the cancel frame.
                self._subs[sub.sub_id] = sub
            SUBSCRIPTIONS.record("active", len(self._subs))
            return sub.sub_id, resync

    def unsubscribe(self, sub_id: int) -> bool:
        """Detach ``sub_id``; True when it was attached."""
        with self._lock:
            existed = self._subs.pop(sub_id, None) is not None
            SUBSCRIPTIONS.record("active", len(self._subs))
            return existed

    def subscription(self, sub_id: int) -> Subscription | None:
        with self._lock:
            return self._subs.get(sub_id)

    def status(self) -> dict:
        """Observability snapshot (one plain dict)."""
        with self._lock:
            return {
                "active": len(self._subs),
                "staged": len(self._pending),
                "last_emitted_lsn": self._last_emitted_lsn,
                "replay_depth": len(self._replay),
                "replay_floor": self._evicted_lsn,
            }


class LocalWatch:
    """In-process change feed over a :class:`SubscriptionHub`.

    Events queue up to ``max_events`` frames; a slower consumer loses
    the feed with :class:`SubscriptionOverflowError` on the next read,
    exactly like a remote subscriber.  Iterate it, or :meth:`poll`
    with a timeout; each item is one wire-form event dict augmented
    with ``lsn`` and ``seq``.
    """

    def __init__(self, hub: SubscriptionHub, events=None, predicate=None,
                 max_events: int = 1024):
        self._hub = hub
        self._queue: queue.Queue = queue.Queue(maxsize=max_events)
        self._cancel: tuple | None = None
        self._buffer: deque = deque()
        self.closed = False
        self.sub_id, self.resync = hub.subscribe(
            self._deliver, self._fail, events=events, predicate=predicate)

    # hub-side callbacks (committing threads) --------------------------

    def _deliver(self, sub, lsn, seq, events) -> None:
        try:
            self._queue.put_nowait(("events", lsn, seq, events))
        except queue.Full:
            raise SubscriptionOverflowError(
                f"local watch queue full ({self._queue.maxsize} frames)"
            ) from None

    def _fail(self, sub, reason, dropped, lsn, message) -> None:
        try:
            self._queue.put_nowait(("cancel", reason, dropped, message))
        except queue.Full:
            self._cancel = ("cancel", reason, dropped, message)

    # consumer side ----------------------------------------------------

    def poll(self, timeout: float | None = 0.0) -> dict | None:
        """Next event (or None when none arrives within ``timeout``)."""
        if self._buffer:
            return self._buffer.popleft()
        while True:
            if self._queue.empty():
                if self._cancel is not None:
                    self._raise_cancel()
                if self.closed:
                    return None
            try:
                item = self._queue.get(
                    timeout=timeout if timeout is not None else None,
                    block=timeout != 0.0)
            except queue.Empty:
                if self._cancel is not None and self._queue.empty():
                    self._raise_cancel()
                return None
            if item[0] == "stop":
                self.closed = True
                return None
            if item[0] == "cancel":
                self._cancel = item
                self.closed = True
                self._raise_cancel()
            _, lsn, seq, events = item
            for event in events:
                entry = dict(event)
                entry["lsn"] = lsn
                entry["seq"] = seq
                self._buffer.append(entry)
            if self._buffer:
                return self._buffer.popleft()

    def _raise_cancel(self):
        if self._cancel is None:
            return
        _, reason, dropped, message = self._cancel
        self._cancel = None
        if reason == CANCEL_OVERFLOW:
            raise SubscriptionOverflowError(
                f"feed cancelled after dropping {dropped} event(s): "
                f"{message}")
        raise SubscriptionError(
            f"feed cancelled ({reason}) after dropping {dropped} "
            f"event(s): {message}")

    def __iter__(self):
        while True:
            event = self.poll(timeout=None)
            if event is None:
                return
            yield event

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._hub.unsubscribe(self.sub_id)
            try:
                # Wake a reader blocked in poll(timeout=None).
                self._queue.put_nowait(("stop",))
            except queue.Full:
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
