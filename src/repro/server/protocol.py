"""Wire protocol: length-prefixed, checksummed, self-describing values.

Each message is one value from :mod:`repro.storage.serializer` framed by
:func:`repro.storage.serializer.pack_record` with a 4-byte big-endian
total-length prefix.  Requests are dicts ``{"id", "method", "params"}``;
responses are ``{"id", "ok", "result"}`` or ``{"id", "ok": False,
"error": {"type", "message"}}``.

The serializer already rejects unknown types, so nothing
pickle-executable ever crosses the wire.
"""

from __future__ import annotations

import socket
import struct

from repro.core.operations import PROTOCOL_VERSION
from repro.errors import ProtocolError
from repro.storage.serializer import (
    decode_value,
    encode_value,
    pack_record,
    unpack_record,
)

__all__ = ["read_message", "write_message", "MAX_MESSAGE_BYTES",
           "PROTOCOL_VERSION"]

#: Upper bound on one message; prevents a bad length prefix from
#: allocating unbounded memory.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def write_message(sock: socket.socket, message: object) -> None:
    """Encode, frame, and send one message."""
    framed = pack_record(encode_value(message))
    sock.sendall(_LENGTH.pack(len(framed)) + framed)


def _read_exact(sock: socket.socket, length: int) -> bytes:
    chunks = []
    remaining = length
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("peer closed the connection")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_message(sock: socket.socket) -> object:
    """Receive and decode one message (blocking)."""
    (length,) = _LENGTH.unpack(_read_exact(sock, _LENGTH.size))
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {length} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit")
    framed = _read_exact(sock, length)
    payload, __ = unpack_record(framed)
    return decode_value(payload)
