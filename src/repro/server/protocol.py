"""Wire protocol: length-prefixed, checksummed, self-describing values.

Each message is one value from :mod:`repro.storage.serializer` framed by
:func:`repro.storage.serializer.pack_record` with a 4-byte big-endian
total-length prefix.  Requests are dicts ``{"id", "method", "params"}``;
responses are ``{"id", "ok", "result"}`` or ``{"id", "ok": False,
"error": {"type", "message"}}``.

The serializer already rejects unknown types, so nothing
pickle-executable ever crosses the wire.
"""

from __future__ import annotations

import socket
import struct

from repro.core.operations import PROTOCOL_VERSION
from repro.errors import ProtocolError
from repro.storage.serializer import (
    decode_value,
    encode_value,
    pack_record,
    unpack_record,
)

__all__ = ["FrameDecoder", "encode_message", "read_message",
           "write_message", "MAX_MESSAGE_BYTES", "PROTOCOL_VERSION"]

#: Upper bound on one message; prevents a bad length prefix from
#: allocating unbounded memory.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


def encode_message(message: object) -> bytes:
    """Encode and frame one message (length prefix + checksummed record)."""
    framed = pack_record(encode_value(message))
    return _LENGTH.pack(len(framed)) + framed


def write_message(sock: socket.socket, message: object) -> None:
    """Encode, frame, and send one message."""
    sock.sendall(encode_message(message))


class FrameDecoder:
    """Incremental message decoder for non-blocking transports.

    Feed it whatever byte chunks ``recv`` produced; it buffers partial
    frames and returns every complete decoded message, preserving
    arrival order.  Framing violations (oversized length prefix, failed
    checksum) raise :class:`repro.errors.ProtocolError` /
    :class:`repro.errors.ChecksumError` — a stream that produced one can
    never be resynchronized and must be dropped.
    """

    __slots__ = ("_buffer",)

    def __init__(self):
        self._buffer = bytearray()

    def __len__(self) -> int:
        """Bytes currently buffered (complete frames not yet consumed)."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[object]:
        """Buffer ``data``; return every message it completed."""
        buffer = self._buffer
        buffer.extend(data)
        messages: list[object] = []
        offset = 0
        while len(buffer) - offset >= _LENGTH.size:
            (length,) = _LENGTH.unpack_from(buffer, offset)
            if length > MAX_MESSAGE_BYTES:
                raise ProtocolError(
                    f"message of {length} bytes exceeds the "
                    f"{MAX_MESSAGE_BYTES}-byte limit")
            end = offset + _LENGTH.size + length
            if len(buffer) < end:
                break
            payload, __ = unpack_record(
                bytes(buffer[offset + _LENGTH.size:end]))
            messages.append(decode_value(payload))
            offset = end
        if offset:
            del buffer[:offset]
        return messages


def _kill(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass


def _read_exact(sock: socket.socket, length: int) -> bytes:
    chunks: list[bytes] = []
    remaining = length
    try:
        while remaining > 0:
            chunk = sock.recv(remaining)
            if not chunk:
                raise ConnectionError("peer closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
    except TimeoutError:
        if not chunks:
            raise  # nothing consumed: the stream is still frame-aligned
        # A timeout mid-frame leaves the stream desynchronized — the
        # next read would consume the rest of this frame as if it were a
        # new one.  The connection is unusable; kill it.
        _kill(sock)
        raise ConnectionError(
            f"timed out mid-message after {length - remaining} of "
            f"{length} bytes; connection closed (stream desynced)"
        ) from None
    return b"".join(chunks)


def read_message(sock: socket.socket) -> object:
    """Receive and decode one message (blocking).

    Any timeout after the first byte of a message has been consumed
    closes the socket and raises :class:`ConnectionError`: a partially
    read frame can never be resynchronized.
    """
    (length,) = _LENGTH.unpack(_read_exact(sock, _LENGTH.size))
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {length} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte limit")
    try:
        framed = _read_exact(sock, length)
    except TimeoutError:
        # The length prefix was consumed but the body never arrived:
        # same desync as a torn frame.
        _kill(sock)
        raise ConnectionError(
            f"timed out awaiting a {length}-byte message body; "
            f"connection closed (stream desynced)") from None
    payload, __ = unpack_record(framed)
    return decode_value(payload)
