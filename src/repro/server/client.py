"""RemoteHAM: the HAM API executed on a central server.

A :class:`RemoteHAM` mirrors every operation of
:class:`repro.core.ham.HAM`.  The operation stubs are *generated* from
:data:`repro.core.operations.REGISTRY` — each stub binds its declared
signature, applies the declared argument codecs, performs one RPC, and
decodes the result with the declared result codec; there is no
hand-written marshalling code per operation.  Server-side errors
re-raise as matching local exception types when one exists (otherwise
:class:`repro.errors.RemoteError`).

Transactions are mirrored by :class:`RemoteTransaction`: ``begin`` opens
one on the server, ``commit``/``abort`` finish it, and the server aborts
anything left open if the connection dies.

Batching: ``with client.batch() as b:`` queues operations client-side
(each call returns a :class:`BatchFuture`) and flushes them all in one
``call_batch`` round trip on exit — the cure for RPC-per-operation
latency when a workstation replays many independent updates.

Like the local HAM, a client has a ``middleware`` chain
(:class:`repro.core.operations.MiddlewareChain`); add a
:class:`repro.tools.metrics.OperationMetrics` to observe per-operation
counts and latency of the RPC session.
"""

from __future__ import annotations

import itertools
import socket
import threading

from repro import errors
from repro.core.operations import (
    PROTOCOL_VERSION,
    MiddlewareChain,
    Operation,
    REGISTRY,
    make_client_stub,
)
from repro.core.types import Time
from repro.errors import ProtocolError, RemoteError
from repro.server.protocol import read_message, write_message

__all__ = ["RemoteHAM", "RemoteTransaction", "RemoteBatch", "BatchFuture"]


def _raise_remote(error: dict) -> None:
    remote_type = error.get("type", "NeptuneError")
    message = error.get("message", "")
    local_type = getattr(errors, remote_type, None)
    if (isinstance(local_type, type)
            and issubclass(local_type, Exception)
            and local_type is not RemoteError):
        raise local_type(message)
    raise RemoteError(remote_type, message)


class RemoteTransaction:
    """Client-side handle on a transaction open at the server."""

    def __init__(self, client: "RemoteHAM", txn_id: int):
        self.txn_id = txn_id
        self._client = client
        self.finished = False

    def commit(self) -> None:
        """Commit on the server (durable when the call returns)."""
        self._client._call("commit", txn=self.txn_id)
        self.finished = True

    def abort(self) -> None:
        """Abort on the server."""
        self._client._call("abort", txn=self.txn_id)
        self.finished = True

    def __enter__(self) -> "RemoteTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.finished:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()


class BatchFuture:
    """The eventual result of one queued batch entry.

    Resolved when the owning :class:`RemoteBatch` flushes; ``result()``
    returns the decoded value or re-raises the entry's server-side
    error, exactly as the unbatched call would have.
    """

    _PENDING = object()

    __slots__ = ("operation", "_value", "_error")

    def __init__(self, operation: Operation):
        self.operation = operation
        self._value = self._PENDING
        self._error: dict | None = None

    def done(self) -> bool:
        return self._value is not self._PENDING or self._error is not None

    def result(self):
        if self._error is not None:
            _raise_remote(self._error)
        if self._value is self._PENDING:
            raise ProtocolError(
                f"{self.operation.name}: batch not flushed yet")
        return self._value

    def _resolve(self, value) -> None:
        self._value = value

    def _fail(self, error: dict) -> None:
        self._error = error


class RemoteBatch:
    """Queues registry operations; one ``call_batch`` flush sends all.

    Exposes the same generated operation stubs as :class:`RemoteHAM`,
    but each call queues the encoded request and returns a
    :class:`BatchFuture` instead of performing a round trip.  Exiting
    the ``with`` block flushes (unless the block raised, in which case
    the queue is discarded).  Entries execute server-side in queue
    order with per-entry error reporting — one failure does not abort
    the rest.
    """

    def __init__(self, client: "RemoteHAM"):
        self._client = client
        self._queue: list[tuple[Operation, dict, BatchFuture]] = []

    def __len__(self) -> int:
        return len(self._queue)

    def _enqueue(self, operation: Operation, wire_params: dict,
                 ) -> BatchFuture:
        future = BatchFuture(operation)
        self._queue.append((operation, wire_params, future))
        return future

    def flush(self) -> list[BatchFuture]:
        """Send every queued call in one round trip; resolve futures."""
        if not self._queue:
            return []
        queued, self._queue = self._queue, []
        calls = [[operation.name, wire_params]
                 for operation, wire_params, __ in queued]
        chain = self._client.middleware
        if not chain:
            entries = self._client._call("call_batch", calls=calls)
        else:
            entries = chain.run(
                "call_batch",
                lambda: self._client._call("call_batch", calls=calls))
        if not isinstance(entries, (list, tuple)) \
                or len(entries) != len(queued):
            raise ProtocolError(
                "call_batch returned a malformed result list")
        futures = []
        for (operation, __, future), entry in zip(queued, entries):
            ok, payload = entry
            if ok:
                future._resolve(operation.result.from_wire(payload))
            else:
                future._fail(payload)
            futures.append(future)
        return futures

    def __enter__(self) -> "RemoteBatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()
        else:
            self._queue.clear()


def _txn_id(txn: RemoteTransaction | None) -> int | None:
    return txn.txn_id if txn is not None else None


class RemoteHAM:
    """Connects to a :class:`repro.server.server.HAMServer`.

    Thread-safe for sequential calls (one in flight at a time per client;
    open one client per worker thread for parallel load, as the
    benchmark harness does).

    On connect the client performs a protocol handshake (``ping``) and
    raises :class:`repro.errors.ProtocolError` if the server speaks a
    different protocol version — pass ``handshake=False`` to skip.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 handshake: bool = True):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        #: Interceptors around every RPC operation (counts, latency,
        #: tracing); empty by default — the no-middleware fast path.
        self.middleware = MiddlewareChain()
        #: The server's ping reply ({"protocol": N, ...}) once known.
        self.server_info: dict | None = None
        if handshake:
            try:
                self._handshake()
            except BaseException:
                self.close()
                raise

    def close(self) -> None:
        """Close the connection (server aborts any open transactions)."""
        with self._lock:
            if not self._closed:
                try:
                    self._sock.close()
                finally:
                    self._closed = True

    def __enter__(self) -> "RemoteHAM":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _call(self, method: str, **params):
        with self._lock:
            request_id = next(self._ids)
            write_message(self._sock, {
                "id": request_id, "method": method, "params": params})
            response = read_message(self._sock)
        if not isinstance(response, dict):
            raise ProtocolError("malformed response from server")
        if response.get("id") != request_id:
            raise ProtocolError(
                f"response id {response.get('id')} does not match request "
                f"{request_id}")
        if response.get("ok"):
            return response.get("result")
        _raise_remote(response.get("error") or {})

    def _invoke(self, operation: Operation, wire_params: dict):
        """One registry operation: RPC + result decode, via middleware."""
        chain = self.middleware
        if not chain:
            return operation.result.from_wire(
                self._call(operation.name, **wire_params))
        return chain.run(
            operation.name,
            lambda: operation.result.from_wire(
                self._call(operation.name, **wire_params)))

    # ------------------------------------------------------------------
    # sessions / transactions

    def _handshake(self) -> dict:
        """Ping the server and verify it speaks our protocol version."""
        reply = self._call("ping")
        if isinstance(reply, dict) and "protocol" in reply:
            remote = reply["protocol"]
            info = reply
        elif reply == "pong":  # the pre-registry protocol
            remote, info = 1, {"protocol": 1}
        else:
            raise ProtocolError(f"malformed ping reply {reply!r}")
        if remote != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: this client speaks version "
                f"{PROTOCOL_VERSION}, the server speaks version {remote}; "
                f"upgrade the older side before connecting")
        self.server_info = info
        return info

    def ping(self) -> bool:
        """Round-trip liveness check (re-runs the protocol handshake)."""
        self._handshake()
        return True

    def begin(self, read_only: bool = False) -> RemoteTransaction:
        """Open a transaction on the server."""
        return RemoteTransaction(
            self, self._call("begin", read_only=read_only))

    transaction = begin

    def batch(self) -> RemoteBatch:
        """Queue operations and flush them in one round trip.

        ::

            with client.batch() as b:
                first = b.add_node()
                b.set_node_attribute_value(node=n, attribute=a, value="v")
            index, time = first.result()
        """
        return RemoteBatch(self)

    # ------------------------------------------------------------------
    # multi-graph host methods (servers started with a GraphHost)

    def host_create_graph(self, name: str) -> tuple[int, Time]:
        """Create a graph on the host; returns (ProjectId, Time)."""
        project_id, time = self._call("host_create_graph", name=name)
        return project_id, time

    def host_open_graph(self, project_id: int, name: str) -> int:
        """Bind this session to a hosted graph (aborts any open txns)."""
        return self._call("host_open_graph", project_id=project_id,
                          name=name)

    def host_list_graphs(self) -> list[str]:
        """Names of the graphs the host serves."""
        return self._call("host_list_graphs")

    def host_destroy_graph(self, project_id: int, name: str) -> None:
        """Destroy a hosted graph."""
        self._call("host_destroy_graph", project_id=project_id, name=name)


def _install_stubs() -> None:
    """Generate every operation stub from the registry.

    :class:`RemoteHAM` gets RPC stubs (properties for the property-kind
    operations); :class:`RemoteBatch` gets queueing stubs for everything
    a batch may carry.  Session-kind operations (ping/begin/commit/
    abort) keep their hand-written client surface above, since they
    manage client-side handles rather than marshal values.
    """
    for operation in REGISTRY:
        if operation.kind == "session":
            continue
        if operation.kind == "ham_property":
            stub = make_client_stub(operation, RemoteHAM._invoke)
            setattr(RemoteHAM, operation.name,
                    property(stub, doc=operation.doc))
            continue
        setattr(RemoteHAM, operation.name,
                make_client_stub(operation, RemoteHAM._invoke))
        setattr(RemoteBatch, operation.name,
                make_client_stub(operation, RemoteBatch._enqueue))


_install_stubs()
