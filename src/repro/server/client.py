"""RemoteHAM: the HAM API executed on a central server.

A :class:`RemoteHAM` mirrors every operation of
:class:`repro.core.ham.HAM`.  The operation stubs are *generated* from
:data:`repro.core.operations.REGISTRY` — each stub binds its declared
signature, applies the declared argument codecs, performs one RPC, and
decodes the result with the declared result codec; there is no
hand-written marshalling code per operation.  Server-side errors
re-raise as matching local exception types when one exists (otherwise
:class:`repro.errors.RemoteError`).

Transactions are mirrored by :class:`RemoteTransaction`: ``begin`` opens
one on the server, ``commit``/``abort`` finish it, and the server aborts
anything left open if the connection dies.

Batching: ``with client.batch() as b:`` queues operations client-side
(each call returns a :class:`BatchFuture`) and flushes them all in one
``call_batch`` round trip on exit — the cure for RPC-per-operation
latency when a workstation replays many independent updates.

Like the local HAM, a client has a ``middleware`` chain
(:class:`repro.core.operations.MiddlewareChain`); add a
:class:`repro.tools.metrics.OperationMetrics` to observe per-operation
counts and latency of the RPC session.

Resilience: every call runs under a :class:`RetryPolicy`.  When the
connection dies the client tears the socket down and — for *idempotent*
operations (reads, ``ping``, ``begin``; see
:attr:`repro.core.operations.Operation.idempotent`) — transparently
reconnects with jittered capped exponential backoff and re-issues the
request.  A non-idempotent request whose frame was already handed to the
transport instead surfaces :class:`repro.errors.RetryableError`: the
server may or may not have executed it, and silently re-sending could
apply a mutation twice.  Reconnects re-run the protocol handshake and
re-bind the session to the last ``host_open_graph`` target, so a
workstation session survives a server restart.  ``reconnects`` and
``retries`` counters (mirrored into
:data:`repro.tools.metrics.RESILIENCE`) expose how bumpy the ride was.
"""

from __future__ import annotations

import collections
import itertools
import select
import socket
import threading
import time as _time
from dataclasses import dataclass
from random import Random

from repro import errors
from repro.core.demons import EventKind
from repro.core.operations import (
    PROTOCOL_VERSION,
    MiddlewareChain,
    Operation,
    REGISTRY,
    make_client_stub,
)
from repro.core.types import Time
from repro.errors import (
    ChecksumError,
    ProtocolError,
    RemoteError,
    RetryableError,
    StorageError,
    SubscriptionError,
    SubscriptionOverflowError,
)
from repro.server.protocol import FrameDecoder, encode_message, read_message
from repro.tools.metrics import RESILIENCE, SUBSCRIPTIONS

__all__ = ["BatchFuture", "PipelineBatch", "PipelineFuture", "RemoteBatch",
           "RemoteHAM", "RemoteTransaction", "RemotePipeline", "RemoteWatch",
           "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`RemoteHAM` behaves when the connection dies.

    ``max_attempts`` bounds tries per call (first attempt included);
    between attempts the client sleeps ``backoff_base * 2**(n-1)`` capped
    at ``backoff_cap``, stretched by up to ``jitter`` (fraction, seeded
    by ``seed`` for reproducibility).  ``call_deadline`` bounds the whole
    call — connect, retries, and backoff together — independently of the
    per-I/O socket timeout; ``None`` disables it.
    """

    max_attempts: int = 4
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.5
    call_deadline: float | None = 30.0
    seed: int | None = None


class _TransportFailure(Exception):
    """Internal: the connection died during one attempt.

    ``sent`` records whether the full request frame was handed to the
    transport before the failure — the line between "safe to re-issue"
    and "outcome unknown".
    """

    def __init__(self, cause: BaseException, sent: bool):
        super().__init__(str(cause))
        self.cause = cause
        self.sent = sent


def _raise_remote(error: dict) -> None:
    remote_type = error.get("type", "NeptuneError")
    message = error.get("message", "")
    local_type = getattr(errors, remote_type, None)
    if (isinstance(local_type, type)
            and issubclass(local_type, Exception)
            and local_type is not RemoteError):
        raise local_type(message)
    raise RemoteError(remote_type, message)


class RemoteTransaction:
    """Client-side handle on a transaction open at the server."""

    def __init__(self, client: "RemoteHAM", txn_id: int):
        self.txn_id = txn_id
        self._client = client
        self.finished = False
        #: Global LSN of this transaction's commit (None until committed,
        #: and for read-only/no-op commits).  Feeds the session's
        #: read-your-writes watermark.
        self.commit_lsn: int | None = None

    def commit(self) -> int | None:
        """Commit on the server (durable when the call returns).

        Returns the commit's global LSN (None for read-only and no-op
        transactions) and advances the session's read-your-writes
        watermark (:attr:`RemoteHAM.last_commit_lsn`).
        """
        self.commit_lsn = self._client._call("commit", txn=self.txn_id)
        self.finished = True
        self._client._note_commit(self.commit_lsn)
        return self.commit_lsn

    def abort(self) -> None:
        """Abort on the server."""
        self._client._call("abort", txn=self.txn_id)
        self.finished = True

    def __enter__(self) -> "RemoteTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.finished:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()


class BatchFuture:
    """The eventual result of one queued batch entry.

    Resolved when the owning :class:`RemoteBatch` flushes; ``result()``
    returns the decoded value or re-raises the entry's server-side
    error, exactly as the unbatched call would have.
    """

    _PENDING = object()

    __slots__ = ("operation", "_value", "_error")

    def __init__(self, operation: Operation):
        self.operation = operation
        self._value = self._PENDING
        self._error: dict | None = None

    def done(self) -> bool:
        return self._value is not self._PENDING or self._error is not None

    def result(self):
        if self._error is not None:
            _raise_remote(self._error)
        if self._value is self._PENDING:
            raise ProtocolError(
                f"{self.operation.name}: batch not flushed yet")
        return self._value

    def _resolve(self, value) -> None:
        self._value = value

    def _fail(self, error: dict) -> None:
        self._error = error


class RemoteBatch:
    """Queues registry operations; one ``call_batch`` flush sends all.

    Exposes the same generated operation stubs as :class:`RemoteHAM`,
    but each call queues the encoded request and returns a
    :class:`BatchFuture` instead of performing a round trip.  Exiting
    the ``with`` block flushes (unless the block raised, in which case
    the queue is discarded).  Entries execute server-side in queue
    order with per-entry error reporting — one failure does not abort
    the rest.
    """

    def __init__(self, client: "RemoteHAM"):
        self._client = client
        self._queue: list[tuple[Operation, dict, BatchFuture]] = []

    def __len__(self) -> int:
        return len(self._queue)

    def _enqueue(self, operation: Operation, wire_params: dict,
                 ) -> BatchFuture:
        future = BatchFuture(operation)
        self._queue.append((operation, wire_params, future))
        return future

    def flush(self) -> list[BatchFuture]:
        """Send every queued call in one round trip; resolve futures."""
        if not self._queue:
            return []
        queued, self._queue = self._queue, []
        calls = [[operation.name, wire_params]
                 for operation, wire_params, __ in queued]
        chain = self._client.middleware
        if not chain:
            entries = self._client._call("call_batch", calls=calls)
        else:
            entries = chain.run(
                "call_batch",
                lambda: self._client._call("call_batch", calls=calls))
        if not isinstance(entries, (list, tuple)) \
                or len(entries) != len(queued):
            raise ProtocolError(
                "call_batch returned a malformed result list")
        futures = []
        for (operation, __, future), entry in zip(queued, entries):
            ok, payload = entry
            if ok:
                future._resolve(operation.result.from_wire(payload))
            else:
                future._fail(payload)
            futures.append(future)
        return futures

    def __enter__(self) -> "RemoteBatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()
        else:
            self._queue.clear()


def _txn_id(txn: RemoteTransaction | None) -> int | None:
    return txn.txn_id if txn is not None else None


class RemoteHAM:
    """Connects to a :class:`repro.server.server.HAMServer`.

    Thread-safe for sequential calls (one in flight at a time per client;
    open one client per worker thread for parallel load, as the
    benchmark harness does).

    On connect the client performs a protocol handshake (``ping``) and
    raises :class:`repro.errors.ProtocolError` if the server speaks a
    different protocol version — pass ``handshake=False`` to skip.

    ``retry`` (a :class:`RetryPolicy`) governs reconnection and
    re-issue when the connection dies mid-session; see the module
    docstring for the idempotency rules.  Construction itself never
    retries — a server that is down at connect time fails fast.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 handshake: bool = True, retry: RetryPolicy | None = None):
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._rng = Random(self.retry.seed)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        self._sock: socket.socket | None = None
        #: The (project_id, name) of the last successful host_open_graph,
        #: replayed after a reconnect so the session stays bound.
        self._rebind: tuple[int, str] | None = None
        self._handshake_enabled = handshake
        #: How many times the connection was re-established / a request
        #: re-issued over this client's lifetime.
        self.reconnects = 0
        self.retries = 0
        #: Interceptors around every RPC operation (counts, latency,
        #: tracing); empty by default — the no-middleware fast path.
        self.middleware = MiddlewareChain()
        #: The server's ping reply ({"protocol": N, ...}) once known.
        self.server_info: dict | None = None
        #: Highest commit LSN acknowledged to this session — the
        #: read-your-writes watermark a replication-aware router holds
        #: replica reads to (see :mod:`repro.replication.router`).
        self.last_commit_lsn = 0
        #: Active change-feed watches: server sub id -> RemoteWatch.
        #: Re-registered (with their last-seen LSN) after a reconnect.
        self._watches: dict[int, RemoteWatch] = {}
        #: Push frames that arrived before their subscription id was
        #: known (a subscribe's replay frames precede its reply on the
        #: wire).  Re-routed once the watch registers; bounded.
        self._orphan_pushes: list[dict] = []
        with self._lock:
            self._connect_locked()

    def close(self) -> None:
        """Close the connection (server aborts any open transactions)."""
        with self._lock:
            self._closed = True
            self._teardown_locked()

    def __enter__(self) -> "RemoteHAM":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # connection lifecycle (self._lock held)

    def _teardown_locked(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _connect_locked(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout)
        try:
            # Small framed request/response messages: Nagle only adds
            # latency, and a pipelined burst wants its frames out now.
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        try:
            if self._handshake_enabled:
                self._handshake_locked()
            if self._rebind is not None:
                project_id, name = self._rebind
                self._transact_locked("host_open_graph",
                                      {"project_id": project_id,
                                       "name": name})
            if self._watches:
                self._resubscribe_locked()
        except _TransportFailure as failure:
            # A handshake failure is a *connect* failure from the outer
            # call's point of view — its own request was never sent.
            self._teardown_locked()
            raise failure.cause
        except BaseException:
            self._teardown_locked()
            raise

    def _handshake_locked(self) -> dict:
        reply = self._transact_locked("ping", {})
        info = self._validate_ping(reply)
        self.server_info = info
        return info

    @staticmethod
    def _validate_ping(reply) -> dict:
        if isinstance(reply, dict) and "protocol" in reply:
            remote, info = reply["protocol"], reply
        elif reply == "pong":  # the pre-registry protocol
            remote, info = 1, {"protocol": 1}
        else:
            raise ProtocolError(f"malformed ping reply {reply!r}")
        if remote != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: this client speaks version "
                f"{PROTOCOL_VERSION}, the server speaks version {remote}; "
                f"upgrade the older side before connecting")
        return info

    # ------------------------------------------------------------------
    # the wire (self._lock held)

    def _transact_locked(self, method: str, params: dict,
                         deadline: float | None = None):
        """One request/response exchange on the current socket.

        Tears the connection down and raises :class:`_TransportFailure`
        on any stream-level trouble; semantic (server-reported) errors
        re-raise as local exception types and leave the stream healthy.
        """
        timeout = self._timeout
        if deadline is not None:
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                raise _TransportFailure(
                    TimeoutError(f"{method}: call deadline exceeded"),
                    sent=False)
            timeout = min(timeout, remaining)
        request_id = next(self._ids)
        frame = encode_message({
            "id": request_id, "method": method, "params": params})
        sent = False
        try:
            self._sock.settimeout(timeout)
            self._sock.sendall(frame)
            # The full frame reached the transport: the server may
            # execute the request even if we never see the reply.
            sent = True
            response = read_message(self._sock)
            # Unsolicited push frames (change-feed events; protocol v7)
            # may interleave ahead of the response: route them to their
            # watches and keep reading for the reply.
            while isinstance(response, dict) and "push" in response:
                self._route_push(response)
                response = read_message(self._sock)
        except (ConnectionError, TimeoutError, OSError,
                ChecksumError, StorageError, ProtocolError) as exc:
            self._teardown_locked()
            raise _TransportFailure(exc, sent) from exc
        if not isinstance(response, dict) \
                or response.get("id") != request_id:
            self._teardown_locked()
            raise _TransportFailure(ProtocolError(
                f"{method}: response does not match request "
                f"{request_id} (got {response!r})"), sent=True)
        if response.get("ok"):
            # Mutating replies carry the graph's commit watermark (see
            # the server's dispatch): advance the session's
            # read-your-writes watermark so auto-committed operations
            # are covered, not just explicit ``commit`` calls.
            self._note_commit(response.get("commit_lsn"))
            return response.get("result")
        _raise_remote(response.get("error") or {})

    def _call(self, method: str, _idempotent: bool = False, **params):
        policy = self.retry
        with self._lock:
            if self._closed:
                raise ConnectionError("client is closed")
            deadline = None
            if policy.call_deadline is not None:
                deadline = _time.monotonic() + policy.call_deadline
            attempt = 0
            while True:
                attempt += 1
                try:
                    if self._sock is None:
                        self._connect_locked()
                        self.reconnects += 1
                        RESILIENCE.increment("reconnects")
                    return self._transact_locked(method, params, deadline)
                except _TransportFailure as failure:
                    cause, sent = failure.cause, failure.sent
                except (ConnectionError, TimeoutError, OSError) as exc:
                    cause, sent = exc, False  # connect-time failure
                if sent and not _idempotent:
                    raise RetryableError(
                        f"{method}: connection lost after the request was "
                        f"sent; the server may have executed it"
                    ) from cause
                out_of_time = (deadline is not None
                               and _time.monotonic() >= deadline)
                if attempt >= policy.max_attempts or out_of_time:
                    raise cause
                self.retries += 1
                RESILIENCE.increment("retries")
                delay = min(policy.backoff_cap,
                            policy.backoff_base * 2 ** (attempt - 1))
                delay *= 1 + policy.jitter * self._rng.random()
                _time.sleep(delay)

    def _note_commit(self, commit_lsn: int | None) -> None:
        """Advance the session's read-your-writes watermark."""
        if commit_lsn is not None and commit_lsn > self.last_commit_lsn:
            self.last_commit_lsn = commit_lsn

    def _invoke(self, operation: Operation, wire_params: dict):
        """One registry operation: RPC + result decode, via middleware."""
        # Transaction-scoped calls never auto-retry: the server-side
        # transaction died with the old connection, so re-issuing under
        # its id can only confuse matters.
        idempotent = (operation.idempotent
                      and wire_params.get("txn") is None)
        chain = self.middleware
        if not chain:
            return operation.result.from_wire(
                self._call(operation.name, _idempotent=idempotent,
                           **wire_params))
        return chain.run(
            operation.name,
            lambda: operation.result.from_wire(
                self._call(operation.name, _idempotent=idempotent,
                           **wire_params)))

    # ------------------------------------------------------------------
    # sessions / transactions

    def ping(self) -> bool:
        """Round-trip liveness check (re-runs the protocol handshake)."""
        reply = self._call("ping", _idempotent=True)
        self.server_info = self._validate_ping(reply)
        return True

    def begin(self, read_only: bool = False) -> RemoteTransaction:
        """Open a transaction on the server.

        Safe to auto-retry: if the first attempt's reply was lost, the
        orphaned server-side transaction dies with its session.
        """
        return RemoteTransaction(
            self, self._call("begin", _idempotent=True,
                             read_only=read_only))

    transaction = begin

    def batch(self) -> RemoteBatch:
        """Queue operations and flush them in one round trip.

        ::

            with client.batch() as b:
                first = b.add_node()
                b.set_node_attribute_value(node=n, attribute=a, value="v")
            index, time = first.result()
        """
        return RemoteBatch(self)

    def pipeline(self, max_inflight: int | None = None) -> "RemotePipeline":
        """Issue many requests without waiting; collect futures.

        ::

            with client.pipeline() as p:
                futures = [p.add_node() for __ in range(100)]
            nodes = [f.result() for f in futures]

        Unlike :meth:`batch` (one round trip, executed as one request),
        a pipeline streams individual requests and lets the server
        overlap their execution — read-only calls run concurrently on
        snapshots, mutations stay in issue order.  ``max_inflight``
        bounds how many requests may be outstanding at once (``_issue``
        blocks servicing the wire until the window drains).  See
        :class:`RemotePipeline` for the failure semantics.
        """
        return RemotePipeline(self, max_inflight=max_inflight)

    # ------------------------------------------------------------------
    # multi-graph host methods (servers started with a GraphHost)

    def host_create_graph(self, name: str) -> tuple[int, Time]:
        """Create a graph on the host; returns (ProjectId, Time)."""
        project_id, time = self._call("host_create_graph", name=name)
        return project_id, time

    def host_open_graph(self, project_id: int, name: str) -> int:
        """Bind this session to a hosted graph (aborts any open txns).

        Idempotent (re-binding is a no-op server-side); remembered and
        replayed after every reconnect.
        """
        result = self._call("host_open_graph", _idempotent=True,
                            project_id=project_id, name=name)
        self._rebind = (project_id, name)
        return result

    def host_list_graphs(self) -> list[str]:
        """Names of the graphs the host serves."""
        return self._call("host_list_graphs", _idempotent=True)

    def host_destroy_graph(self, project_id: int, name: str) -> None:
        """Destroy a hosted graph."""
        self._call("host_destroy_graph", project_id=project_id, name=name)

    # ------------------------------------------------------------------
    # change feeds (protocol v7)

    def watch(self, events=None, predicate=None,
              from_lsn=None) -> "RemoteWatch":
        """Subscribe to the served graph's change feed.

        ``events`` limits the feed to specific
        :class:`~repro.core.demons.EventKind` values (names or enum
        members; None = every mutation kind); ``predicate`` is a query
        predicate evaluated server-side against the event's node.
        Returns a :class:`RemoteWatch` — iterate it (or ``poll``) for
        wire-form event dicts carrying the commit LSN.  The watch
        survives reconnects: the client re-subscribes with its
        last-seen LSN and the server replays what the ring retained
        (``watch.resync`` turns True when the gap was too old to
        replay).  ``from_lsn`` starts the feed with a replay of
        already-emitted commits past that LSN — the manual-resume hook
        after a cancelled feed (pass the dead watch's ``last_lsn``).
        """
        wire_events = (None if events is None
                       else [EventKind(event).value for event in events])
        with self._lock:
            if self._closed:
                raise ConnectionError("client is closed")
            if self._sock is None:
                self._connect_locked()
                self.reconnects += 1
                RESILIENCE.increment("reconnects")
            try:
                reply = self._transact_locked(
                    "subscribe",
                    {"events": wire_events, "predicate": predicate,
                     "from_lsn": from_lsn})
            except _TransportFailure as failure:
                raise failure.cause
            watch = RemoteWatch(self, wire_events, predicate)
            watch.sub_id = reply["sub"]
            # With a replay request, any caught-up frames (buffered as
            # orphans below) carry LSNs at or below the reply's "last
            # emitted" — starting from from_lsn keeps them in order.
            watch.last_lsn = (from_lsn if from_lsn is not None
                              else reply.get("lsn") or 0)
            watch.resync = bool(reply.get("resync"))
            self._watches[watch.sub_id] = watch
            self._drain_orphans_locked(watch)
        return watch

    def unsubscribe(self, sub: int) -> bool:
        """Cancel a subscription by id (``RemoteWatch.close`` does this)."""
        with self._lock:
            self._watches.pop(sub, None)
        return self._call("unsubscribe", _idempotent=True, sub=sub)

    def subscription_status(self) -> dict:
        """Server-side hub counters and this session's queue depth."""
        return self._call("subscription_status", _idempotent=True)

    def _route_push(self, message: dict) -> None:
        """Hand one unsolicited push frame to its watch (lock held)."""
        watch = self._watches.get(message.get("sub"))
        if watch is None:
            # Replay frames outrun their subscribe reply (the id is not
            # known yet) — park them for registration to claim.  Frames
            # for long-gone subscriptions age out of the same buffer.
            self._orphan_pushes.append(message)
            del self._orphan_pushes[:-256]
            return
        watch._on_push(message)

    def _drain_orphans_locked(self, watch: "RemoteWatch") -> None:
        if not self._orphan_pushes:
            return
        keep = []
        for message in self._orphan_pushes:
            if message.get("sub") == watch.sub_id:
                watch._on_push(message)
            else:
                keep.append(message)
        self._orphan_pushes = keep

    def _resubscribe_locked(self) -> None:
        """Re-register every live watch on a fresh connection.

        Each watch re-subscribes carrying its last-seen LSN; the
        server's replay ring fills the disconnection gap (the replayed
        frames arrive ahead of the subscribe reply and are claimed at
        registration).  Runs inside :meth:`_connect_locked`, so a
        failure here fails the reconnect as a whole.
        """
        watches = [watch for watch in self._watches.values()
                   if not watch.closed]
        self._watches = {}
        try:
            for watch in watches:
                reply = self._transact_locked("subscribe", {
                    "events": watch._wire_events,
                    "predicate": watch._predicate,
                    "from_lsn": watch.last_lsn})
                watch.sub_id = reply["sub"]
                watch.seq = 0  # a new subscription numbers from 1
                if reply.get("resync"):
                    watch.resync = True
                watch.resubscribes += 1
                SUBSCRIPTIONS.increment("resubscribes")
                self._watches[watch.sub_id] = watch
                self._drain_orphans_locked(watch)
        except BaseException:
            # Keep the not-yet-re-registered watches addressable so the
            # next reconnect attempt picks them up again.
            for watch in watches:
                self._watches.setdefault(watch.sub_id, watch)
            raise

    def _pump_push(self, timeout: float) -> bool:
        """Read one frame's worth of push traffic; True when any arrived.

        A clean timeout (no byte of a frame consumed — see
        :func:`repro.server.protocol.read_message`) means "no pushes
        right now".  A dead connection tears down quietly; the next
        pump reconnects, which re-subscribes every live watch.
        """
        with self._lock:
            if self._closed:
                raise ConnectionError("client is closed")
            if self._sock is None:
                self._connect_locked()
                self.reconnects += 1
                RESILIENCE.increment("reconnects")
                return True  # resubscribe replay may have routed frames
            try:
                self._sock.settimeout(max(timeout, 0.001))
                message = read_message(self._sock)
            except TimeoutError:
                return False
            except (ConnectionError, OSError, ChecksumError,
                    StorageError):
                self._teardown_locked()
                return False
            if isinstance(message, dict) and "push" in message:
                self._route_push(message)
                return True
            self._teardown_locked()
            raise ProtocolError(
                f"unsolicited non-push message {message!r}")


class RemoteWatch:
    """A server-pushed change feed, consumed as an iterator.

    Created by :meth:`RemoteHAM.watch`.  Each item is one event as a
    wire dict (``kind``/``node``/``link``/``transaction``/``detail``/
    ``time``) augmented with the commit ``lsn`` and the subscription's
    delivery ``seq``.  Events of one commit are contiguous and LSNs are
    non-decreasing; a sequence gap (which the dense per-subscription
    ``seq`` makes detectable even under predicate filtering) or a
    server-pushed cancel surfaces as :class:`SubscriptionError` /
    :class:`SubscriptionOverflowError` — only after already-buffered
    events have been consumed.
    """

    def __init__(self, client: RemoteHAM, wire_events, predicate) -> None:
        self._client = client
        self._wire_events = wire_events
        self._predicate = predicate
        self.sub_id: int | None = None
        self.seq = 0
        self.last_lsn = 0
        self.resync = False
        self.resubscribes = 0
        self.closed = False
        self._buffer: collections.deque = collections.deque()
        self._cancel: tuple | None = None  # (reason, dropped, message)
        self._broken: str | None = None

    # -- frame intake (client lock held) -------------------------------

    def _on_push(self, message: dict) -> None:
        if message.get("push") == "cancel":
            self._cancel = (message.get("reason"),
                            message.get("dropped", 0),
                            message.get("message", ""))
            return
        lsn = message.get("lsn", 0)
        seq = message.get("seq", 0)
        if seq != self.seq + 1:
            self._broken = (f"change feed gap: expected seq "
                            f"{self.seq + 1}, got {seq}")
            return
        if lsn < self.last_lsn:
            self._broken = (f"change feed went backwards: lsn {lsn} "
                            f"after {self.last_lsn}")
            return
        self.seq = seq
        self.last_lsn = lsn
        for event in message.get("events") or ():
            entry = dict(event)
            entry["lsn"] = lsn
            entry["seq"] = seq
            self._buffer.append(entry)

    # -- consumption ---------------------------------------------------

    def _raise_feed_failure(self) -> None:
        if self._broken is not None:
            raise SubscriptionError(self._broken)
        reason, dropped, message = self._cancel
        if reason == "overflow":
            raise SubscriptionOverflowError(
                f"subscription {self.sub_id} dropped after {dropped} "
                f"lost events at lsn {self.last_lsn}: {message}")
        raise SubscriptionError(
            f"subscription {self.sub_id} cancelled ({reason}): {message}")

    def poll(self, timeout: float | None = 0.0):
        """Next event dict, or None when ``timeout`` elapses.

        ``timeout=None`` blocks until an event arrives or the feed
        fails.  Buffered events are always drained before a cancel or
        gap raises.
        """
        deadline = (None if timeout is None
                    else _time.monotonic() + (timeout or 0.0))
        while True:
            if self._buffer:
                return self._buffer.popleft()
            if self._cancel is not None or self._broken is not None:
                self._raise_feed_failure()
            if self.closed:
                return None
            if deadline is None:
                wait = 0.25
            else:
                wait = deadline - _time.monotonic()
                if wait < 0.0:
                    return None
            self._client._pump_push(min(wait, 0.25))
            if (deadline is not None and not self._buffer
                    and _time.monotonic() >= deadline):
                if self._cancel is not None or self._broken is not None:
                    self._raise_feed_failure()
                return None

    def __iter__(self):
        while True:
            event = self.poll(timeout=None)
            if event is None:
                return
            yield event

    def close(self) -> None:
        """Stop the feed; unsubscribes server-side on a best effort."""
        if self.closed:
            return
        self.closed = True
        with self._client._lock:
            self._client._watches.pop(self.sub_id, None)
        if self._cancel is None:
            try:
                self._client._call("unsubscribe", _idempotent=True,
                                   sub=self.sub_id)
            except Exception:
                pass

    def __enter__(self) -> "RemoteWatch":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PipelineFuture:
    """The eventual reply to one pipelined request.

    ``result()`` services the pipeline's wire until this request's
    response arrives (matching by request id, so out-of-order completion
    is fine), then returns the decoded value or re-raises the
    server-side error exactly as the serial call would have.  If the
    connection died, raises :class:`ConnectionError` chained to the
    transport failure that killed it.
    """

    __slots__ = ("method", "request_id", "_pipeline", "_decode", "_state",
                 "_value", "_error", "_cause", "_on_done")

    def __init__(self, pipeline: "RemotePipeline", request_id: int,
                 method: str, decode):
        self.method = method
        self.request_id = request_id
        self._pipeline = pipeline
        self._decode = decode
        self._state = "pending"
        self._value = None
        self._error: dict | None = None
        self._cause: BaseException | None = None
        self._on_done = None

    def done(self) -> bool:
        return self._state != "pending"

    def result(self, timeout: float | None = None):
        if self._state == "pending":
            self._pipeline._service_while(
                lambda: self._state == "pending", timeout,
                what=f"reply to {self.method}")
        if self._state == "ok":
            return self._value
        if self._state == "error":
            _raise_remote(self._error)
        raise ConnectionError(
            f"{self.method}: pipeline connection lost before the reply "
            f"arrived; the server may have executed it") from self._cause

    # -- resolution (called by the owning pipeline) --------------------

    def _complete(self, response: dict) -> None:
        if response.get("ok"):
            try:
                self._value = (self._decode(response.get("result"))
                               if self._decode is not None
                               else response.get("result"))
                self._state = "ok"
            except Exception as exc:
                self._error = {"type": "ProtocolError",
                               "message": f"{self.method}: malformed "
                                          f"result ({exc})"}
                self._state = "error"
        else:
            self._error = response.get("error") or {}
            self._state = "error"
        if self._on_done is not None:
            self._on_done(self)

    def _abandon(self, cause: BaseException) -> None:
        if self._state == "pending":
            self._cause = cause
            self._state = "abandoned"
            if self._on_done is not None:
                self._on_done(self)


class RemotePipeline:
    """Many requests in flight on one connection; futures for replies.

    Entered as a context manager, it takes exclusive ownership of the
    client's connection (other threads' serial calls block until exit),
    switches the socket non-blocking, and streams requests out while
    draining responses in — so issuing never waits for a round trip, and
    the server (which schedules per-session: reads concurrent, mutations
    ordered) can overlap execution.  Exit drains everything still in
    flight, so after the ``with`` block every future is resolved.

    Failure semantics are stricter than serial calls: pipelined requests
    never auto-retry.  If the connection dies, every unresolved future
    is abandoned (``result()`` raises :class:`ConnectionError`) and the
    socket is torn down — the next serial call reconnects.

    ``begin()`` returns a future resolving to a
    :class:`RemoteTransaction`; pipelining operations *under* a
    transaction therefore has one sync point (``begin().result()``) and
    streams from there.  ``batch()`` composes: queued entries flush as a
    single pipelined ``call_batch`` frame.
    """

    def __init__(self, client: RemoteHAM, max_inflight: int | None = None):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        self._client = client
        self._max_inflight = max_inflight
        self._futures: dict[int, PipelineFuture] = {}
        self._sendbuf = bytearray()
        self._decoder = FrameDecoder()
        self._active = False
        self._dead = False
        #: High-water mark of requests outstanding at once.
        self.max_depth = 0

    def __len__(self) -> int:
        """Requests issued and not yet resolved."""
        return len(self._futures)

    # ------------------------------------------------------------------
    # lifecycle

    def __enter__(self) -> "RemotePipeline":
        self._client._lock.acquire()
        try:
            if self._client._closed:
                raise ConnectionError("client is closed")
            if self._active:
                raise ProtocolError("pipeline already entered")
            if self._client._sock is None:
                self._client._connect_locked()
                self._client.reconnects += 1
                RESILIENCE.increment("reconnects")
            self._client._sock.setblocking(False)
        except BaseException:
            self._client._lock.release()
            raise
        self._active = True
        self._dead = False
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            if not self._dead and (self._futures or self._sendbuf):
                try:
                    self._service_while(
                        lambda: self._futures or self._sendbuf, None,
                        what="pipeline drain")
                except (ConnectionError, TimeoutError, OSError):
                    # The futures already carry the failure; surface it
                    # only if the block itself succeeded.
                    if exc_type is None:
                        raise
        finally:
            self._active = False
            sock = self._client._sock
            if sock is not None:
                try:
                    sock.settimeout(self._client._timeout)
                except OSError:
                    pass
            self._client._lock.release()

    # ------------------------------------------------------------------
    # issuing

    def _issue(self, method: str, wire_params: dict, decode) -> PipelineFuture:
        if not self._active:
            raise ProtocolError(
                "pipeline used outside its with-block")
        if self._dead:
            raise ConnectionError(
                "pipeline connection lost") from None
        if (self._max_inflight is not None
                and len(self._futures) >= self._max_inflight):
            self._service_while(
                lambda: len(self._futures) >= self._max_inflight, None,
                what="pipeline window")
        request_id = next(self._client._ids)
        future = PipelineFuture(self, request_id, method, decode)
        self._futures[request_id] = future
        if len(self._futures) > self.max_depth:
            self.max_depth = len(self._futures)
        self._sendbuf += encode_message(
            {"id": request_id, "method": method, "params": wire_params})
        # Opportunistic non-blocking pass once enough bytes accumulate:
        # one syscall then flushes many small frames and drains any
        # replies already here, so neither side's buffers back up while
        # the caller keeps issuing.  Anything still buffered goes out on
        # the next result()/window/drain pump.
        if len(self._sendbuf) >= 4096:
            self._pump(0.0)
        return future

    def _enqueue(self, operation: Operation, wire_params: dict,
                 ) -> PipelineFuture:
        """Target of the generated registry stubs."""
        return self._issue(operation.name, wire_params,
                           operation.result.from_wire)

    def call(self, method: str, **params) -> PipelineFuture:
        """Pipeline an arbitrary wire method (undecoded result)."""
        return self._issue(method, params, None)

    # -- session verbs (hand-written: they manage client-side handles) --

    def begin(self, read_only: bool = False) -> PipelineFuture:
        """Open a transaction; the future resolves to a
        :class:`RemoteTransaction`."""
        return self._issue(
            "begin", {"read_only": read_only},
            lambda txn_id: RemoteTransaction(self._client, txn_id))

    def commit(self, txn: RemoteTransaction) -> PipelineFuture:
        """Commit ``txn``; resolving the future acknowledges durability."""
        def decode(commit_lsn):
            txn.commit_lsn = commit_lsn
            txn.finished = True
            self._client._note_commit(commit_lsn)
        return self._issue("commit", {"txn": _txn_id(txn)}, decode)

    def abort(self, txn: RemoteTransaction) -> PipelineFuture:
        def decode(__):
            txn.finished = True
        return self._issue("abort", {"txn": _txn_id(txn)}, decode)

    def batch(self) -> "PipelineBatch":
        """A :class:`RemoteBatch` whose flush rides this pipeline."""
        return PipelineBatch(self)

    # ------------------------------------------------------------------
    # the wire

    def _service_while(self, condition, timeout: float | None,
                       what: str) -> None:
        """Pump the socket until ``condition()`` goes false.

        The timeout is a *progress* deadline (reset whenever bytes move),
        so a long pipeline drains fully as long as the server keeps
        responding.
        """
        if self._dead:
            raise ConnectionError("pipeline connection lost")
        if not self._active:
            raise ProtocolError(f"pipeline exited with {what} unresolved")
        window = timeout if timeout is not None else self._client._timeout
        deadline = _time.monotonic() + window
        while condition():
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                failure = TimeoutError(
                    f"{what}: no progress within {window:.1f}s")
                self._fail_transport(failure)
                raise failure
            if self._pump(min(remaining, 0.5)):
                deadline = _time.monotonic() + window

    def _pump(self, wait: float) -> bool:
        """One select round; returns True when any bytes moved."""
        if self._dead:
            return False
        sock = self._client._sock
        try:
            readable, writable, __ = select.select(
                [sock], [sock] if self._sendbuf else [], [], wait)
        except (OSError, ValueError) as exc:
            self._fail_transport(exc)
            raise ConnectionError("pipeline connection lost") from exc
        progress = False
        try:
            if writable and self._sendbuf:
                try:
                    sent = sock.send(self._sendbuf)
                except (BlockingIOError, InterruptedError):
                    sent = 0
                if sent:
                    del self._sendbuf[:sent]
                    progress = True
            if readable:
                try:
                    data = sock.recv(65536)
                except (BlockingIOError, InterruptedError):
                    data = None
                if data is not None:
                    if not data:
                        raise ConnectionError(
                            "server closed the connection")
                    progress = True
                    for message in self._decoder.feed(data):
                        self._dispatch(message)
        except (ConnectionError, TimeoutError, OSError, ChecksumError,
                StorageError, ProtocolError) as exc:
            self._fail_transport(exc)
            raise ConnectionError(
                "pipeline connection lost") from exc
        return progress

    def _dispatch(self, message: object) -> None:
        if not isinstance(message, dict):
            raise ProtocolError(f"malformed response {message!r}")
        if "push" in message:
            # Change-feed frames interleave freely with pipelined
            # responses; they are id-less and route by subscription.
            self._client._route_push(message)
            return
        future = self._futures.pop(message.get("id"), None)
        if future is None:
            raise ProtocolError(
                f"response to unknown request {message.get('id')!r}")
        future._complete(message)

    def _fail_transport(self, cause: BaseException) -> None:
        """The stream is unusable: abandon everything, drop the socket."""
        if self._dead:
            return
        self._dead = True
        futures, self._futures = list(self._futures.values()), {}
        self._sendbuf.clear()
        for future in futures:
            future._abandon(cause)
        self._client._teardown_locked()


class PipelineBatch(RemoteBatch):
    """A batch whose flush is one pipelined ``call_batch`` frame.

    Composes the two amortizations: the batch collapses N operations
    into one frame, the pipeline lets that frame fly without waiting
    for it.  ``flush()`` (or the ``with`` exit) returns immediately;
    each :class:`BatchFuture` resolves when the pipeline services the
    ``call_batch`` reply — call ``result()`` after the pipeline block,
    or on the returned pipeline future to force it early.
    """

    def __init__(self, pipeline: RemotePipeline):
        super().__init__(pipeline._client)
        self._pipeline = pipeline

    def flush(self) -> PipelineFuture | None:
        if not self._queue:
            return None
        queued, self._queue = self._queue, []
        calls = [[operation.name, wire_params]
                 for operation, wire_params, __ in queued]

        def decode(entries):
            if not isinstance(entries, (list, tuple)) \
                    or len(entries) != len(queued):
                raise ProtocolError(
                    "call_batch returned a malformed result list")
            for (operation, __, batch_future), entry in zip(queued, entries):
                ok, payload = entry
                if ok:
                    batch_future._resolve(
                        operation.result.from_wire(payload))
                else:
                    batch_future._fail(payload)
            return [future for __, __, future in queued]

        inner = self._pipeline._issue("call_batch", {"calls": calls}, decode)

        def on_done(future: PipelineFuture) -> None:
            # Error and abandonment also fan out to the entry futures,
            # so no BatchFuture is ever left claiming "not flushed yet".
            if future._state == "error":
                for __, __, batch_future in queued:
                    if not batch_future.done():
                        batch_future._fail(future._error)
            elif future._state == "abandoned":
                for __, __, batch_future in queued:
                    if not batch_future.done():
                        batch_future._fail({
                            "type": "ConnectionError",
                            "message": "pipeline connection lost before "
                                       "the batch reply arrived"})

        inner._on_done = on_done
        return inner


def _install_stubs() -> None:
    """Generate every operation stub from the registry.

    :class:`RemoteHAM` gets RPC stubs (properties for the property-kind
    operations); :class:`RemoteBatch` gets queueing stubs for everything
    a batch may carry.  Session-kind operations (ping/begin/commit/
    abort) keep their hand-written client surface above, since they
    manage client-side handles rather than marshal values.
    """
    for operation in REGISTRY:
        if operation.kind == "session":
            continue
        if operation.kind == "ham_property":
            stub = make_client_stub(operation, RemoteHAM._invoke)
            setattr(RemoteHAM, operation.name,
                    property(stub, doc=operation.doc))
            continue
        setattr(RemoteHAM, operation.name,
                make_client_stub(operation, RemoteHAM._invoke))
        setattr(RemoteBatch, operation.name,
                make_client_stub(operation, RemoteBatch._enqueue))
        setattr(RemotePipeline, operation.name,
                make_client_stub(operation, RemotePipeline._enqueue))


_install_stubs()
