"""RemoteHAM: the HAM API executed on a central server.

A :class:`RemoteHAM` mirrors every operation of
:class:`repro.core.ham.HAM`, marshalling arguments over the wire protocol
and re-raising server-side errors as matching local exception types when
one exists (otherwise :class:`repro.errors.RemoteError`).

Transactions are mirrored by :class:`RemoteTransaction`: ``begin`` opens
one on the server, ``commit``/``abort`` finish it, and the server aborts
anything left open if the connection dies.
"""

from __future__ import annotations

import itertools
import socket
import threading

from repro import errors
from repro.core.demons import EventKind
from repro.core.types import (
    CURRENT,
    AttributeIndex,
    LinkIndex,
    LinkPt,
    NodeIndex,
    Protections,
    Time,
    Version,
)
from repro.errors import ProtocolError, RemoteError
from repro.query.graph_query import QueryResult
from repro.query.traversal import TraversalResult
from repro.server.protocol import read_message, write_message
from repro.storage.deltas import decode_script

__all__ = ["RemoteHAM", "RemoteTransaction"]


def _raise_remote(error: dict) -> None:
    remote_type = error.get("type", "NeptuneError")
    message = error.get("message", "")
    local_type = getattr(errors, remote_type, None)
    if (isinstance(local_type, type)
            and issubclass(local_type, Exception)
            and local_type is not RemoteError):
        raise local_type(message)
    raise RemoteError(remote_type, message)


class RemoteTransaction:
    """Client-side handle on a transaction open at the server."""

    def __init__(self, client: "RemoteHAM", txn_id: int):
        self.txn_id = txn_id
        self._client = client
        self.finished = False

    def commit(self) -> None:
        """Commit on the server (durable when the call returns)."""
        self._client._call("commit", txn=self.txn_id)
        self.finished = True

    def abort(self) -> None:
        """Abort on the server."""
        self._client._call("abort", txn=self.txn_id)
        self.finished = True

    def __enter__(self) -> "RemoteTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.finished:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()


def _txn_id(txn: RemoteTransaction | None) -> int | None:
    return txn.txn_id if txn is not None else None


class RemoteHAM:
    """Connects to a :class:`repro.server.server.HAMServer`.

    Thread-safe for sequential calls (one in flight at a time per client;
    open one client per worker thread for parallel load, as the
    benchmark harness does).
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False

    def close(self) -> None:
        """Close the connection (server aborts any open transactions)."""
        with self._lock:
            if not self._closed:
                try:
                    self._sock.close()
                finally:
                    self._closed = True

    def __enter__(self) -> "RemoteHAM":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def _call(self, method: str, **params):
        with self._lock:
            request_id = next(self._ids)
            write_message(self._sock, {
                "id": request_id, "method": method, "params": params})
            response = read_message(self._sock)
        if not isinstance(response, dict):
            raise ProtocolError("malformed response from server")
        if response.get("id") != request_id:
            raise ProtocolError(
                f"response id {response.get('id')} does not match request "
                f"{request_id}")
        if response.get("ok"):
            return response.get("result")
        _raise_remote(response.get("error") or {})

    # ------------------------------------------------------------------
    # sessions / transactions

    def ping(self) -> bool:
        """Round-trip liveness check."""
        return self._call("ping") == "pong"

    # ------------------------------------------------------------------
    # multi-graph host methods (servers started with a GraphHost)

    def host_create_graph(self, name: str) -> tuple[int, Time]:
        """Create a graph on the host; returns (ProjectId, Time)."""
        project_id, time = self._call("host_create_graph", name=name)
        return project_id, time

    def host_open_graph(self, project_id: int, name: str) -> int:
        """Bind this session to a hosted graph (aborts any open txns)."""
        return self._call("host_open_graph", project_id=project_id,
                          name=name)

    def host_list_graphs(self) -> list[str]:
        """Names of the graphs the host serves."""
        return self._call("host_list_graphs")

    def host_destroy_graph(self, project_id: int, name: str) -> None:
        """Destroy a hosted graph."""
        self._call("host_destroy_graph", project_id=project_id, name=name)

    def begin(self, read_only: bool = False) -> RemoteTransaction:
        """Open a transaction on the server."""
        return RemoteTransaction(
            self, self._call("begin", read_only=read_only))

    transaction = begin

    @property
    def project_id(self) -> int:
        """The served graph's ProjectId."""
        return self._call("project_id")

    @property
    def now(self) -> Time:
        """The served graph's current logical time."""
        return self._call("now")

    def checkpoint(self) -> None:
        """Ask the server to snapshot and truncate its log."""
        self._call("checkpoint")

    # ------------------------------------------------------------------
    # node / link lifecycle

    def add_node(self, txn: RemoteTransaction | None = None,
                 keep_history: bool = True) -> tuple[NodeIndex, Time]:
        """``addNode`` on the server."""
        index, time = self._call("add_node", txn=_txn_id(txn),
                                 keep_history=keep_history)
        return index, time

    def delete_node(self, txn: RemoteTransaction | None = None, *,
                    node: NodeIndex) -> None:
        """``deleteNode`` on the server."""
        self._call("delete_node", txn=_txn_id(txn), node=node)

    def add_link(self, txn: RemoteTransaction | None = None, *,
                 from_pt: LinkPt, to_pt: LinkPt) -> tuple[LinkIndex, Time]:
        """``addLink`` on the server."""
        index, time = self._call(
            "add_link", txn=_txn_id(txn),
            from_pt=from_pt.to_record(), to_pt=to_pt.to_record())
        return index, time

    def copy_link(self, txn: RemoteTransaction | None = None, *,
                  link: LinkIndex, time: Time = CURRENT,
                  keep_source: bool = True,
                  other_pt: LinkPt) -> tuple[LinkIndex, Time]:
        """``copyLink`` on the server."""
        index, new_time = self._call(
            "copy_link", txn=_txn_id(txn), link=link, time=time,
            keep_source=keep_source, other_pt=other_pt.to_record())
        return index, new_time

    def delete_link(self, txn: RemoteTransaction | None = None, *,
                    link: LinkIndex) -> None:
        """``deleteLink`` on the server."""
        self._call("delete_link", txn=_txn_id(txn), link=link)

    # ------------------------------------------------------------------
    # node operations

    def open_node(self, node: NodeIndex, time: Time = CURRENT,
                  attributes=(), txn: RemoteTransaction | None = None):
        """``openNode`` on the server."""
        contents, link_points, values, current = self._call(
            "open_node", txn=_txn_id(txn), node=node, time=time,
            attributes=list(attributes))
        decoded = [(index, end, LinkPt.from_record(record))
                   for index, end, record in link_points]
        return contents, decoded, values, current

    def modify_node(self, txn: RemoteTransaction | None = None, *,
                    node: NodeIndex, expected_time: Time, contents: bytes,
                    attachments=None, explanation: str = "") -> Time:
        """``modifyNode`` on the server."""
        wire_attachments = None
        if attachments is not None:
            wire_attachments = [list(entry) for entry in attachments]
        return self._call(
            "modify_node", txn=_txn_id(txn), node=node,
            expected_time=expected_time, contents=bytes(contents),
            attachments=wire_attachments, explanation=explanation)

    def get_node_timestamp(self, node: NodeIndex) -> Time:
        """``getNodeTimeStamp`` on the server."""
        return self._call("get_node_timestamp", node=node)

    def change_node_protection(self, txn: RemoteTransaction | None = None,
                               *, node: NodeIndex,
                               protections: Protections) -> None:
        """``changeNodeProtection`` on the server."""
        self._call("change_node_protection", txn=_txn_id(txn), node=node,
                   protections=protections.value)

    def get_node_versions(self, node: NodeIndex):
        """``getNodeVersions`` on the server."""
        major, minor = self._call("get_node_versions", node=node)
        return ([Version.from_record(record) for record in major],
                [Version.from_record(record) for record in minor])

    def get_node_differences(self, node: NodeIndex, time1: Time,
                             time2: Time):
        """``getNodeDifferences`` on the server."""
        return decode_script(self._call(
            "get_node_differences", node=node, time1=time1, time2=time2))

    def get_to_node(self, link: LinkIndex, time: Time = CURRENT):
        """``getToNode`` on the server."""
        node, node_time = self._call("get_to_node", link=link, time=time)
        return node, node_time

    def get_from_node(self, link: LinkIndex, time: Time = CURRENT):
        """``getFromNode`` on the server."""
        node, node_time = self._call("get_from_node", link=link, time=time)
        return node, node_time

    # ------------------------------------------------------------------
    # attributes

    def get_attributes(self, time: Time = CURRENT):
        """``getAttributes`` on the server."""
        return [tuple(pair)
                for pair in self._call("get_attributes", time=time)]

    def get_attribute_index(self, name: str,
                            txn: RemoteTransaction | None = None,
                            ) -> AttributeIndex:
        """``getAttributeIndex`` on the server."""
        return self._call("get_attribute_index", txn=_txn_id(txn),
                          name=name)

    def get_attribute_values(self, attribute: AttributeIndex,
                             time: Time = CURRENT) -> list[str]:
        """``getAttributeValues`` on the server."""
        return self._call("get_attribute_values", attribute=attribute,
                          time=time)

    def set_node_attribute_value(self, txn: RemoteTransaction | None = None,
                                 *, node: NodeIndex,
                                 attribute: AttributeIndex,
                                 value: str) -> None:
        """``setNodeAttributeValue`` on the server."""
        self._call("set_node_attribute_value", txn=_txn_id(txn), node=node,
                   attribute=attribute, value=value)

    def delete_node_attribute(self, txn: RemoteTransaction | None = None,
                              *, node: NodeIndex,
                              attribute: AttributeIndex) -> None:
        """``deleteNodeAttribute`` on the server."""
        self._call("delete_node_attribute", txn=_txn_id(txn), node=node,
                   attribute=attribute)

    def get_node_attribute_value(self, node: NodeIndex,
                                 attribute: AttributeIndex,
                                 time: Time = CURRENT) -> str:
        """``getNodeAttributeValue`` on the server."""
        return self._call("get_node_attribute_value", node=node,
                          attribute=attribute, time=time)

    def get_node_attributes(self, node: NodeIndex, time: Time = CURRENT):
        """``getNodeAttributes`` on the server."""
        return [tuple(entry) for entry in self._call(
            "get_node_attributes", node=node, time=time)]

    def set_link_attribute_value(self, txn: RemoteTransaction | None = None,
                                 *, link: LinkIndex,
                                 attribute: AttributeIndex,
                                 value: str) -> None:
        """``setLinkAttributeValue`` on the server."""
        self._call("set_link_attribute_value", txn=_txn_id(txn), link=link,
                   attribute=attribute, value=value)

    def delete_link_attribute(self, txn: RemoteTransaction | None = None,
                              *, link: LinkIndex,
                              attribute: AttributeIndex) -> None:
        """``deleteLinkAttribute`` on the server."""
        self._call("delete_link_attribute", txn=_txn_id(txn), link=link,
                   attribute=attribute)

    def get_link_attribute_value(self, link: LinkIndex,
                                 attribute: AttributeIndex,
                                 time: Time = CURRENT) -> str:
        """``getLinkAttributeValue`` on the server."""
        return self._call("get_link_attribute_value", link=link,
                          attribute=attribute, time=time)

    def get_link_attributes(self, link: LinkIndex, time: Time = CURRENT):
        """``getLinkAttributes`` on the server."""
        return [tuple(entry) for entry in self._call(
            "get_link_attributes", link=link, time=time)]

    # ------------------------------------------------------------------
    # demons

    def set_graph_demon_value(self, txn: RemoteTransaction | None = None,
                              *, event: EventKind,
                              demon: str | None) -> None:
        """``setGraphDemonValue`` on the server (demons run server-side)."""
        self._call("set_graph_demon_value", txn=_txn_id(txn),
                   event=event.value, demon=demon)

    def get_graph_demons(self, time: Time = CURRENT):
        """``getGraphDemons`` on the server."""
        return [(EventKind(event), name) for event, name in self._call(
            "get_graph_demons", time=time)]

    def set_node_demon(self, txn: RemoteTransaction | None = None, *,
                       node: NodeIndex, event: EventKind,
                       demon: str | None) -> None:
        """``setNodeDemon`` on the server."""
        self._call("set_node_demon", txn=_txn_id(txn), node=node,
                   event=event.value, demon=demon)

    def get_node_demons(self, node: NodeIndex, time: Time = CURRENT):
        """``getNodeDemons`` on the server."""
        return [(EventKind(event), name) for event, name in self._call(
            "get_node_demons", node=node, time=time)]

    # ------------------------------------------------------------------
    # queries

    def linearize_graph(self, start: NodeIndex, time: Time = CURRENT,
                        node_predicate: str | None = None,
                        link_predicate: str | None = None,
                        node_attributes=(), link_attributes=(),
                        txn: RemoteTransaction | None = None,
                        ) -> TraversalResult:
        """``linearizeGraph`` on the server."""
        nodes, links = self._call(
            "linearize_graph", txn=_txn_id(txn), start=start, time=time,
            node_predicate=node_predicate, link_predicate=link_predicate,
            node_attributes=list(node_attributes),
            link_attributes=list(link_attributes))
        return TraversalResult(
            tuple((index, tuple(values)) for index, values in nodes),
            tuple((index, tuple(values)) for index, values in links))

    def get_graph_query(self, time: Time = CURRENT,
                        node_predicate: str | None = None,
                        link_predicate: str | None = None,
                        node_attributes=(), link_attributes=(),
                        txn: RemoteTransaction | None = None) -> QueryResult:
        """``getGraphQuery`` on the server."""
        nodes, links = self._call(
            "get_graph_query", txn=_txn_id(txn), time=time,
            node_predicate=node_predicate, link_predicate=link_predicate,
            node_attributes=list(node_attributes),
            link_attributes=list(link_attributes))
        return QueryResult(
            tuple((index, tuple(values)) for index, values in nodes),
            tuple((index, tuple(values)) for index, values in links))
