"""RemoteHAM: the HAM API executed on a central server.

A :class:`RemoteHAM` mirrors every operation of
:class:`repro.core.ham.HAM`.  The operation stubs are *generated* from
:data:`repro.core.operations.REGISTRY` — each stub binds its declared
signature, applies the declared argument codecs, performs one RPC, and
decodes the result with the declared result codec; there is no
hand-written marshalling code per operation.  Server-side errors
re-raise as matching local exception types when one exists (otherwise
:class:`repro.errors.RemoteError`).

Transactions are mirrored by :class:`RemoteTransaction`: ``begin`` opens
one on the server, ``commit``/``abort`` finish it, and the server aborts
anything left open if the connection dies.

Batching: ``with client.batch() as b:`` queues operations client-side
(each call returns a :class:`BatchFuture`) and flushes them all in one
``call_batch`` round trip on exit — the cure for RPC-per-operation
latency when a workstation replays many independent updates.

Like the local HAM, a client has a ``middleware`` chain
(:class:`repro.core.operations.MiddlewareChain`); add a
:class:`repro.tools.metrics.OperationMetrics` to observe per-operation
counts and latency of the RPC session.

Resilience: every call runs under a :class:`RetryPolicy`.  When the
connection dies the client tears the socket down and — for *idempotent*
operations (reads, ``ping``, ``begin``; see
:attr:`repro.core.operations.Operation.idempotent`) — transparently
reconnects with jittered capped exponential backoff and re-issues the
request.  A non-idempotent request whose frame was already handed to the
transport instead surfaces :class:`repro.errors.RetryableError`: the
server may or may not have executed it, and silently re-sending could
apply a mutation twice.  Reconnects re-run the protocol handshake and
re-bind the session to the last ``host_open_graph`` target, so a
workstation session survives a server restart.  ``reconnects`` and
``retries`` counters (mirrored into
:data:`repro.tools.metrics.RESILIENCE`) expose how bumpy the ride was.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time as _time
from dataclasses import dataclass
from random import Random

from repro import errors
from repro.core.operations import (
    PROTOCOL_VERSION,
    MiddlewareChain,
    Operation,
    REGISTRY,
    make_client_stub,
)
from repro.core.types import Time
from repro.errors import (
    ChecksumError,
    ProtocolError,
    RemoteError,
    RetryableError,
    StorageError,
)
from repro.server.protocol import encode_message, read_message
from repro.tools.metrics import RESILIENCE

__all__ = ["RemoteHAM", "RemoteTransaction", "RemoteBatch", "BatchFuture",
           "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`RemoteHAM` behaves when the connection dies.

    ``max_attempts`` bounds tries per call (first attempt included);
    between attempts the client sleeps ``backoff_base * 2**(n-1)`` capped
    at ``backoff_cap``, stretched by up to ``jitter`` (fraction, seeded
    by ``seed`` for reproducibility).  ``call_deadline`` bounds the whole
    call — connect, retries, and backoff together — independently of the
    per-I/O socket timeout; ``None`` disables it.
    """

    max_attempts: int = 4
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    jitter: float = 0.5
    call_deadline: float | None = 30.0
    seed: int | None = None


class _TransportFailure(Exception):
    """Internal: the connection died during one attempt.

    ``sent`` records whether the full request frame was handed to the
    transport before the failure — the line between "safe to re-issue"
    and "outcome unknown".
    """

    def __init__(self, cause: BaseException, sent: bool):
        super().__init__(str(cause))
        self.cause = cause
        self.sent = sent


def _raise_remote(error: dict) -> None:
    remote_type = error.get("type", "NeptuneError")
    message = error.get("message", "")
    local_type = getattr(errors, remote_type, None)
    if (isinstance(local_type, type)
            and issubclass(local_type, Exception)
            and local_type is not RemoteError):
        raise local_type(message)
    raise RemoteError(remote_type, message)


class RemoteTransaction:
    """Client-side handle on a transaction open at the server."""

    def __init__(self, client: "RemoteHAM", txn_id: int):
        self.txn_id = txn_id
        self._client = client
        self.finished = False

    def commit(self) -> None:
        """Commit on the server (durable when the call returns)."""
        self._client._call("commit", txn=self.txn_id)
        self.finished = True

    def abort(self) -> None:
        """Abort on the server."""
        self._client._call("abort", txn=self.txn_id)
        self.finished = True

    def __enter__(self) -> "RemoteTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.finished:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()


class BatchFuture:
    """The eventual result of one queued batch entry.

    Resolved when the owning :class:`RemoteBatch` flushes; ``result()``
    returns the decoded value or re-raises the entry's server-side
    error, exactly as the unbatched call would have.
    """

    _PENDING = object()

    __slots__ = ("operation", "_value", "_error")

    def __init__(self, operation: Operation):
        self.operation = operation
        self._value = self._PENDING
        self._error: dict | None = None

    def done(self) -> bool:
        return self._value is not self._PENDING or self._error is not None

    def result(self):
        if self._error is not None:
            _raise_remote(self._error)
        if self._value is self._PENDING:
            raise ProtocolError(
                f"{self.operation.name}: batch not flushed yet")
        return self._value

    def _resolve(self, value) -> None:
        self._value = value

    def _fail(self, error: dict) -> None:
        self._error = error


class RemoteBatch:
    """Queues registry operations; one ``call_batch`` flush sends all.

    Exposes the same generated operation stubs as :class:`RemoteHAM`,
    but each call queues the encoded request and returns a
    :class:`BatchFuture` instead of performing a round trip.  Exiting
    the ``with`` block flushes (unless the block raised, in which case
    the queue is discarded).  Entries execute server-side in queue
    order with per-entry error reporting — one failure does not abort
    the rest.
    """

    def __init__(self, client: "RemoteHAM"):
        self._client = client
        self._queue: list[tuple[Operation, dict, BatchFuture]] = []

    def __len__(self) -> int:
        return len(self._queue)

    def _enqueue(self, operation: Operation, wire_params: dict,
                 ) -> BatchFuture:
        future = BatchFuture(operation)
        self._queue.append((operation, wire_params, future))
        return future

    def flush(self) -> list[BatchFuture]:
        """Send every queued call in one round trip; resolve futures."""
        if not self._queue:
            return []
        queued, self._queue = self._queue, []
        calls = [[operation.name, wire_params]
                 for operation, wire_params, __ in queued]
        chain = self._client.middleware
        if not chain:
            entries = self._client._call("call_batch", calls=calls)
        else:
            entries = chain.run(
                "call_batch",
                lambda: self._client._call("call_batch", calls=calls))
        if not isinstance(entries, (list, tuple)) \
                or len(entries) != len(queued):
            raise ProtocolError(
                "call_batch returned a malformed result list")
        futures = []
        for (operation, __, future), entry in zip(queued, entries):
            ok, payload = entry
            if ok:
                future._resolve(operation.result.from_wire(payload))
            else:
                future._fail(payload)
            futures.append(future)
        return futures

    def __enter__(self) -> "RemoteBatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()
        else:
            self._queue.clear()


def _txn_id(txn: RemoteTransaction | None) -> int | None:
    return txn.txn_id if txn is not None else None


class RemoteHAM:
    """Connects to a :class:`repro.server.server.HAMServer`.

    Thread-safe for sequential calls (one in flight at a time per client;
    open one client per worker thread for parallel load, as the
    benchmark harness does).

    On connect the client performs a protocol handshake (``ping``) and
    raises :class:`repro.errors.ProtocolError` if the server speaks a
    different protocol version — pass ``handshake=False`` to skip.

    ``retry`` (a :class:`RetryPolicy`) governs reconnection and
    re-issue when the connection dies mid-session; see the module
    docstring for the idempotency rules.  Construction itself never
    retries — a server that is down at connect time fails fast.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 handshake: bool = True, retry: RetryPolicy | None = None):
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._rng = Random(self.retry.seed)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        self._sock: socket.socket | None = None
        #: The (project_id, name) of the last successful host_open_graph,
        #: replayed after a reconnect so the session stays bound.
        self._rebind: tuple[int, str] | None = None
        self._handshake_enabled = handshake
        #: How many times the connection was re-established / a request
        #: re-issued over this client's lifetime.
        self.reconnects = 0
        self.retries = 0
        #: Interceptors around every RPC operation (counts, latency,
        #: tracing); empty by default — the no-middleware fast path.
        self.middleware = MiddlewareChain()
        #: The server's ping reply ({"protocol": N, ...}) once known.
        self.server_info: dict | None = None
        with self._lock:
            self._connect_locked()

    def close(self) -> None:
        """Close the connection (server aborts any open transactions)."""
        with self._lock:
            self._closed = True
            self._teardown_locked()

    def __enter__(self) -> "RemoteHAM":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # connection lifecycle (self._lock held)

    def _teardown_locked(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _connect_locked(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout)
        try:
            if self._handshake_enabled:
                self._handshake_locked()
            if self._rebind is not None:
                project_id, name = self._rebind
                self._transact_locked("host_open_graph",
                                      {"project_id": project_id,
                                       "name": name})
        except _TransportFailure as failure:
            # A handshake failure is a *connect* failure from the outer
            # call's point of view — its own request was never sent.
            self._teardown_locked()
            raise failure.cause
        except BaseException:
            self._teardown_locked()
            raise

    def _handshake_locked(self) -> dict:
        reply = self._transact_locked("ping", {})
        info = self._validate_ping(reply)
        self.server_info = info
        return info

    @staticmethod
    def _validate_ping(reply) -> dict:
        if isinstance(reply, dict) and "protocol" in reply:
            remote, info = reply["protocol"], reply
        elif reply == "pong":  # the pre-registry protocol
            remote, info = 1, {"protocol": 1}
        else:
            raise ProtocolError(f"malformed ping reply {reply!r}")
        if remote != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: this client speaks version "
                f"{PROTOCOL_VERSION}, the server speaks version {remote}; "
                f"upgrade the older side before connecting")
        return info

    # ------------------------------------------------------------------
    # the wire (self._lock held)

    def _transact_locked(self, method: str, params: dict,
                         deadline: float | None = None):
        """One request/response exchange on the current socket.

        Tears the connection down and raises :class:`_TransportFailure`
        on any stream-level trouble; semantic (server-reported) errors
        re-raise as local exception types and leave the stream healthy.
        """
        timeout = self._timeout
        if deadline is not None:
            remaining = deadline - _time.monotonic()
            if remaining <= 0:
                raise _TransportFailure(
                    TimeoutError(f"{method}: call deadline exceeded"),
                    sent=False)
            timeout = min(timeout, remaining)
        request_id = next(self._ids)
        frame = encode_message({
            "id": request_id, "method": method, "params": params})
        sent = False
        try:
            self._sock.settimeout(timeout)
            self._sock.sendall(frame)
            # The full frame reached the transport: the server may
            # execute the request even if we never see the reply.
            sent = True
            response = read_message(self._sock)
        except (ConnectionError, TimeoutError, OSError,
                ChecksumError, StorageError, ProtocolError) as exc:
            self._teardown_locked()
            raise _TransportFailure(exc, sent) from exc
        if not isinstance(response, dict) \
                or response.get("id") != request_id:
            self._teardown_locked()
            raise _TransportFailure(ProtocolError(
                f"{method}: response does not match request "
                f"{request_id} (got {response!r})"), sent=True)
        if response.get("ok"):
            return response.get("result")
        _raise_remote(response.get("error") or {})

    def _call(self, method: str, _idempotent: bool = False, **params):
        policy = self.retry
        with self._lock:
            if self._closed:
                raise ConnectionError("client is closed")
            deadline = None
            if policy.call_deadline is not None:
                deadline = _time.monotonic() + policy.call_deadline
            attempt = 0
            while True:
                attempt += 1
                try:
                    if self._sock is None:
                        self._connect_locked()
                        self.reconnects += 1
                        RESILIENCE.increment("reconnects")
                    return self._transact_locked(method, params, deadline)
                except _TransportFailure as failure:
                    cause, sent = failure.cause, failure.sent
                except (ConnectionError, TimeoutError, OSError) as exc:
                    cause, sent = exc, False  # connect-time failure
                if sent and not _idempotent:
                    raise RetryableError(
                        f"{method}: connection lost after the request was "
                        f"sent; the server may have executed it"
                    ) from cause
                out_of_time = (deadline is not None
                               and _time.monotonic() >= deadline)
                if attempt >= policy.max_attempts or out_of_time:
                    raise cause
                self.retries += 1
                RESILIENCE.increment("retries")
                delay = min(policy.backoff_cap,
                            policy.backoff_base * 2 ** (attempt - 1))
                delay *= 1 + policy.jitter * self._rng.random()
                _time.sleep(delay)

    def _invoke(self, operation: Operation, wire_params: dict):
        """One registry operation: RPC + result decode, via middleware."""
        # Transaction-scoped calls never auto-retry: the server-side
        # transaction died with the old connection, so re-issuing under
        # its id can only confuse matters.
        idempotent = (operation.idempotent
                      and wire_params.get("txn") is None)
        chain = self.middleware
        if not chain:
            return operation.result.from_wire(
                self._call(operation.name, _idempotent=idempotent,
                           **wire_params))
        return chain.run(
            operation.name,
            lambda: operation.result.from_wire(
                self._call(operation.name, _idempotent=idempotent,
                           **wire_params)))

    # ------------------------------------------------------------------
    # sessions / transactions

    def ping(self) -> bool:
        """Round-trip liveness check (re-runs the protocol handshake)."""
        reply = self._call("ping", _idempotent=True)
        self.server_info = self._validate_ping(reply)
        return True

    def begin(self, read_only: bool = False) -> RemoteTransaction:
        """Open a transaction on the server.

        Safe to auto-retry: if the first attempt's reply was lost, the
        orphaned server-side transaction dies with its session.
        """
        return RemoteTransaction(
            self, self._call("begin", _idempotent=True,
                             read_only=read_only))

    transaction = begin

    def batch(self) -> RemoteBatch:
        """Queue operations and flush them in one round trip.

        ::

            with client.batch() as b:
                first = b.add_node()
                b.set_node_attribute_value(node=n, attribute=a, value="v")
            index, time = first.result()
        """
        return RemoteBatch(self)

    # ------------------------------------------------------------------
    # multi-graph host methods (servers started with a GraphHost)

    def host_create_graph(self, name: str) -> tuple[int, Time]:
        """Create a graph on the host; returns (ProjectId, Time)."""
        project_id, time = self._call("host_create_graph", name=name)
        return project_id, time

    def host_open_graph(self, project_id: int, name: str) -> int:
        """Bind this session to a hosted graph (aborts any open txns).

        Idempotent (re-binding is a no-op server-side); remembered and
        replayed after every reconnect.
        """
        result = self._call("host_open_graph", _idempotent=True,
                            project_id=project_id, name=name)
        self._rebind = (project_id, name)
        return result

    def host_list_graphs(self) -> list[str]:
        """Names of the graphs the host serves."""
        return self._call("host_list_graphs", _idempotent=True)

    def host_destroy_graph(self, project_id: int, name: str) -> None:
        """Destroy a hosted graph."""
        self._call("host_destroy_graph", project_id=project_id, name=name)


def _install_stubs() -> None:
    """Generate every operation stub from the registry.

    :class:`RemoteHAM` gets RPC stubs (properties for the property-kind
    operations); :class:`RemoteBatch` gets queueing stubs for everything
    a batch may carry.  Session-kind operations (ping/begin/commit/
    abort) keep their hand-written client surface above, since they
    manage client-side handles rather than marshal values.
    """
    for operation in REGISTRY:
        if operation.kind == "session":
            continue
        if operation.kind == "ham_property":
            stub = make_client_stub(operation, RemoteHAM._invoke)
            setattr(RemoteHAM, operation.name,
                    property(stub, doc=operation.doc))
            continue
        setattr(RemoteHAM, operation.name,
                make_client_stub(operation, RemoteHAM._invoke))
        setattr(RemoteBatch, operation.name,
                make_client_stub(operation, RemoteBatch._enqueue))


_install_stubs()
