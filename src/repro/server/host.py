"""A graph host: one server process serving many graphs.

The paper's server story (§2.2) is a *central server* fronting the
hyperdocuments of a whole organization: "the hyperdocument itself can be
distributed over multiple, networked machines."  A :class:`GraphHost`
is one such machine's share: it owns a root directory of graphs, opens
them on demand (with crash recovery), caches the open HAMs, and lets
workstation sessions create, list, and bind to graphs over the same wire
protocol (see :class:`repro.server.server.HAMServer` with
``host=GraphHost(...)``).

Multiple hosts = the distributed picture: each graph lives on exactly
one host; clients connect to the host that owns the graph they need
(locating graphs across hosts is a directory-service concern the paper
leaves open, and so do we).
"""

from __future__ import annotations

import os
import threading

from repro.core.demons import DemonRegistry
from repro.core.ham import HAM
from repro.core.types import ProjectId, Time
from repro.errors import GraphNotFoundError

__all__ = ["GraphHost"]


class GraphHost:
    """Owns a directory of graphs; opens and caches HAMs on demand."""

    def __init__(self, root: str | os.PathLike,
                 demons: DemonRegistry | None = None,
                 synchronous: bool = True,
                 lock_timeout: float = 10.0,
                 group_commit_window: float = 0.0,
                 cache_bytes: int | None = None):
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.demons = demons if demons is not None else DemonRegistry()
        self._synchronous = synchronous
        self._lock_timeout = lock_timeout
        self._group_commit_window = group_commit_window
        self._cache_bytes = cache_bytes
        self._lock = threading.Lock()
        self._open: dict[str, HAM] = {}

    # ------------------------------------------------------------------

    def _directory(self, name: str) -> str:
        if not name or "/" in name or name.startswith("."):
            raise GraphNotFoundError(f"invalid graph name {name!r}")
        return os.path.join(self.root, name)

    def create_graph(self, name: str) -> tuple[ProjectId, Time]:
        """Create a new graph under the host root; returns its ids."""
        return HAM.create_graph(self._directory(name))

    def open_graph(self, project_id: ProjectId, name: str) -> HAM:
        """Open (or return the cached) HAM for ``name``.

        All sessions binding the same graph share one HAM instance, so
        they share its lock table — which is what gives multi-user
        isolation on the host.
        """
        with self._lock:
            ham = self._open.get(name)
            if ham is not None:
                if ham.project_id != project_id:
                    raise GraphNotFoundError(
                        f"graph {name!r}: ProjectId does not match")
                return ham
            ham = HAM.open_graph(
                project_id, self._directory(name),
                demons=self.demons,
                synchronous=self._synchronous,
                lock_timeout=self._lock_timeout,
                group_commit_window=self._group_commit_window,
                cache_bytes=self._cache_bytes)
            self._open[name] = ham
            return ham

    def list_graphs(self) -> list[str]:
        """Names of every graph directory under the root."""
        names = []
        for entry in sorted(os.listdir(self.root)):
            meta = os.path.join(self.root, entry, "neptune.meta")
            if os.path.exists(meta):
                names.append(entry)
        return names

    def destroy_graph(self, project_id: ProjectId, name: str) -> None:
        """Close (if open) and destroy a graph."""
        with self._lock:
            ham = self._open.pop(name, None)
        if ham is not None:
            ham.close()
        HAM.destroy_graph(project_id, self._directory(name))

    def close(self) -> None:
        """Checkpoint and close every open graph."""
        with self._lock:
            open_hams = list(self._open.values())
            self._open.clear()
        for ham in open_hams:
            ham.close()

    def serve(self, host_name: str = "127.0.0.1", port: int = 0,
              config=None):
        """Start an :class:`~repro.server.server.HAMServer` on this host.

        Convenience for the common "one host process, one listener"
        deployment::

            with GraphHost(root) as host, host.serve(port=7331) as server:
                ...

        ``config`` is an optional
        :class:`~repro.server.server.ServerConfig` (connection cap,
        worker-pool size, backpressure bounds, idle timeout).
        """
        from repro.server.server import HAMServer  # avoid import cycle
        return HAMServer(host=self, host_name=host_name, port=port,
                         config=config).start()

    def __enter__(self) -> "GraphHost":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
