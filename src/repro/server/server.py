"""The HAM server: one graph, many concurrent workstation sessions.

Thread-per-session TCP server.  Each session owns its open transactions;
if the connection drops (workstation crash, network partition), every
transaction the session left open is aborted — the paper's recovery story
for "a site [that] crashes in the middle of a hypertext transaction".

Every wire method except ``call_batch`` and the multi-graph host calls
is derived from :data:`repro.core.operations.REGISTRY`: argument
decoding, transaction-id resolution, invocation on the bound HAM, and
result encoding all come from the operation table, so adding an
operation there makes it servable with no change here.

Demons run server-side: register implementations in the registry passed
to (or owned by) the wrapped :class:`~repro.core.ham.HAM`.
"""

from __future__ import annotations

import socket
import threading

from repro.core.ham import HAM
from repro.core.operations import build_server_dispatch, release_active
from repro.errors import FaultError, ProtocolError
from repro.server.protocol import encode_message, read_message
from repro.testing import faults
from repro.txn.manager import Transaction

__all__ = ["HAMServer"]

#: Complete registry-derived dispatch table: {method: handler(session,
#: wire_params) -> wire_result}.
_DISPATCH = build_server_dispatch()


def _marshal_error(exc: BaseException) -> dict:
    return {"type": type(exc).__name__, "message": str(exc)}


class _Session:
    """Per-connection state: the bound graph and open transactions."""

    def __init__(self, server: "HAMServer", sock: socket.socket,
                 peer: tuple):
        self.server = server
        self.sock = sock
        self.peer = peer
        self.transactions: dict[int, Transaction] = {}
        #: The graph this session operates on.  Single-graph servers
        #: bind it up front; host servers bind via the open_graph RPC.
        self.bound_ham: HAM | None = server.ham

    # ------------------------------------------------------------------

    def run(self) -> None:
        try:
            while True:
                try:
                    if faults.INJECTOR is not None:
                        faults.fire("server.recv", sock=self.sock)
                    request = read_message(self.sock)
                except FaultError:
                    break  # injected connection fault: drop this client
                except (ConnectionError, OSError):
                    break
                except ProtocolError:
                    # Unframeable stream (bad length prefix/checksum):
                    # resynchronization is impossible, drop the client.
                    break
                response = self._handle(request)
                encoded = encode_message(response)
                try:
                    if faults.INJECTOR is not None:
                        faults.fire("server.send", sock=self.sock,
                                    frame=encoded)
                    self.sock.sendall(encoded)
                except FaultError:
                    break
                except (ConnectionError, OSError):
                    break
        finally:
            # Even when abort_leftovers dies mid-way (e.g. a simulated
            # crash while journaling an ABORT), the socket must close so
            # the client observes the drop.
            try:
                self.abort_leftovers()
            finally:
                self.server._forget_session(self)
                try:
                    self.sock.close()
                except OSError:
                    pass

    def abort_leftovers(self) -> None:
        """Abort transactions left open by a vanished client."""
        for transaction in list(self.transactions.values()):
            release_active(transaction)
        self.transactions.clear()

    # ------------------------------------------------------------------
    # the session surface the registry handlers dispatch against

    @property
    def ham(self) -> HAM:
        if self.bound_ham is None:
            raise ProtocolError(
                "no graph bound to this session; call open_graph first")
        return self.bound_ham

    def resolve_txn(self, txn_id: int | None) -> Transaction | None:
        """Transaction open on this session, or None for single-op."""
        if txn_id is None:
            return None
        try:
            return self.transactions[txn_id]
        except KeyError:
            raise ProtocolError(
                f"transaction {txn_id} is not open on this session"
            ) from None

    def register_txn(self, transaction: Transaction) -> None:
        self.transactions[transaction.txn_id] = transaction

    def release_txn(self, txn_id: int) -> None:
        """Drop a transaction from the table, aborting it if still live."""
        release_active(self.transactions.pop(txn_id, None))

    # ------------------------------------------------------------------
    # request dispatch

    def _handle(self, request: object) -> dict:
        if not isinstance(request, dict) or "method" not in request:
            return {"id": None, "ok": False,
                    "error": {"type": "ProtocolError",
                              "message": "malformed request"}}
        request_id = request.get("id")
        try:
            result = self._execute(request["method"],
                                   request.get("params") or {})
        except Exception as exc:  # marshal any failure back to the client
            return {"id": request_id, "ok": False,
                    "error": _marshal_error(exc)}
        return {"id": request_id, "ok": True, "result": result}

    def _execute(self, method: object, params: object):
        if not isinstance(method, str) or not isinstance(params, dict):
            raise ProtocolError("malformed request")
        if faults.INJECTOR is not None:
            faults.fire("session.dispatch", method=method)
        handler = _DISPATCH.get(method)
        if handler is not None:
            return handler(self, params)
        if method == "call_batch":
            return self._call_batch(params)
        host_handler = self._HOST_METHODS.get(method)
        if host_handler is not None:
            return host_handler(self, **params)
        raise ProtocolError(f"unknown method {method!r}")

    # ------------------------------------------------------------------
    # batched dispatch: many registry operations, one round trip

    def _call_batch(self, params: dict) -> list:
        """Execute ``[[method, params], ...]`` entries in order.

        Each entry reports individually: ``[True, result]`` on success,
        ``[False, {"type", "message"}]`` on failure; a failing entry does
        not stop the ones after it.  Only registry operations may run in
        a batch — nesting ``call_batch`` or rebinding the session via a
        host method mid-batch is rejected per entry.
        """
        calls = params.get("calls")
        if not isinstance(calls, (list, tuple)):
            raise ProtocolError("call_batch requires a list of calls")
        results = []
        for entry in calls:
            try:
                if (not isinstance(entry, (list, tuple))
                        or len(entry) != 2):
                    raise ProtocolError(
                        "each batch entry must be [method, params]")
                name, entry_params = entry
                handler = _DISPATCH.get(name)
                if handler is None:
                    raise ProtocolError(
                        f"operation {name!r} cannot run in a batch")
                if not isinstance(entry_params, dict):
                    raise ProtocolError(
                        f"batch entry {name!r}: params must be a mapping")
                results.append([True, handler(self, entry_params)])
            except Exception as exc:
                results.append([False, _marshal_error(exc)])
        return results

    # ------------------------------------------------------------------
    # host methods (multi-graph servers only) — the one part of the
    # vocabulary that manages graph binding rather than graph contents,
    # so it stays hand-written.

    @property
    def _host(self):
        if self.server.host_registry is None:
            raise ProtocolError("this server hosts a single graph")
        return self.server.host_registry

    def _host_create_graph(self, name: str) -> list:
        return list(self._host.create_graph(name))

    def _host_open_graph(self, project_id: int, name: str) -> int:
        self.abort_leftovers()  # rebinding abandons the old graph's work
        self.bound_ham = self._host.open_graph(project_id, name)
        return self.bound_ham.project_id

    def _host_list_graphs(self) -> list:
        return self._host.list_graphs()

    def _host_destroy_graph(self, project_id: int, name: str) -> None:
        self.abort_leftovers()
        if (self.bound_ham is not None
                and self.bound_ham.project_id == project_id):
            self.bound_ham = None
        self._host.destroy_graph(project_id, name)

    _HOST_METHODS = {
        "host_create_graph": _host_create_graph,
        "host_open_graph": _host_open_graph,
        "host_list_graphs": _host_list_graphs,
        "host_destroy_graph": _host_destroy_graph,
    }


class HAMServer:
    """Serves HAMs over TCP to any number of workstation sessions.

    Two modes:

    - ``HAMServer(ham)`` — one graph, every session bound to it (the
      paper's basic central-server picture);
    - ``HAMServer(host=GraphHost(root))`` — a multi-graph host: sessions
      create/list graphs and bind one via the ``open_graph`` RPC.
    """

    def __init__(self, ham: HAM | None = None, host_name: str = "127.0.0.1",
                 port: int = 0, host=None):
        if (ham is None) == (host is None):
            raise ValueError("give exactly one of ham or host")
        self.ham = ham
        self.host_registry = host
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host_name, port))
        self._listener.listen(64)
        self.bind_host, self.port = self._listener.getsockname()
        self._accept_thread: threading.Thread | None = None
        self._running = False
        self._session_threads: list[threading.Thread] = []
        self._sessions: list[_Session] = []
        self._sessions_lock = threading.Lock()

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) clients should connect to."""
        return self.bind_host, self.port

    def start(self) -> "HAMServer":
        """Start accepting sessions in a background thread."""
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="ham-server-accept", daemon=True)
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                break  # listener closed
            session = _Session(self, sock, peer)
            with self._sessions_lock:
                self._sessions.append(session)
            thread = threading.Thread(
                target=self._run_session, args=(session,),
                name=f"ham-session-{peer[1]}", daemon=True)
            self._session_threads.append(thread)
            thread.start()

    @staticmethod
    def _run_session(session: "_Session") -> None:
        try:
            session.run()
        except faults.SimulatedCrash:
            pass  # simulated process death: the session thread just ends

    def _forget_session(self, session: "_Session") -> None:
        with self._sessions_lock:
            try:
                self._sessions.remove(session)
            except ValueError:
                pass

    def stop(self, disconnect_clients: bool = False) -> None:
        """Stop accepting and close the listener.

        By default live sessions drain on their own.  With
        ``disconnect_clients=True`` every session socket is severed too
        (simulating a server kill) and the session threads are joined —
        their leftover transactions abort before this returns.
        """
        self._running = False
        try:
            # close() alone is not enough: a thread parked inside the
            # accept() syscall keeps the LISTEN socket alive (and the
            # port unbindable) until the call returns.  shutdown() wakes
            # it with an error immediately.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        if not disconnect_clients:
            return
        with self._sessions_lock:
            sessions = list(self._sessions)
        for session in sessions:
            try:
                session.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                session.sock.close()
            except OSError:
                pass
        for thread in self._session_threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "HAMServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
