"""The HAM server: one graph, many concurrent workstation sessions.

Thread-per-session TCP server.  Each session owns its open transactions;
if the connection drops (workstation crash, network partition), every
transaction the session left open is aborted — the paper's recovery story
for "a site [that] crashes in the middle of a hypertext transaction".

Demons run server-side: register implementations in the registry passed
to (or owned by) the wrapped :class:`~repro.core.ham.HAM`.
"""

from __future__ import annotations

import socket
import threading

from repro.core.demons import EventKind
from repro.core.ham import HAM
from repro.core.types import LinkPt, Protections
from repro.errors import NeptuneError, ProtocolError
from repro.server.protocol import read_message, write_message
from repro.storage.deltas import encode_script
from repro.txn.manager import Transaction, TxnStatus

__all__ = ["HAMServer"]


class _Session:
    """Per-connection state: the bound graph and open transactions."""

    def __init__(self, server: "HAMServer", sock: socket.socket,
                 peer: tuple):
        self.server = server
        self.sock = sock
        self.peer = peer
        self.transactions: dict[int, Transaction] = {}
        #: The graph this session operates on.  Single-graph servers
        #: bind it up front; host servers bind via the open_graph RPC.
        self.bound_ham: HAM | None = server.ham

    # ------------------------------------------------------------------

    def run(self) -> None:
        try:
            while True:
                try:
                    request = read_message(self.sock)
                except (ConnectionError, OSError):
                    break
                response = self._handle(request)
                try:
                    write_message(self.sock, response)
                except (ConnectionError, OSError):
                    break
        finally:
            self._abort_leftovers()
            try:
                self.sock.close()
            except OSError:
                pass

    def _abort_leftovers(self) -> None:
        """Abort transactions left open by a vanished client."""
        for txn in list(self.transactions.values()):
            if txn.status is TxnStatus.ACTIVE:
                try:
                    txn.abort()
                except NeptuneError:
                    pass
        self.transactions.clear()

    # ------------------------------------------------------------------

    def _handle(self, request: object) -> dict:
        if not isinstance(request, dict) or "method" not in request:
            return {"id": None, "ok": False,
                    "error": {"type": "ProtocolError",
                              "message": "malformed request"}}
        request_id = request.get("id")
        method = request["method"]
        params = request.get("params") or {}
        handler = getattr(self, f"_op_{method}", None)
        if handler is None:
            return {"id": request_id, "ok": False,
                    "error": {"type": "ProtocolError",
                              "message": f"unknown method {method!r}"}}
        try:
            result = handler(**params)
        except Exception as exc:  # marshal any failure back to the client
            return {"id": request_id, "ok": False,
                    "error": {"type": type(exc).__name__,
                              "message": str(exc)}}
        return {"id": request_id, "ok": True, "result": result}

    # ------------------------------------------------------------------
    # helpers

    @property
    def ham(self) -> HAM:
        if self.bound_ham is None:
            raise ProtocolError(
                "no graph bound to this session; call open_graph first")
        return self.bound_ham

    def _txn(self, txn_id: int | None) -> Transaction | None:
        if txn_id is None:
            return None
        try:
            return self.transactions[txn_id]
        except KeyError:
            raise ProtocolError(
                f"transaction {txn_id} is not open on this session"
            ) from None

    # ------------------------------------------------------------------
    # host methods (multi-graph servers only)

    @property
    def _host(self):
        if self.server.host_registry is None:
            raise ProtocolError("this server hosts a single graph")
        return self.server.host_registry

    def _op_host_create_graph(self, name: str) -> list:
        return list(self._host.create_graph(name))

    def _op_host_open_graph(self, project_id: int, name: str) -> int:
        self._abort_leftovers()  # rebinding abandons the old graph's work
        self.bound_ham = self._host.open_graph(project_id, name)
        return self.bound_ham.project_id

    def _op_host_list_graphs(self) -> list:
        return self._host.list_graphs()

    def _op_host_destroy_graph(self, project_id: int, name: str) -> None:
        self._abort_leftovers()
        if (self.bound_ham is not None
                and self.bound_ham.project_id == project_id):
            self.bound_ham = None
        self._host.destroy_graph(project_id, name)

    # ------------------------------------------------------------------
    # transaction methods

    def _op_ping(self) -> str:
        return "pong"

    def _op_begin(self, read_only: bool = False) -> int:
        txn = self.ham.begin(read_only=read_only)
        self.transactions[txn.txn_id] = txn
        return txn.txn_id

    def _op_commit(self, txn: int) -> None:
        self._txn(txn).commit()
        del self.transactions[txn]

    def _op_abort(self, txn: int) -> None:
        self._txn(txn).abort()
        del self.transactions[txn]

    # ------------------------------------------------------------------
    # graph / node / link methods

    def _op_project_id(self) -> int:
        return self.ham.project_id

    def _op_now(self) -> int:
        return self.ham.now

    def _op_checkpoint(self) -> None:
        self.ham.checkpoint()

    def _op_add_node(self, txn: int | None, keep_history: bool) -> list:
        return list(self.ham.add_node(self._txn(txn),
                                      keep_history=keep_history))

    def _op_delete_node(self, txn: int | None, node: int) -> None:
        self.ham.delete_node(self._txn(txn), node=node)

    def _op_add_link(self, txn: int | None, from_pt: list,
                     to_pt: list) -> list:
        return list(self.ham.add_link(
            self._txn(txn),
            from_pt=LinkPt.from_record(from_pt),
            to_pt=LinkPt.from_record(to_pt)))

    def _op_copy_link(self, txn: int | None, link: int, time: int,
                      keep_source: bool, other_pt: list) -> list:
        return list(self.ham.copy_link(
            self._txn(txn), link=link, time=time, keep_source=keep_source,
            other_pt=LinkPt.from_record(other_pt)))

    def _op_delete_link(self, txn: int | None, link: int) -> None:
        self.ham.delete_link(self._txn(txn), link=link)

    def _op_open_node(self, txn: int | None, node: int, time: int,
                      attributes: list) -> list:
        contents, link_points, values, current = self.ham.open_node(
            node, time, attributes, txn=self._txn(txn))
        return [contents,
                [[index, end, pt.to_record()]
                 for index, end, pt in link_points],
                values, current]

    def _op_modify_node(self, txn: int | None, node: int,
                        expected_time: int, contents: bytes,
                        attachments: list | None,
                        explanation: str) -> int:
        supplied = None
        if attachments is not None:
            supplied = [tuple(entry) for entry in attachments]
        return self.ham.modify_node(
            self._txn(txn), node=node, expected_time=expected_time,
            contents=contents, attachments=supplied,
            explanation=explanation)

    def _op_get_node_timestamp(self, node: int) -> int:
        return self.ham.get_node_timestamp(node)

    def _op_change_node_protection(self, txn: int | None, node: int,
                                   protections: int) -> None:
        self.ham.change_node_protection(
            self._txn(txn), node=node,
            protections=Protections(protections))

    def _op_get_node_versions(self, node: int) -> list:
        major, minor = self.ham.get_node_versions(node)
        return [[v.to_record() for v in major],
                [v.to_record() for v in minor]]

    def _op_get_node_differences(self, node: int, time1: int,
                                 time2: int) -> list:
        return encode_script(
            self.ham.get_node_differences(node, time1, time2))

    def _op_get_to_node(self, link: int, time: int) -> list:
        return list(self.ham.get_to_node(link, time))

    def _op_get_from_node(self, link: int, time: int) -> list:
        return list(self.ham.get_from_node(link, time))

    # ------------------------------------------------------------------
    # attribute methods

    def _op_get_attributes(self, time: int) -> list:
        return [list(pair) for pair in self.ham.get_attributes(time)]

    def _op_get_attribute_index(self, txn: int | None, name: str) -> int:
        return self.ham.get_attribute_index(name, self._txn(txn))

    def _op_get_attribute_values(self, attribute: int, time: int) -> list:
        return self.ham.get_attribute_values(attribute, time)

    def _op_set_node_attribute_value(self, txn: int | None, node: int,
                                     attribute: int, value: str) -> None:
        self.ham.set_node_attribute_value(
            self._txn(txn), node=node, attribute=attribute, value=value)

    def _op_delete_node_attribute(self, txn: int | None, node: int,
                                  attribute: int) -> None:
        self.ham.delete_node_attribute(
            self._txn(txn), node=node, attribute=attribute)

    def _op_get_node_attribute_value(self, node: int, attribute: int,
                                     time: int) -> str:
        return self.ham.get_node_attribute_value(node, attribute, time)

    def _op_get_node_attributes(self, node: int, time: int) -> list:
        return [list(entry)
                for entry in self.ham.get_node_attributes(node, time)]

    def _op_set_link_attribute_value(self, txn: int | None, link: int,
                                     attribute: int, value: str) -> None:
        self.ham.set_link_attribute_value(
            self._txn(txn), link=link, attribute=attribute, value=value)

    def _op_delete_link_attribute(self, txn: int | None, link: int,
                                  attribute: int) -> None:
        self.ham.delete_link_attribute(
            self._txn(txn), link=link, attribute=attribute)

    def _op_get_link_attribute_value(self, link: int, attribute: int,
                                     time: int) -> str:
        return self.ham.get_link_attribute_value(link, attribute, time)

    def _op_get_link_attributes(self, link: int, time: int) -> list:
        return [list(entry)
                for entry in self.ham.get_link_attributes(link, time)]

    # ------------------------------------------------------------------
    # demon methods

    def _op_set_graph_demon_value(self, txn: int | None, event: str,
                                  demon: str | None) -> None:
        self.ham.set_graph_demon_value(
            self._txn(txn), event=EventKind(event), demon=demon)

    def _op_get_graph_demons(self, time: int) -> list:
        return [[event.value, name]
                for event, name in self.ham.get_graph_demons(time)]

    def _op_set_node_demon(self, txn: int | None, node: int, event: str,
                           demon: str | None) -> None:
        self.ham.set_node_demon(
            self._txn(txn), node=node, event=EventKind(event), demon=demon)

    def _op_get_node_demons(self, node: int, time: int) -> list:
        return [[event.value, name]
                for event, name in self.ham.get_node_demons(node, time)]

    # ------------------------------------------------------------------
    # query methods

    def _op_linearize_graph(self, txn: int | None, start: int, time: int,
                            node_predicate: str | None,
                            link_predicate: str | None,
                            node_attributes: list,
                            link_attributes: list) -> list:
        result = self.ham.linearize_graph(
            start, time, node_predicate, link_predicate,
            node_attributes, link_attributes, txn=self._txn(txn))
        return [[[index, list(values)] for index, values in result.nodes],
                [[index, list(values)] for index, values in result.links]]

    def _op_get_graph_query(self, txn: int | None, time: int,
                            node_predicate: str | None,
                            link_predicate: str | None,
                            node_attributes: list,
                            link_attributes: list) -> list:
        result = self.ham.get_graph_query(
            time, node_predicate, link_predicate,
            node_attributes, link_attributes, txn=self._txn(txn))
        return [[[index, list(values)] for index, values in result.nodes],
                [[index, list(values)] for index, values in result.links]]


class HAMServer:
    """Serves HAMs over TCP to any number of workstation sessions.

    Two modes:

    - ``HAMServer(ham)`` — one graph, every session bound to it (the
      paper's basic central-server picture);
    - ``HAMServer(host=GraphHost(root))`` — a multi-graph host: sessions
      create/list graphs and bind one via the ``open_graph`` RPC.
    """

    def __init__(self, ham: HAM | None = None, host_name: str = "127.0.0.1",
                 port: int = 0, host=None):
        if (ham is None) == (host is None):
            raise ValueError("give exactly one of ham or host")
        self.ham = ham
        self.host_registry = host
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host_name, port))
        self._listener.listen(64)
        self.bind_host, self.port = self._listener.getsockname()
        self._accept_thread: threading.Thread | None = None
        self._running = False
        self._session_threads: list[threading.Thread] = []

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) clients should connect to."""
        return self.bind_host, self.port

    def start(self) -> "HAMServer":
        """Start accepting sessions in a background thread."""
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="ham-server-accept", daemon=True)
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                break  # listener closed
            session = _Session(self, sock, peer)
            thread = threading.Thread(
                target=session.run,
                name=f"ham-session-{peer[1]}", daemon=True)
            self._session_threads.append(thread)
            thread.start()

    def stop(self) -> None:
        """Stop accepting and close the listener (sessions drain)."""
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "HAMServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
