"""The HAM server: one graph, many concurrent workstation sessions.

Event-driven TCP server.  One selector thread owns every socket: it
accepts sessions, reads framed requests non-blocking, and writes framed
responses non-blocking.  Decoded requests are handed to a bounded pool
of worker threads, so one slow call (or one slow client) never stalls
the I/O loop or another session.

Sessions may *pipeline*: many requests in flight at once, with responses
matched by request id.  Per session, read-only operations (per the
operation registry's ``read_only`` metadata) run concurrently on MVCC
snapshots; mutations, transaction control, batches, and host methods are
ordered — each runs alone, in arrival order, so a pipelined session
observes exactly the semantics of a serial one.

Connection governance:

- ``max_connections`` — beyond the cap a new session's first request is
  answered with :class:`repro.errors.ServerBusyError` and the connection
  closes (graceful rejection, never a hang);
- ``max_pending`` / ``max_outbuf_bytes`` — a session whose inbound queue
  fills, or whose unread responses pile up (a slow consumer), stops
  being read until it drains (backpressure via the kernel socket
  buffer);
- ``idle_timeout`` — sessions idle past the timeout are closed and their
  leftover transactions aborted.

If the connection drops (workstation crash, network partition), every
transaction the session left open is aborted — the paper's recovery
story for "a site [that] crashes in the middle of a hypertext
transaction".

Every wire method except ``call_batch`` and the multi-graph host calls
is derived from :data:`repro.core.operations.REGISTRY`: argument
decoding, transaction-id resolution, invocation on the bound HAM, and
result encoding all come from the operation table, so adding an
operation there makes it servable with no change here.

Demons run server-side: register implementations in the registry passed
to (or owned by) the wrapped :class:`~repro.core.ham.HAM`.
"""

from __future__ import annotations

import collections
import itertools
import os
import queue
import selectors
import socket
import threading
import time as _time
from dataclasses import dataclass

from repro.core.ham import HAM
from repro.core.operations import (
    build_server_dispatch,
    read_only_methods,
    release_active,
)
from repro.errors import (
    NeptuneError,
    ProtocolError,
    SubscriptionError,
    SubscriptionOverflowError,
)
from repro.server.protocol import FrameDecoder, encode_message
from repro.testing import faults
from repro.tools.metrics import SERVER, SUBSCRIPTIONS
from repro.txn.manager import Transaction

__all__ = ["HAMServer", "ServerConfig"]

#: Complete registry-derived dispatch table: {method: handler(session,
#: wire_params) -> wire_result}.
_DISPATCH = build_server_dispatch()

#: Methods a session may execute concurrently with each other; anything
#: not in this set is a scheduling barrier (runs alone, in order).
_READ_ONLY = read_only_methods()

#: Read-only methods served on a dedicated thread instead of the worker
#: pool: they long-poll (park until new log bytes appear), and a parked
#: call would otherwise occupy a bounded pool worker for its whole wait.
#: A few subscribed replicas plus in-flight semi-sync commit gates could
#: exhaust the pool — starving the very ack fetches the gates wait on.
_DETACHED = frozenset({"repl_subscribe"})

#: Cap on concurrent detached long-poll threads; beyond it the calls
#: fall back to the worker pool rather than spawning without bound.
_MAX_DETACHED = 64

#: Selector-key markers for the non-session registrations.
_LISTENER = object()
_WAKE = object()

#: Gathered writes (one syscall for many queued response frames);
#: absent on some platforms, where the per-frame path is used instead.
_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")


@dataclass(frozen=True)
class ServerConfig:
    """Connection-governance knobs of one :class:`HAMServer`."""

    #: Sessions beyond this cap are rejected with ``ServerBusyError``
    #: (None = unlimited).
    max_connections: int | None = None
    #: Per-session bound on decoded-but-not-yet-scheduled requests;
    #: reading the socket pauses while the queue is full.
    max_pending: int = 64
    #: Per-session bound on buffered response bytes; a consumer that
    #: stops reading its responses stops being read itself.
    max_outbuf_bytes: int = 4 * 1024 * 1024
    #: Worker threads executing requests (the concurrency of the whole
    #: server, all sessions combined).
    workers: int = 8
    #: Close sessions with no traffic and no open work for this many
    #: seconds (None = never).
    idle_timeout: float | None = None
    #: How long a graceful ``stop()`` waits for in-flight requests to
    #: finish and their responses to flush before severing sessions.
    drain_timeout: float = 10.0

    def __post_init__(self):
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")


def _marshal_error(exc: BaseException) -> dict:
    return {"type": type(exc).__name__, "message": str(exc)}


class _Session:
    """Per-connection state: the bound graph, open transactions, and the
    pipelining scheduler's bookkeeping."""

    def __init__(self, server: "HAMServer", sock: socket.socket,
                 peer: tuple, busy: bool = False):
        self.server = server
        self.sock = sock
        self.peer = peer
        self.transactions: dict[int, Transaction] = {}
        #: The graph this session operates on.  Single-graph servers
        #: bind it up front; host servers bind via the open_graph RPC.
        self.bound_ham: HAM | None = server.ham
        #: Over the connection cap: answer everything with ServerBusy.
        self.busy = busy
        #: Change-feed watches this session registered: sub_id -> the
        #: hub that owns it (push frames ride this session's socket).
        self.subscriptions: dict[int, object] = {}

        self.lock = threading.Lock()
        self.decoder = FrameDecoder()
        #: Decoded requests admitted but not yet handed to a worker.
        self.pending: collections.deque = collections.deque()
        self.running_reads = 0
        self.running_mutation = False
        #: Response frames awaiting the socket (I/O thread only).
        self.outbuf: collections.deque = collections.deque()
        self.out_offset = 0
        #: Total buffered response bytes (guarded by ``lock`` so the
        #: scheduler can check backpressure from worker threads).
        self.out_bytes = 0
        self.paused = False
        #: No more requests will be admitted; flush and close.
        self.closing = False
        self.closed = False
        self.cleanup_scheduled = False
        self.last_activity = _time.monotonic()
        # I/O-thread-only selector bookkeeping.
        self.read_registered = False
        self.write_registered = False

    # ------------------------------------------------------------------
    # scheduling helpers (session.lock held by the caller)

    def depth(self) -> int:
        """Requests currently in flight or queued (pipelining depth)."""
        return (len(self.pending) + self.running_reads
                + (1 if self.running_mutation else 0))

    def idle(self) -> bool:
        return (not self.pending and not self.running_reads
                and not self.running_mutation)

    def abort_leftovers(self) -> None:
        """Abort transactions (and detach subscriptions) left behind
        by a vanished client."""
        for transaction in list(self.transactions.values()):
            release_active(transaction)
        self.transactions.clear()
        for sub_id, hub in list(self.subscriptions.items()):
            try:
                hub.unsubscribe(sub_id)
            except Exception:  # pragma: no cover - hub teardown races
                pass
        self.subscriptions.clear()

    # ------------------------------------------------------------------
    # the session surface the registry handlers dispatch against

    @property
    def ham(self) -> HAM:
        if self.bound_ham is None:
            raise ProtocolError(
                "no graph bound to this session; call open_graph first")
        return self.bound_ham

    def resolve_txn(self, txn_id: int | None) -> Transaction | None:
        """Transaction open on this session, or None for single-op."""
        if txn_id is None:
            return None
        try:
            return self.transactions[txn_id]
        except KeyError:
            raise ProtocolError(
                f"transaction {txn_id} is not open on this session"
            ) from None

    def register_txn(self, transaction: Transaction) -> None:
        self.transactions[transaction.txn_id] = transaction

    def release_txn(self, txn_id: int) -> None:
        """Drop a transaction from the table, aborting it if still live."""
        release_active(self.transactions.pop(txn_id, None))

    # ------------------------------------------------------------------
    # change feeds (protocol v7): push frames interleave with responses

    def subscribe_feed(self, events=None, predicate=None,
                       from_lsn=None) -> dict:
        """Register a watch whose events push over this session's socket.

        Delivery runs on committer threads: the closure encodes one
        ``{"push": "events", ...}`` frame and posts it to the I/O
        thread, which interleaves it with ordinary responses through
        the same bounded outbuf.  A frame that would push the outbuf
        past ``max_outbuf_bytes`` raises the typed overflow error
        instead — the hub then cancels the feed (the slow consumer
        loses its subscription, never stalls the commit) and the
        ``fail`` closure best-effort ships one final cancel frame,
        which always queues: the overflow check does not apply to it,
        and a closed session simply drops it.
        """
        ham = self.ham
        hub = ham.subscription_hub()
        compiled = ham.compile_watch_predicate(predicate)

        def deliver(sub, lsn, seq, wire_events) -> None:
            self._push_frame(encode_message({
                "push": "events", "sub": sub.sub_id, "lsn": lsn,
                "seq": seq, "events": wire_events}))

        def fail(sub, reason, dropped, lsn, message) -> None:
            self.subscriptions.pop(sub.sub_id, None)
            self._push_frame(encode_message({
                "push": "cancel", "sub": sub.sub_id, "reason": reason,
                "dropped": dropped, "lsn": lsn, "message": message}),
                unchecked=True)

        sub_id, resync = hub.subscribe(
            deliver, fail, events=events, predicate=compiled,
            from_lsn=from_lsn)
        sub = hub.subscription(sub_id)
        if sub is not None:  # a replay overflow may have cancelled it
            self.subscriptions[sub_id] = hub
        return {"sub": sub_id, "resync": resync,
                "lsn": hub.status()["last_emitted_lsn"]}

    def unsubscribe_feed(self, sub_id: int) -> bool:
        hub = self.subscriptions.pop(sub_id, None)
        if hub is None:
            return False
        return hub.unsubscribe(sub_id)

    def subscription_feed_status(self) -> dict:
        status = self.ham.subscription_status()
        status["session_subscriptions"] = len(self.subscriptions)
        with self.lock:
            status["outbuf_bytes"] = self.out_bytes
        status["counters"] = SUBSCRIPTIONS.snapshot()
        return status

    def _push_frame(self, frame: bytes, unchecked: bool = False) -> None:
        """Queue one unsolicited frame (called from committer threads).

        Raises the typed overflow error when the frame would exceed the
        session's response-byte bound; the projected size is advisory
        (frames already posted but not yet queued by the I/O thread are
        invisible here), which bounds the overshoot at one task batch.
        """
        with self.lock:
            if self.closed or self.closing:
                raise SubscriptionError("session is closing")
            if not unchecked:
                projected = self.out_bytes + len(frame)
                limit = self.server.config.max_outbuf_bytes
                if projected > limit:
                    raise SubscriptionOverflowError(
                        f"subscriber backlog {projected} bytes exceeds "
                        f"max_outbuf_bytes={limit}")
                SUBSCRIPTIONS.record_max("queue_high_water", projected)
        self.server._post(("write", self, [frame]))

    # ------------------------------------------------------------------
    # request dispatch (runs on a worker thread)

    def handle(self, request: object) -> dict:
        if not isinstance(request, dict) or "method" not in request:
            return {"id": None, "ok": False,
                    "error": {"type": "ProtocolError",
                              "message": "malformed request"}}
        request_id = request.get("id")
        method = request["method"]
        # Mutating replies carry the commit LSN *this request* produced
        # so the session's read-your-writes guarantee covers
        # auto-committed operations too (an explicit ``commit`` returns
        # its LSN as the result; everything else would otherwise leave
        # the session watermark behind).  Only the request's own commits
        # count: the graph-wide watermark includes other sessions'
        # commits and would over-advance this session's watermark.
        captor = None
        if (isinstance(method, str) and method not in _READ_ONLY
                and self.bound_ham is not None):
            captor = self.bound_ham._txns
            captor.capture_commits()
        try:
            if faults.INJECTOR is not None:
                faults.fire("server.dispatch", method=method)
            result = self._execute(method, request.get("params") or {})
        except Exception as exc:  # marshal any failure back to the client
            return {"id": request_id, "ok": False,
                    "error": _marshal_error(exc)}
        reply = {"id": request_id, "ok": True, "result": result}
        if captor is not None:
            commit_lsn = captor.captured_commit_lsn()
            if commit_lsn is not None:
                reply["commit_lsn"] = commit_lsn
        return reply

    def _execute(self, method: object, params: object):
        if not isinstance(method, str) or not isinstance(params, dict):
            raise ProtocolError("malformed request")
        if faults.INJECTOR is not None:
            faults.fire("session.dispatch", method=method)
        handler = _DISPATCH.get(method)
        if handler is not None:
            return handler(self, params)
        if method == "call_batch":
            return self._call_batch(params)
        host_handler = self._HOST_METHODS.get(method)
        if host_handler is not None:
            return host_handler(self, **params)
        raise ProtocolError(f"unknown method {method!r}")

    # ------------------------------------------------------------------
    # batched dispatch: many registry operations, one round trip

    def _call_batch(self, params: dict) -> list:
        """Execute ``[[method, params], ...]`` entries in order.

        Each entry reports individually: ``[True, result]`` on success,
        ``[False, {"type", "message"}]`` on failure; a failing entry does
        not stop the ones after it.  Only registry operations may run in
        a batch — nesting ``call_batch`` or rebinding the session via a
        host method mid-batch is rejected per entry.
        """
        calls = params.get("calls")
        if not isinstance(calls, (list, tuple)):
            raise ProtocolError("call_batch requires a list of calls")
        results = []
        for entry in calls:
            try:
                if (not isinstance(entry, (list, tuple))
                        or len(entry) != 2):
                    raise ProtocolError(
                        "each batch entry must be [method, params]")
                name, entry_params = entry
                handler = _DISPATCH.get(name)
                if handler is None:
                    raise ProtocolError(
                        f"operation {name!r} cannot run in a batch")
                if not isinstance(entry_params, dict):
                    raise ProtocolError(
                        f"batch entry {name!r}: params must be a mapping")
                results.append([True, handler(self, entry_params)])
            except Exception as exc:
                results.append([False, _marshal_error(exc)])
        return results

    # ------------------------------------------------------------------
    # host methods (multi-graph servers only) — the one part of the
    # vocabulary that manages graph binding rather than graph contents,
    # so it stays hand-written.

    @property
    def _host(self):
        if self.server.host_registry is None:
            raise ProtocolError("this server hosts a single graph")
        return self.server.host_registry

    def _host_create_graph(self, name: str) -> list:
        return list(self._host.create_graph(name))

    def _host_open_graph(self, project_id: int, name: str) -> int:
        self.abort_leftovers()  # rebinding abandons the old graph's work
        self.bound_ham = self._host.open_graph(project_id, name)
        return self.bound_ham.project_id

    def _host_list_graphs(self) -> list:
        return self._host.list_graphs()

    def _host_destroy_graph(self, project_id: int, name: str) -> None:
        self.abort_leftovers()
        if (self.bound_ham is not None
                and self.bound_ham.project_id == project_id):
            self.bound_ham = None
        self._host.destroy_graph(project_id, name)

    _HOST_METHODS = {
        "host_create_graph": _host_create_graph,
        "host_open_graph": _host_open_graph,
        "host_list_graphs": _host_list_graphs,
        "host_destroy_graph": _host_destroy_graph,
    }


class HAMServer:
    """Serves HAMs over TCP to any number of workstation sessions.

    Two modes:

    - ``HAMServer(ham)`` — one graph, every session bound to it (the
      paper's basic central-server picture);
    - ``HAMServer(host=GraphHost(root))`` — a multi-graph host: sessions
      create/list graphs and bind one via the ``open_graph`` RPC.

    ``config`` (a :class:`ServerConfig`) governs connection admission,
    per-session backpressure, worker-pool size, and idle reaping.
    """

    def __init__(self, ham: HAM | None = None, host_name: str = "127.0.0.1",
                 port: int = 0, host=None,
                 config: ServerConfig | None = None):
        if (ham is None) == (host is None):
            raise ValueError("give exactly one of ham or host")
        self.ham = ham
        self.host_registry = host
        self.config = config if config is not None else ServerConfig()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host_name, port))
        self._listener.listen(128)
        self._listener.setblocking(False)
        self.bind_host, self.port = self._listener.getsockname()

        self._running = False
        self._stopped = False
        self._stop_lock = threading.Lock()
        self._io_thread: threading.Thread | None = None
        self._workers: list[threading.Thread] = []
        #: Live dedicated long-poll threads (see ``_DETACHED``).
        self._detached: set[threading.Thread] = set()
        self._detached_lock = threading.Lock()
        self._tasks: queue.SimpleQueue = queue.SimpleQueue()
        self._sessions: list[_Session] = []
        self._sessions_lock = threading.Lock()

        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        self._commands: collections.deque = collections.deque()
        self._commands_lock = threading.Lock()
        self._wake_pending = False
        self._draining = False
        self._drain_deadline: float | None = None
        self._perished = False

        self._stats_lock = threading.Lock()
        self._counters = {
            "accepted": 0, "rejected": 0, "timeouts": 0,
            "pipelined_depth": 0, "queue_high_water": 0,
            "paused_reads": 0, "dispatched": 0,
        }

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) clients should connect to."""
        return self.bind_host, self.port

    def stats(self) -> dict[str, int]:
        """Snapshot of this server's governance counters.

        ``pipelined_depth`` and ``queue_high_water`` are high-water
        marks; the rest are totals.  ``active_sessions`` is the current
        connection count.
        """
        with self._stats_lock:
            snapshot = dict(self._counters)
        with self._sessions_lock:
            snapshot["active_sessions"] = len(self._sessions)
        snapshot["workers"] = len(self._workers)
        return snapshot

    def threads(self) -> list[threading.Thread]:
        """Every thread this server started (for clean-exit assertions)."""
        threads = list(self._workers)
        with self._detached_lock:
            threads.extend(self._detached)
        if self._io_thread is not None:
            threads.append(self._io_thread)
        return threads

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "HAMServer":
        """Start the I/O loop and worker pool in background threads."""
        self._running = True
        self._selector.register(self._listener, selectors.EVENT_READ,
                                _LISTENER)
        self._selector.register(self._wake_r, selectors.EVENT_READ, _WAKE)
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"ham-worker-{index}",
                daemon=True)
            self._workers.append(worker)
            worker.start()
        self._io_thread = threading.Thread(
            target=self._io_loop, name="ham-server-io", daemon=True)
        self._io_thread.start()
        return self

    def stop(self, disconnect_clients: bool = False) -> None:
        """Stop the server and join every thread it started.

        By default the shutdown is *graceful*: requests already admitted
        (including pipelined ones not yet executed) run to completion
        and their responses are flushed before sessions close, bounded
        by ``config.drain_timeout``.  With ``disconnect_clients=True``
        every session socket is severed immediately (simulating a server
        kill) and buffered work is discarded.  Either way, leftover
        transactions of every session are aborted and the I/O and worker
        threads are joined before this returns.
        """
        with self._stop_lock:
            if self._stopped:
                return
            self._stopped = True
        self._running = False
        self._post(("shutdown",
                    "hard" if disconnect_clients else "drain"))
        if self._io_thread is not None:
            self._io_thread.join(timeout=self.config.drain_timeout + 10.0)
        # Belt and braces: if the I/O thread died early (simulated
        # crash), its sockets were — or are now — closed here.
        self._force_close_sockets()
        for __ in self._workers:
            self._tasks.put(None)
        for worker in self._workers:
            worker.join(timeout=10.0)
        with self._detached_lock:
            parked = list(self._detached)
        for thread in parked:
            thread.join(timeout=10.0)
        # Any session whose cleanup task never ran (workers dead, or the
        # task was enqueued after the sentinels) is swept up here, so no
        # session — and no leftover transaction — outlives stop().
        with self._sessions_lock:
            leftovers, self._sessions = self._sessions, []
        for session in leftovers:
            try:
                session.abort_leftovers()
            except NeptuneError:
                pass
        try:
            self._selector.close()
        except OSError:
            pass
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass

    def _force_close_sockets(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass
        with self._sessions_lock:
            sessions = list(self._sessions)
        for session in sessions:
            try:
                session.sock.close()
            except OSError:
                pass

    def __enter__(self) -> "HAMServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # cross-thread commands (worker -> I/O thread)

    def _post(self, command: tuple) -> None:
        with self._commands_lock:
            self._commands.append(command)
            if self._wake_pending:
                return  # a wake byte is already in flight
            self._wake_pending = True
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass  # server already stopped

    def _count(self, name: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._counters[name] += amount
        if name in ("accepted", "rejected", "timeouts", "paused_reads"):
            SERVER.increment(name)

    def _record_depth(self, session: _Session) -> None:
        """Track pipelining-depth and queue high-water marks.

        Called with ``session.lock`` held, right after admitting one
        request.
        """
        depth = session.depth()
        backlog = len(session.pending)
        with self._stats_lock:
            if depth > self._counters["pipelined_depth"]:
                self._counters["pipelined_depth"] = depth
            if backlog > self._counters["queue_high_water"]:
                self._counters["queue_high_water"] = backlog
        SERVER.record_max("pipelined_depth", depth)
        SERVER.record_max("queue_high_water", backlog)

    # ------------------------------------------------------------------
    # the worker pool

    def _worker_loop(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                return
            kind, session, request = task
            try:
                if kind == "cleanup":
                    self._cleanup_session(session)
                    continue
                self._execute_task(session, request)
            except faults.SimulatedCrash:
                # Simulated process death: sever every connection so
                # clients observe the crash promptly, then let the
                # worker die.  The sticky injector takes the rest of
                # the pool down as it touches any fault point.
                self._post(("die",))
                return

    def _execute_task(self, session: _Session,
                      requests: list[object]) -> None:
        """Execute one scheduled task: a run of read-only requests or a
        single mutation.  All its response frames ride one I/O-thread
        wakeup, which is what keeps per-request overhead off the
        pipelined read path."""
        read_only = (isinstance(requests[0], dict)
                     and requests[0].get("method") in _READ_ONLY)
        try:
            frames = [encode_message(session.handle(request))
                      for request in requests]
            self._count("dispatched", len(requests))
            session.last_activity = _time.monotonic()
            self._post(("write", session, frames))
        finally:
            with session.lock:
                if read_only:
                    session.running_reads -= len(requests)
                else:
                    session.running_mutation = False
                if session.closed:
                    self._schedule_cleanup_locked(session)
                else:
                    self._pump_session_locked(session)

    def _detach_capacity(self) -> bool:
        with self._detached_lock:
            return len(self._detached) < _MAX_DETACHED

    def _spawn_detached(self, session: _Session, run: list) -> None:
        """Run one long-poll request on its own thread (see _DETACHED)."""
        thread = threading.Thread(
            target=self._detached_task, args=(session, run),
            name="ham-longpoll", daemon=True)
        with self._detached_lock:
            self._detached.add(thread)
        thread.start()

    def _detached_task(self, session: _Session, run: list) -> None:
        try:
            self._execute_task(session, run)
        except faults.SimulatedCrash:
            self._post(("die",))
        finally:
            with self._detached_lock:
                self._detached.discard(threading.current_thread())

    def _cleanup_session(self, session: _Session) -> None:
        try:
            session.abort_leftovers()
        finally:
            self._forget_session(session)

    def _forget_session(self, session: _Session) -> None:
        with self._sessions_lock:
            try:
                self._sessions.remove(session)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # the per-session scheduler

    def _pump_session_locked(self, session: _Session) -> None:
        """Hand every currently-eligible request to the worker pool.

        Caller holds ``session.lock``.  Read-only requests run
        concurrently with each other; anything else is a barrier — it
        waits for the session to quiesce and then runs alone, which is
        what keeps a pipelined session's mutations in arrival order.
        """
        while session.pending:
            head = session.pending[0]
            read_only = (isinstance(head, dict)
                         and head.get("method") in _READ_ONLY)
            if read_only:
                # max_pending also caps in-flight reads, so a flood of
                # reads queues in the session (where backpressure sees
                # it) rather than in the worker pool.
                if (session.running_mutation
                        or session.running_reads
                        >= self.config.max_pending):
                    break
                # Long-poll methods get a dedicated thread: a parked
                # fetch must not occupy a bounded pool worker (or stall
                # this session's later reads behind its wait).
                if (head.get("method") in _DETACHED
                        and self._detach_capacity()):
                    session.pending.popleft()
                    session.running_reads += 1
                    self._spawn_detached(session, [head])
                    continue
                # The whole consecutive run of reads becomes one worker
                # task: runs still execute in arrival order, reads from
                # other sessions (and later-arriving runs of this one)
                # still overlap, and a deeply pipelined reader pays the
                # scheduling cost once per run instead of once per
                # request.
                run = [session.pending.popleft()]
                session.running_reads += 1
                while (session.pending
                       and session.running_reads
                       < self.config.max_pending):
                    request = session.pending[0]
                    if not (isinstance(request, dict)
                            and request.get("method") in _READ_ONLY):
                        break
                    if request.get("method") in _DETACHED:
                        break  # scheduled alone, off-pool, next round
                    session.pending.popleft()
                    session.running_reads += 1
                    run.append(request)
                self._tasks.put(("request", session, run))
            else:
                if session.running_mutation or session.running_reads:
                    break
                session.pending.popleft()
                session.running_mutation = True
                self._tasks.put(("request", session, [head]))
                break
        self._maybe_resume_locked(session)

    def _maybe_resume_locked(self, session: _Session) -> None:
        """Lift backpressure once the session drains below half-full."""
        if (session.paused and not session.closed and not session.closing
                and len(session.pending) <= self.config.max_pending // 2
                and session.out_bytes
                <= self.config.max_outbuf_bytes // 2):
            session.paused = False
            self._post(("resume", session))

    def _schedule_cleanup_locked(self, session: _Session) -> None:
        if not session.cleanup_scheduled and session.idle():
            session.cleanup_scheduled = True
            self._tasks.put(("cleanup", session, None))

    # ------------------------------------------------------------------
    # the I/O loop (selector thread; owns every socket)

    def _io_loop(self) -> None:
        try:
            while True:
                timeout = self._tick_timeout()
                events = self._selector.select(timeout)
                for key, mask in events:
                    data = key.data
                    if data is _LISTENER:
                        self._on_accept()
                    elif data is _WAKE:
                        if self._on_wake():
                            return
                    else:
                        if mask & selectors.EVENT_READ:
                            self._on_readable(data)
                        if mask & selectors.EVENT_WRITE:
                            self._on_writable(data)
                self._reap_idle()
                if self._draining and self._drain_finished():
                    self._close_all_sessions(discard=False)
                    return
        except faults.SimulatedCrash:
            self._perish()

    def _tick_timeout(self) -> float | None:
        if self._draining:
            return 0.02
        if self.config.idle_timeout is not None:
            return min(0.25, self.config.idle_timeout / 4)
        return None

    def _on_wake(self) -> bool:
        """Drain the wake pipe and run queued commands.

        Returns True when the I/O loop must exit.
        """
        try:
            while os.read(self._wake_r, 4096):
                pass
        except (BlockingIOError, OSError):
            pass
        with self._commands_lock:
            self._wake_pending = False
        while True:
            with self._commands_lock:
                if not self._commands:
                    return False
                command = self._commands.popleft()
            kind = command[0]
            if kind == "write":
                self._queue_frames(command[1], command[2])
            elif kind == "resume":
                self._resume_reading(command[1])
            elif kind == "shutdown":
                if self._begin_shutdown(command[1]):
                    return True
            elif kind == "die":
                self._perish()
                return True

    def _begin_shutdown(self, mode: str) -> bool:
        """Stop accepting; returns True when the loop can exit now."""
        self._unregister_listener()
        if mode == "hard":
            self._close_all_sessions(discard=True)
            return True
        self._draining = True
        self._drain_deadline = (_time.monotonic()
                                + self.config.drain_timeout)
        # No new requests are admitted during a drain: stop reading so
        # the drain condition (queues empty, buffers flushed) is
        # reachable even against a chatty client.
        with self._sessions_lock:
            sessions = list(self._sessions)
        for session in sessions:
            self._pause_reading(session)
        return False

    def _drain_finished(self) -> bool:
        if (self._drain_deadline is not None
                and _time.monotonic() >= self._drain_deadline):
            return True
        with self._sessions_lock:
            sessions = list(self._sessions)
        for session in sessions:
            if session.closed:
                continue
            with session.lock:
                if not session.idle() or session.outbuf:
                    return False
        return True

    def _perish(self) -> None:
        """Simulated process death: drop every socket, no goodbyes."""
        self._perished = True
        self._unregister_listener()
        with self._sessions_lock:
            sessions = list(self._sessions)
        for session in sessions:
            self._drop_session_socket(session)
            with session.lock:
                session.closed = True
                session.pending.clear()

    # -- accepting ------------------------------------------------------

    def _on_accept(self) -> None:
        while True:
            try:
                sock, peer = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return  # listener closed
            if not self._running:
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            cap = self.config.max_connections
            with self._sessions_lock:
                active = sum(1 for s in self._sessions if not s.busy)
                busy = cap is not None and active >= cap
                session = _Session(self, sock, peer, busy=busy)
                self._sessions.append(session)
            self._count("rejected" if busy else "accepted")
            self._selector.register(sock, selectors.EVENT_READ, session)
            session.read_registered = True

    # -- reading --------------------------------------------------------

    def _on_readable(self, session: _Session) -> None:
        if session.closed:
            return
        try:
            if faults.INJECTOR is not None:
                faults.fire("server.recv", sock=session.sock)
            data = session.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except faults.FaultError:
            self._close_session(session)
            return
        except OSError:
            self._close_session(session)
            return
        if not data:
            self._close_session(session)
            return
        session.last_activity = _time.monotonic()
        try:
            messages = session.decoder.feed(data)
        except NeptuneError:
            # Unframeable stream (bad length prefix/checksum):
            # resynchronization is impossible, drop the client.
            self._close_session(session)
            return
        if not messages:
            return
        if session.busy:
            self._reject_busy(session, messages)
            return
        with session.lock:
            session.pending.extend(messages)
            # Depth and backlog peak right here, after admitting the
            # whole decode batch and before the scheduler drains any of
            # it — one high-water sample covers every message in it.
            self._record_depth(session)
            self._pump_session_locked(session)
            if (len(session.pending) >= self.config.max_pending
                    or session.out_bytes
                    > self.config.max_outbuf_bytes):
                if not session.paused:
                    session.paused = True
                    self._count("paused_reads")
                self._pause_reading(session)

    def _reject_busy(self, session: _Session, messages: list) -> None:
        """Answer a rejected session's requests with ServerBusy, then
        close once the replies flush."""
        for message in messages:
            request_id = (message.get("id")
                          if isinstance(message, dict) else None)
            self._queue_frame(session, encode_message({
                "id": request_id, "ok": False,
                "error": {"type": "ServerBusyError",
                          "message": "server connection limit reached; "
                                     "try again later"}}))
        session.closing = True
        self._pause_reading(session)

    # -- writing --------------------------------------------------------

    def _queue_frame(self, session: _Session, frame: bytes) -> None:
        self._queue_frames(session, (frame,))

    def _queue_frames(self, session: _Session, frames) -> None:
        if session.closed:
            return
        session.outbuf.extend(frames)
        pause = False
        with session.lock:
            session.out_bytes += sum(len(frame) for frame in frames)
            # A consumer that stops reading its replies stops being
            # read: admit no further requests until the pile drains.
            if (session.out_bytes > self.config.max_outbuf_bytes
                    and not session.paused and not session.closing):
                session.paused = True
                pause = True
        if pause:
            self._count("paused_reads")
            self._pause_reading(session)
        self._want_write(session)
        self._on_writable(session)  # opportunistic immediate flush

    def _on_writable(self, session: _Session) -> None:
        if session.closed:
            return
        sock = session.sock
        drained = 0
        try:
            while session.outbuf:
                # With a fault injector installed, send strictly frame
                # by frame so ``server.send`` fires (and can corrupt)
                # each response; otherwise gather the queued frames
                # into one sendmsg syscall.
                per_frame = (faults.INJECTOR is not None
                             or not _HAS_SENDMSG
                             or len(session.outbuf) == 1)
                if per_frame:
                    frame = session.outbuf[0]
                    if (session.out_offset == 0
                            and faults.INJECTOR is not None):
                        try:
                            faults.fire("server.send", sock=sock,
                                        frame=frame)
                        except faults.FaultError:
                            self._close_session(session)
                            return
                    payload = memoryview(frame)[session.out_offset:]
                else:
                    payload = None
                try:
                    if per_frame:
                        sent = sock.send(payload)
                    else:
                        buffers = [memoryview(session.outbuf[0])
                                   [session.out_offset:]]
                        buffers.extend(
                            itertools.islice(session.outbuf, 1, 64))
                        sent = sock.sendmsg(buffers)
                except (BlockingIOError, InterruptedError):
                    break
                except OSError:
                    self._close_session(session)
                    return
                while sent:
                    frame = session.outbuf[0]
                    remaining = len(frame) - session.out_offset
                    if sent >= remaining:
                        sent -= remaining
                        drained += len(frame)
                        session.outbuf.popleft()
                        session.out_offset = 0
                    else:
                        session.out_offset += sent
                        sent = 0
                if session.out_offset:
                    break  # partial frame: the kernel buffer is full
        finally:
            if drained:
                with session.lock:
                    session.out_bytes -= drained
        if session.outbuf:
            self._want_write(session)
        else:
            self._unwant_write(session)
            if session.closing:
                self._close_session(session)
                return
            with session.lock:
                self._maybe_resume_locked(session)

    # -- selector interest management (I/O thread only) -----------------

    def _mask(self, session: _Session) -> int:
        return ((selectors.EVENT_READ if session.read_registered else 0)
                | (selectors.EVENT_WRITE if session.write_registered
                   else 0))

    def _modify(self, session: _Session) -> None:
        mask = self._mask(session)
        try:
            if mask:
                self._selector.modify(session.sock, mask, session)
            else:
                self._selector.unregister(session.sock)
        except (KeyError, ValueError, OSError):
            if mask:
                try:
                    self._selector.register(session.sock, mask, session)
                except (KeyError, ValueError, OSError):
                    pass

    def _want_write(self, session: _Session) -> None:
        if not session.write_registered and not session.closed:
            session.write_registered = True
            self._modify(session)

    def _unwant_write(self, session: _Session) -> None:
        if session.write_registered:
            session.write_registered = False
            self._modify(session)

    def _pause_reading(self, session: _Session) -> None:
        if session.read_registered:
            session.read_registered = False
            self._modify(session)

    def _resume_reading(self, session: _Session) -> None:
        if (not session.closed and not session.closing
                and not session.read_registered and not self._draining):
            session.read_registered = True
            self._modify(session)

    def _unregister_listener(self) -> None:
        try:
            self._selector.unregister(self._listener)
        except (KeyError, ValueError, OSError):
            pass
        try:
            self._listener.close()
        except OSError:
            pass

    # -- closing --------------------------------------------------------

    def _drop_session_socket(self, session: _Session) -> None:
        try:
            self._selector.unregister(session.sock)
        except (KeyError, ValueError, OSError):
            pass
        session.read_registered = False
        session.write_registered = False
        try:
            session.sock.close()
        except OSError:
            pass

    def _close_session(self, session: _Session) -> None:
        """Close one session's socket and schedule its cleanup.

        Safe to call repeatedly; runs on the I/O thread.  In-flight
        requests finish on their workers (their responses are dropped);
        the leftover-transaction abort runs as a worker task once the
        session quiesces.
        """
        if session.closed:
            return
        self._drop_session_socket(session)
        with session.lock:
            session.closed = True
            session.pending.clear()
            session.outbuf.clear()
            session.out_offset = 0
            session.out_bytes = 0
            self._schedule_cleanup_locked(session)

    def _close_all_sessions(self, discard: bool) -> None:
        with self._sessions_lock:
            sessions = list(self._sessions)
        for session in sessions:
            if not discard and not session.closed:
                self._on_writable(session)  # final flush attempt
            self._close_session(session)

    # -- idle reaping ---------------------------------------------------

    def _reap_idle(self) -> None:
        limit = self.config.idle_timeout
        if limit is None or self._draining:
            return
        now = _time.monotonic()
        with self._sessions_lock:
            sessions = list(self._sessions)
        for session in sessions:
            if session.closed or session.busy:
                continue
            with session.lock:
                expendable = (session.idle() and not session.outbuf
                              and now - session.last_activity > limit)
            if expendable:
                self._count("timeouts")
                self._close_session(session)
