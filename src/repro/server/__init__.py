"""The central HAM server and its remote client.

The paper (§2.2): "Neptune has a central server which is accessible over
a local area network from a variety of workstations"; the user interface
"communicates with the HAM using a remote procedure call mechanism; the
HAM runs as a separate process, typically on a machine accessed over a
network" (§4.1).

- :mod:`repro.server.protocol` — length-prefixed binary framing over TCP,
  request/response message shapes, value (de)marshalling.
- :mod:`repro.server.server` — :class:`HAMServer`: thread-per-session TCP
  server wrapping one HAM; sessions that disconnect mid-transaction have
  their transactions aborted (the paper's "site crashes in the middle of
  a hypertext transaction" case).
- :mod:`repro.server.client` — :class:`RemoteHAM`: the same API as
  :class:`repro.core.ham.HAM`, executed remotely, with
  :class:`RemoteBatch` queueing many operations into one round trip.

Both dispatchers (server table and client stubs) are derived from the
declarative operation registry in :mod:`repro.core.operations`.
"""

from repro.server.protocol import (
    read_message,
    write_message,
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
)
from repro.server.server import HAMServer
from repro.server.client import (
    BatchFuture,
    RemoteBatch,
    RemoteHAM,
    RemoteTransaction,
)
from repro.server.host import GraphHost

__all__ = [
    "GraphHost",
    "read_message",
    "write_message",
    "MAX_MESSAGE_BYTES",
    "PROTOCOL_VERSION",
    "HAMServer",
    "RemoteHAM",
    "RemoteBatch",
    "BatchFuture",
    "RemoteTransaction",
]
