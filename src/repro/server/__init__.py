"""The central HAM server and its remote client.

The paper (§2.2): "Neptune has a central server which is accessible over
a local area network from a variety of workstations"; the user interface
"communicates with the HAM using a remote procedure call mechanism; the
HAM runs as a separate process, typically on a machine accessed over a
network" (§4.1).

- :mod:`repro.server.protocol` — length-prefixed binary framing over TCP,
  request/response message shapes, value (de)marshalling, and the
  incremental :class:`FrameDecoder` for non-blocking transports.
- :mod:`repro.server.server` — :class:`HAMServer`: an event-driven TCP
  server (selector I/O loop + bounded worker pool) wrapping one HAM or a
  :class:`GraphHost`.  Sessions may pipeline requests; per session,
  read-only operations run concurrently on MVCC snapshots while
  mutations stay ordered.  :class:`ServerConfig` governs the connection
  cap, per-session backpressure, and idle timeouts.  Sessions that
  disconnect mid-transaction have their transactions aborted (the
  paper's "site crashes in the middle of a hypertext transaction" case).
- :mod:`repro.server.client` — :class:`RemoteHAM`: the same API as
  :class:`repro.core.ham.HAM`, executed remotely, with
  :class:`RemoteBatch` queueing many operations into one round trip and
  :class:`RemotePipeline` streaming many requests with futures for the
  replies.

Both dispatchers (server table and client stubs) are derived from the
declarative operation registry in :mod:`repro.core.operations`.
"""

from repro.server.protocol import (
    FrameDecoder,
    encode_message,
    read_message,
    write_message,
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
)
from repro.server.server import HAMServer, ServerConfig
from repro.server.client import (
    BatchFuture,
    PipelineBatch,
    PipelineFuture,
    RemoteBatch,
    RemoteHAM,
    RemotePipeline,
    RemoteTransaction,
)
from repro.server.host import GraphHost

__all__ = [
    "GraphHost",
    "FrameDecoder",
    "encode_message",
    "read_message",
    "write_message",
    "MAX_MESSAGE_BYTES",
    "PROTOCOL_VERSION",
    "HAMServer",
    "ServerConfig",
    "RemoteHAM",
    "RemoteBatch",
    "RemotePipeline",
    "PipelineBatch",
    "PipelineFuture",
    "BatchFuture",
    "RemoteTransaction",
]
